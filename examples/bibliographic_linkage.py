"""Two-source record linkage (Appendix I): match catalogue R against S.

Links two publication sources with overlapping content — think DBLP
vs. a web-crawled bibliography.  Only cross-source pairs within shared
blocks are compared; both dual-source strategies return the identical
linkage.

Run:  python examples/bibliographic_linkage.py
"""

from __future__ import annotations

import random

from repro import ERPipeline, PrefixBlocking, ThresholdMatcher
from repro.analysis import WorkloadStats, format_table
from repro.datasets import generate_publications
from repro.er import Entity


def corrupt(title: str, rng: random.Random) -> str:
    """Simulate a noisy re-extraction of the same publication."""
    chars = list(title)
    for _ in range(rng.randint(1, 2)):
        pos = rng.randrange(3, max(4, len(chars)))
        if pos < len(chars):
            chars[pos] = rng.choice("abcdefghij ")
    return "".join(chars)


def build_sources() -> tuple[list[Entity], list[Entity]]:
    rng = random.Random(17)
    clean = generate_publications(1_200, seed=17)
    r_source = clean[:800]
    # S: 400 fresh records + 300 corrupted copies of R records.
    s_fresh = clean[800:]
    s_copies = [
        Entity(
            f"copy-{e.entity_id}",
            {**dict(e.attributes), "title": corrupt(e["title"], rng)},
        )
        for e in rng.sample(r_source, 300)
    ]
    return r_source, s_fresh + s_copies


def main() -> None:
    r_source, s_source = build_sources()
    print(f"R: {len(r_source)} records, S: {len(s_source)} records")
    blocking = PrefixBlocking("title", 3)

    results = {}
    for name in ("blocksplit", "pairrange"):
        pipeline = ERPipeline(
            name,
            blocking,
            ThresholdMatcher("title", 0.8),
            num_reduce_tasks=6,
        )
        result = pipeline.run(
            r_source, s_source, num_r_partitions=2, num_s_partitions=3
        )
        results[name] = result
        stats = WorkloadStats.from_workloads(result.reduce_comparisons())
        print(
            f"{name:12s}: {result.total_comparisons():,} cross-source "
            f"comparisons, imbalance {stats.imbalance:.2f}, "
            f"{len(result.matches)} links"
        )

    assert results["blocksplit"].matches == results["pairrange"].matches
    print()

    bdm = results["blocksplit"].bdm
    print(
        format_table(
            ["metric", "value"],
            [
                ["blocks", bdm.num_blocks],
                ["cross-source pairs", bdm.pairs()],
                ["R entities (keyed)", sum(bdm.size_r(k) for k in range(bdm.num_blocks))],
                ["S entities (keyed)", sum(bdm.size_s(k) for k in range(bdm.num_blocks))],
            ],
            title="Dual-source BDM",
        )
    )
    print()
    print("sample links (R id <-> S id):")
    for pair in list(results["blocksplit"].matches)[:8]:
        print(f"  {pair.id1} <-> {pair.id2}  (similarity {pair.similarity:.3f})")


if __name__ == "__main__":
    main()
