"""Cluster sizing: how many nodes does your ER job actually need?

The paper's Section VI-C points out that cloud nodes cost money even
when idle, so over-provisioning a skew-limited job wastes budget.
This example sweeps cluster sizes for a DS1-scale workload, prints
execution time, speedup and parallel efficiency per strategy, and
derives the sweet spot where efficiency drops below 50 %.

Run:  python examples/cluster_sizing.py
"""

from __future__ import annotations

from repro import zipf_block_sizes
from repro.analysis import (
    efficiency,
    format_series,
    speedup,
    sweep_nodes,
)

NODES = [1, 2, 5, 10, 20, 40, 100]
STRATEGIES = ["basic", "blocksplit", "pairrange"]


def main() -> None:
    block_sizes = zipf_block_sizes(114_000, 2_800, 1.2)
    results = sweep_nodes(STRATEGIES, NODES, block_sizes)

    times = {
        name: [round(results[n][name].execution_time, 1) for n in NODES]
        for name in STRATEGIES
    }
    print(
        format_series(
            "nodes", NODES, times,
            title="execution time [s] (DS1 scale, m=2n, r=10n)",
        )
    )
    print()

    speedups = {name: [round(s, 2) for s in speedup(times[name])] for name in STRATEGIES}
    print(format_series("nodes", NODES, speedups, title="speedup"))
    print()

    efficiencies = {
        name: [round(e, 2) for e in efficiency(speedups[name], NODES)]
        for name in STRATEGIES
    }
    print(format_series("nodes", NODES, efficiencies, title="parallel efficiency"))
    print()

    for name in ("blocksplit", "pairrange"):
        knee = next(
            (n for n, e in zip(NODES, efficiencies[name]) if e < 0.5), NODES[-1]
        )
        print(f"{name}: efficiency drops below 50% at ~{knee} nodes "
              "— provision fewer nodes than that for this dataset.")
    print("basic: never scales past ~2 nodes on skewed data; "
          "fix the strategy, not the cluster.")


if __name__ == "__main__":
    main()
