"""Visualise what load balancing actually does to a cluster.

Renders (1) per-reduce-task workload bar charts for Basic vs PairRange
on skewed data and (2) a Gantt view of the simulated reduce phase, so
the straggler effect the paper fights is directly visible in the
terminal.

Run:  python examples/timeline_visualization.py
"""

from __future__ import annotations

from repro import (
    ClusterSpec,
    PrefixBlocking,
    analytic_bdm,
    generate_products,
    simulate_strategy,
)
from repro.analysis import gantt, sparkline, workload_chart
from repro.cluster import ClusterSimulator, CostModel, reduce_task_specs
from repro.mapreduce import make_partitions

NODES = 4
REDUCE_TASKS = 16


def main() -> None:
    entities = generate_products(5_000, seed=3)
    bdm = analytic_bdm(make_partitions(entities, 8), PrefixBlocking("title"))
    print(f"{len(entities)} entities, {bdm.num_blocks} blocks, "
          f"{bdm.pairs():,} candidate pairs\n")

    charts = {}
    phases = {}
    for name in ("basic", "pairrange"):
        timeline, plan = simulate_strategy(
            name, bdm, ClusterSpec(NODES), num_reduce_tasks=REDUCE_TASKS
        )
        charts[name] = plan.reduce_comparisons
        phases[name] = timeline.jobs[-1].reduce_phase

    print(workload_chart(charts, width=44))
    print()

    for name, phase in phases.items():
        print(gantt(phase, width=66))
        print()

    # One-line sweep: execution time as reduce tasks grow.
    reduce_counts = [8, 16, 24, 32, 48, 64]
    for name in ("basic", "pairrange"):
        times = []
        for r in reduce_counts:
            timeline, _ = simulate_strategy(
                name, bdm, ClusterSpec(NODES), num_reduce_tasks=r
            )
            times.append(timeline.execution_time)
        print(f"{name:10s} time vs r {reduce_counts}: {sparkline(times)} "
              f"({times[0]:.0f}s -> {times[-1]:.0f}s)")


if __name__ == "__main__":
    main()
