"""Multi-pass blocking: catch matches a single blocking key misses.

Single-pass blocking on the title prefix misses duplicates whose typo
hits the *first three characters*.  A second pass on the manufacturer
attribute recovers them — the paper's "future work" extension — while
each pass remains fully load-balanced.

Run:  python examples/multipass_dedup.py
"""

from __future__ import annotations

import random

from repro import (
    ERPipeline,
    MultiPassERWorkflow,
    PrefixBlocking,
    ThresholdMatcher,
    generate_products,
)
from repro.er import AttributeBlocking, Entity, MultiPassBlocking


def corrupt_prefix(entity: Entity, rng: random.Random) -> Entity:
    """A duplicate whose typo lands inside the blocking prefix."""
    title = entity["title"]
    position = rng.randrange(0, 3)
    chars = list(title)
    chars[position] = rng.choice("xyzq")
    return Entity(
        f"dup-{entity.entity_id}",
        {**dict(entity.attributes), "title": "".join(chars)},
    )


def main() -> None:
    rng = random.Random(5)
    base = generate_products(1_500, seed=5)
    hard_duplicates = [corrupt_prefix(e, rng) for e in rng.sample(base, 60)]
    entities = base + hard_duplicates
    print(f"{len(base)} records + {len(hard_duplicates)} prefix-corrupted duplicates")

    matcher = lambda: ThresholdMatcher("title", 0.8)  # noqa: E731

    # -- single pass: title prefix only ----------------------------------
    single = ERPipeline(
        "pairrange", PrefixBlocking("title", 3), matcher(),
        num_map_tasks=4, num_reduce_tasks=8,
    ).run(entities)

    # -- two passes: title prefix + manufacturer --------------------------
    multi = MultiPassERWorkflow(
        "pairrange",
        MultiPassBlocking(
            [PrefixBlocking("title", 3), AttributeBlocking("manufacturer")]
        ),
        matcher,
        num_map_tasks=4,
        num_reduce_tasks=8,
    ).run(entities)

    print(f"single pass (title prefix):        {len(single.matches)} matches")
    print(f"two passes (+ manufacturer):       {len(multi.matches)} matches")
    recovered = multi.matches.pair_ids - single.matches.pair_ids
    print(f"recovered by the second pass:      {len(recovered)}")
    print(f"comparisons: {multi.total_comparisons:,} total, "
          f"{multi.redundant_comparisons:,} redundant "
          "(pairs co-blocked by both passes)")
    assert single.matches.pair_ids <= multi.matches.pair_ids


if __name__ == "__main__":
    main()
