"""One pipeline, three execution backends.

Runs the identical BlockSplit configuration through the serial backend
(reference), the parallel backend (worker pool), and the planned
backend (analytic planners + cluster simulation, no execution), and
shows that the serial/parallel matches coincide while the planned
backend predicts the executed workload exactly.

Run:  python examples/backend_comparison.py
"""

from __future__ import annotations

import time

from repro import ERPipeline, PrefixBlocking, ThresholdMatcher, generate_products
from repro.analysis import format_table


def main() -> None:
    entities = generate_products(800, seed=7)
    pipeline = ERPipeline(
        "blocksplit",
        PrefixBlocking("title", length=3),
        ThresholdMatcher("title", threshold=0.8),
        num_map_tasks=4,
        num_reduce_tasks=8,
    )

    rows = []
    results = {}
    for backend_name, configured in [
        ("serial", pipeline),
        ("parallel", pipeline.with_backend("parallel", max_workers=4)),
        ("planned", pipeline.with_backend("planned")),
    ]:
        start = time.perf_counter()
        result = results[backend_name] = configured.run(entities)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                backend_name,
                f"{elapsed:.2f}s",
                f"{result.total_comparisons():,}",
                len(result.matches) if result.matches is not None else "(planned)",
                f"{result.execution_time:.1f}s" if result.execution_time else "-",
            ]
        )

    print(
        format_table(
            ["backend", "wall clock", "comparisons", "matches", "simulated"],
            rows,
            title=f"{len(entities)} entities, blocksplit, m=4, r=8",
        )
    )

    assert results["serial"].matches == results["parallel"].matches
    assert (
        results["planned"].reduce_comparisons()
        == results["serial"].reduce_comparisons()
    )
    print("\nserial == parallel matches; planned predicts executed workload exactly")


if __name__ == "__main__":
    main()
