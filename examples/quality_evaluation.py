"""Match-quality evaluation against injected ground truth.

Corrupts a clean product catalogue with known duplicates, runs the
load-balanced workflow at several match thresholds, and reports
precision / recall / F1 plus the blocking-level diagnostics
(pairs completeness, reduction ratio) that tell you whether quality is
limited by the matcher or by the blocking key.

Run:  python examples/quality_evaluation.py
"""

from __future__ import annotations

from repro import ERPipeline, PrefixBlocking, ThresholdMatcher
from repro.analysis import format_table
from repro.analysis.evaluation import (
    evaluate_matches,
    pairs_completeness,
    reduction_ratio,
)
from repro.datasets import CorruptionConfig, corrupt_dataset, generate_products
from repro.er import RecordingMatcher

THRESHOLDS = [0.70, 0.75, 0.80, 0.85, 0.90]


def main() -> None:
    clean = generate_products(2_000, seed=19)
    corrupted = corrupt_dataset(
        clean, CorruptionConfig(duplicate_fraction=0.15, max_edits=2, seed=20)
    )
    entities = list(corrupted.entities)
    gold = corrupted.gold_pairs
    blocking = PrefixBlocking("title", 3)
    print(f"{len(entities)} records, {len(gold)} gold duplicate pairs")

    # Blocking diagnostics: which gold pairs survive blocking at all?
    recorder = RecordingMatcher()
    ERPipeline(
        "pairrange", blocking, recorder, num_map_tasks=4, num_reduce_tasks=8
    ).run(entities)
    candidates = set(recorder.compared)
    completeness = pairs_completeness(candidates, gold)
    reduction = reduction_ratio(len(candidates), len(entities))
    print(f"blocking: {len(candidates):,} candidates "
          f"(reduction ratio {reduction:.4f}), "
          f"pairs completeness {completeness:.3f} — the recall ceiling")
    print()

    rows = []
    for threshold in THRESHOLDS:
        pipeline = ERPipeline(
            "pairrange",
            blocking,
            ThresholdMatcher("title", threshold),
            num_map_tasks=4,
            num_reduce_tasks=8,
        )
        result = pipeline.run(entities)
        quality = evaluate_matches(result.matches.pair_ids, gold)
        rows.append(
            [
                threshold,
                len(result.matches),
                round(quality.precision, 3),
                round(quality.recall, 3),
                round(quality.f1, 3),
            ]
        )
    print(
        format_table(
            ["threshold", "matches", "precision", "recall", "F1"],
            rows,
            title="Match quality vs. similarity threshold (PairRange)",
        )
    )
    best = max(rows, key=lambda row: row[4])
    print(f"\nbest F1 {best[4]} at threshold {best[0]}")
    print("note: 'false positives' include the generator's own planted "
          "near-duplicates — precision against injected gold only.")


if __name__ == "__main__":
    main()
