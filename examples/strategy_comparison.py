"""Compare Basic, BlockSplit and PairRange on skewed product data.

Reproduces the paper's core argument at laptop scale: all three
strategies compute the identical match result, but on skewed block
distributions Basic piles most comparisons onto a few reduce tasks
while BlockSplit/PairRange spread them evenly.  A simulated 10-node
cluster translates the workloads into the execution times a Hadoop
deployment would see.

Run:  python examples/strategy_comparison.py
"""

from __future__ import annotations

from repro import (
    ClusterSpec,
    ERPipeline,
    PrefixBlocking,
    ThresholdMatcher,
    analytic_bdm,
    generate_products,
    simulate_strategy,
)
from repro.analysis import WorkloadStats, format_table
from repro.mapreduce import make_partitions

NUM_ENTITIES = 3_000
MAP_TASKS = 4
REDUCE_TASKS = 12


def main() -> None:
    entities = generate_products(NUM_ENTITIES, seed=11)
    blocking = PrefixBlocking("title", 3)

    # -- execute all three strategies on the same input ------------------
    rows = []
    reference = None
    for name in ("basic", "blocksplit", "pairrange"):
        pipeline = ERPipeline(
            name,
            blocking,
            ThresholdMatcher("title", 0.8),
            num_map_tasks=MAP_TASKS,
            num_reduce_tasks=REDUCE_TASKS,
        )
        result = pipeline.run(entities)
        if reference is None:
            reference = result.matches
        assert result.matches == reference, "strategies must agree on matches"
        stats = WorkloadStats.from_workloads(result.reduce_comparisons())
        rows.append(
            [
                name,
                result.total_comparisons(),
                stats.maximum,
                round(stats.imbalance, 2),
                result.map_output_kv(),
                len(result.matches),
            ]
        )

    print(
        format_table(
            ["strategy", "comparisons", "max/task", "imbalance",
             "map output KV", "matches"],
            rows,
            title=f"Executed workloads ({NUM_ENTITIES} entities, r={REDUCE_TASKS})",
        )
    )
    print()

    # -- simulate a 10-node cluster: small input vs. DS1 scale -------------
    # At 3k entities the fixed BDM-job overhead dominates and Basic's
    # single job wins; at the paper's 114k-entity scale the skewed
    # comparison work dwarfs that overhead and the picture flips.
    from repro.analysis import bdm_for_block_sizes
    from repro.datasets import zipf_block_sizes

    small_bdm = analytic_bdm(make_partitions(entities, MAP_TASKS), blocking)
    ds1_bdm = bdm_for_block_sizes(zipf_block_sizes(114_000, 2_800, 1.2), 20)
    sim_rows = []
    for name in ("basic", "blocksplit", "pairrange"):
        small_time, _ = simulate_strategy(
            name, small_bdm, ClusterSpec(num_nodes=10), num_reduce_tasks=100
        )
        ds1_time, _ = simulate_strategy(
            name, ds1_bdm, ClusterSpec(num_nodes=10), num_reduce_tasks=100
        )
        sim_rows.append(
            [
                name,
                round(small_time.execution_time, 1),
                round(ds1_time.execution_time, 1),
            ]
        )
    print(
        format_table(
            ["strategy", f"{NUM_ENTITIES} entities [s]", "DS1 scale (114k) [s]"],
            sim_rows,
            title="Simulated 10-node cluster (r=100): overhead vs. skew",
        )
    )
    print("\nSmall inputs: Basic's single job wins (no BDM overhead).")
    print("Paper scale: the largest block floors Basic; "
          "BlockSplit/PairRange win by an order of magnitude.")


if __name__ == "__main__":
    main()
