"""Skew study: how data skew breaks the Basic strategy (Section VI-A).

Sweeps the exponential skew factor s of the paper's robustness
experiment on a simulated 10-node cluster and prints the Figure 9
series — execution time per 10⁴ pairs — plus the underlying workload
imbalance that explains it.

Run:  python examples/skew_study.py
"""

from __future__ import annotations

from repro.analysis import format_series, sweep_skew

SKEWS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
STRATEGIES = ["basic", "blocksplit", "pairrange"]


def main() -> None:
    results = sweep_skew(
        STRATEGIES,
        SKEWS,
        num_entities=50_000,
        num_blocks=100,
        num_nodes=10,
        num_map_tasks=20,
        num_reduce_tasks=100,
    )

    time_series = {
        name: [round(results[s][name].ms_per_10k_pairs, 2) for s in SKEWS]
        for name in STRATEGIES
    }
    print(
        format_series(
            "skew s",
            SKEWS,
            time_series,
            title="ms per 10^4 pairs vs. skew (50k entities, b=100, n=10, r=100)",
        )
    )
    print()

    imbalance_series = {
        name: [round(results[s][name].reduce_stats.imbalance, 2) for s in SKEWS]
        for name in STRATEGIES
    }
    print(
        format_series(
            "skew s",
            SKEWS,
            imbalance_series,
            title="reduce-task workload imbalance (max/mean)",
        )
    )
    print()

    worst = results[1.0]
    factor = worst["basic"].ms_per_10k_pairs / worst["pairrange"].ms_per_10k_pairs
    print(
        f"At s=1.0 Basic is {factor:.1f}x slower per pair than PairRange — "
        "the paper's Figure 9 finding."
    )


if __name__ == "__main__":
    main()
