"""The execution-handle API: stream, watch, cancel, persist, replan.

Submits one dedup run and consumes it the submission-model way —
matches arrive as reduce task units complete, an event callback
narrates the task lifecycle, the result is persisted to versioned
JSON, and a strategy sweep is replanned from the file alone (no
re-execution).  A second, asyncio-flavoured pass does the same through
``submit_async`` on the ``"async"`` backend.

Run:  python examples/streaming_execution.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro import ERPipeline, PrefixBlocking, ThresholdMatcher, generate_products
from repro.analysis import sweep_from_result
from repro.mapreduce.events import EventKind


def main() -> None:
    entities = generate_products(1_500, seed=17)
    pipeline = ERPipeline(
        "blocksplit",
        PrefixBlocking("title", length=3),
        ThresholdMatcher("title", threshold=0.8),
        num_map_tasks=4,
        num_reduce_tasks=8,
    )

    # 1. Submit with an event callback narrating reduce-task completions.
    def narrate(event) -> None:
        if event.kind == EventKind.TASK_FINISHED and event.phase == "reduce":
            print(
                f"  [{event.stage}] reduce task {event.task_index}: "
                f"{event.data['comparisons']:,} comparisons, "
                f"{event.data['matches']} matches"
            )

    execution = pipeline.submit(entities, on_event=narrate)

    # 2. Matches stream out task by task, in deterministic order.
    streamed = list(execution.iter_matches())
    result = execution.result()
    assert len(streamed) == len(result.matches)
    print(f"\nstreamed {len(streamed)} matches; "
          f"progress: {execution.progress().state}, "
          f"{execution.matcher_stats().comparisons:,} comparisons this run")

    # 3. Persist, then replan a reduce-task sweep from the file alone.
    path = Path(tempfile.mkdtemp()) / "result.json"
    result.save(path)
    sweep = sweep_from_result(["blocksplit", "pairrange"], [8, 40, 80], path)
    print(f"\nreplanned from {path.name} (nothing re-executed):")
    for r, runs in sorted(sweep.items()):
        times = ", ".join(
            f"{name}={run.execution_time:.1f}s" for name, run in runs.items()
        )
        print(f"  r={r:>3}: {times}")

    # 4. The same handle surface, from asyncio, on the async backend.
    async def async_pass() -> int:
        handle = await pipeline.with_backend("async").submit_async(entities)
        count = 0
        async for _pair in handle.aiter_matches():
            count += 1
        final = await handle.result_async()
        assert final.matches == result.matches  # byte-identical across backends
        return count

    print(f"\nasync backend streamed {asyncio.run(async_pass())} matches "
          "(byte-identical result)")


if __name__ == "__main__":
    main()
