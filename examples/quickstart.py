"""Quickstart: deduplicate a product catalogue with BlockSplit.

Runs the paper's full two-job workflow — Job 1 computes the block
distribution matrix, Job 2 performs load-balanced matching — on a
synthetic product dataset, then prints the matches and the per-reduce-
task workload so you can *see* the load balancing.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ERPipeline, PrefixBlocking, ThresholdMatcher, generate_products
from repro.analysis import WorkloadStats, format_table


def main() -> None:
    # 1. Data: 2,000 synthetic product offers with planted near-duplicates.
    entities = generate_products(2_000, seed=7)
    print(f"dataset: {len(entities)} product records")

    # 2. Configuration straight from the paper: blocking on the first
    #    three letters of the title, edit-distance matching at 0.8.
    blocking = PrefixBlocking("title", length=3)
    matcher = ThresholdMatcher("title", threshold=0.8)

    # 3. The workflow: m=4 map tasks, r=8 reduce tasks, BlockSplit.
    pipeline = ERPipeline(
        "blocksplit", blocking, matcher, num_map_tasks=4, num_reduce_tasks=8
    )
    result = pipeline.run(entities)

    # 4. Results.
    print(f"blocks: {result.bdm.num_blocks}, "
          f"candidate pairs: {result.bdm.pairs():,}")
    print(f"comparisons executed: {result.total_comparisons():,}")
    print(f"duplicate pairs found: {len(result.matches)}")
    print()

    stats = WorkloadStats.from_workloads(result.reduce_comparisons())
    print(
        format_table(
            ["reduce task", "comparisons"],
            [[i, c] for i, c in enumerate(result.reduce_comparisons())],
            title=f"Reduce workloads (imbalance {stats.imbalance:.2f} = max/mean)",
        )
    )
    print()

    print("first 10 matches:")
    for pair in list(result.matches)[:10]:
        print(f"  {pair.id1} <-> {pair.id2}  (similarity {pair.similarity:.3f})")


if __name__ == "__main__":
    main()
