"""Legacy setup shim: enables `python setup.py develop` editable
installs on environments whose pip/setuptools lack PEP 660
editable-wheel support (no `wheel` package, offline) — `pip install
-e .` needs the PEP 517 path there and won't work.  All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
