"""Legacy setup shim: enables `pip install -e .` on environments whose
pip/setuptools lack PEP 660 editable-wheel support (no `wheel` package,
offline)."""

from setuptools import setup

setup()
