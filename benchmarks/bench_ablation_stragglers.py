"""Ablation / failure injection: heterogeneous nodes and stragglers.

The paper attributes residual imbalance to "heterogeneous hardware"
(Section VI-B).  This bench injects (a) lognormal node-speed spread and
(b) a single 4x-slow straggler node, and measures how gracefully each
strategy degrades.  Fine-grained balanced strategies degrade mildly
(work re-flows around the slow node across many task waves); Basic —
already floored by its largest reduce task — degrades by the full
slowdown whenever that task lands on the straggler.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes, simulate_run
from repro.analysis.reporting import format_table
from repro.cluster.costmodel import lognormal_speed_factors

from conftest import ALL_STRATEGIES, ds1_block_sizes, publish

NODES = 10
REDUCE_TASKS = 100


def straggler_rows():
    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    scenarios = {
        "homogeneous": None,
        "lognormal sigma=0.3": lognormal_speed_factors(NODES, 0.3, seed=4),
        "one 4x straggler": [0.25] + [1.0] * (NODES - 1),
    }
    rows = []
    for name in ALL_STRATEGIES:
        row = [name]
        base_time = None
        for speeds in scenarios.values():
            run = simulate_run(
                name,
                bdm,
                num_nodes=NODES,
                num_reduce_tasks=REDUCE_TASKS,
                node_speeds=speeds,
            )
            if base_time is None:
                base_time = run.execution_time
                row.append(round(base_time, 1))
            else:
                row.append(round(run.execution_time / base_time, 3))
        rows.append(row)
    return rows


def test_ablation_stragglers(benchmark):
    rows = benchmark.pedantic(straggler_rows, rounds=1, iterations=1)
    text = format_table(
        ["strategy", "homogeneous time [s]",
         "slowdown (lognormal 0.3)", "slowdown (one 4x straggler)"],
        rows,
        title=f"Ablation — heterogeneous nodes (DS1, n={NODES}, r={REDUCE_TASKS})",
    )
    publish("ABLATION-STRAGGLERS node heterogeneity", text)

    by_name = {row[0]: row for row in rows}
    # Balanced strategies degrade modestly under a 4x straggler (many
    # small tasks re-flow to healthy nodes).
    assert by_name["blocksplit"][3] < 2.0
    assert by_name["pairrange"][3] < 2.0
    # Fine granularity beats Basic under heterogeneity too: Basic's
    # absolute time remains the worst in every scenario.
    for column in (1,):
        assert by_name["basic"][column] > by_name["blocksplit"][column]
