"""Figure 8: dataset statistics table.

Paper reports, per dataset: entity count, number of blocks under the
default 3-letter-prefix blocking, and the size/pair share of the
largest block (DS1's largest block carries > 70 % of all pairs —
Section VI-B).  This bench regenerates the table from the synthetic
DS1/DS2 stand-ins and checks the calibration targets.
"""

from __future__ import annotations

from repro.analysis.experiments import dataset_statistics
from repro.analysis.reporting import format_table

from conftest import ds1_block_sizes, ds2_block_sizes, publish


def figure8_rows():
    rows = []
    for name, sizes in (("DS1 (products)", ds1_block_sizes()),
                        ("DS2 (publications)", ds2_block_sizes())):
        stats = dataset_statistics(list(sizes))
        rows.append(
            [
                name,
                int(stats["entities"]),
                int(stats["blocks"]),
                int(stats["pairs"]),
                round(stats["largest_block_entity_share"], 3),
                round(stats["largest_block_pair_share"], 3),
            ]
        )
    return rows


def test_fig08_dataset_statistics(benchmark):
    rows = benchmark.pedantic(figure8_rows, rounds=1, iterations=1)
    text = format_table(
        ["dataset", "entities", "blocks", "pairs",
         "largest block (entities)", "largest block (pairs)"],
        rows,
        title="Figure 8 — dataset statistics",
    )
    publish("FIG08 dataset statistics", text)

    ds1, ds2 = rows
    # Paper scale: 114 k / 1.4 M entities.
    assert ds1[1] == 114_000
    assert ds2[1] == 1_400_000
    # DS1's largest block: > 70 % of pairs, ~20 % of entities.
    assert ds1[5] > 0.70
    assert ds1[4] < 0.25
    # DS2 is the (much) bigger match problem.
    assert ds2[3] > 100 * ds1[3]
