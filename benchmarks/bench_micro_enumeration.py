"""Micro-benchmarks: enumeration arithmetic and the analytic planners.

The planners make DS2-scale experiments feasible; these benches pin
their cost at full DS1 scale (m=20, r=100).
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes
from repro.core.enumeration import PairEnumeration, PairRangeSpec
from repro.core.match_tasks import plan_block_split
from repro.core.planning import plan_basic, plan_blocksplit, plan_pairrange

from conftest import ds1_block_sizes


def _ds1_bdm():
    return bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)


def test_pair_index_throughput(benchmark):
    enum = PairEnumeration(list(ds1_block_sizes()))
    spec = PairRangeSpec(enum.total_pairs, 100)

    def run():
        total = 0
        for x in range(0, 400):
            total += enum.pair_index(0, x, x + 1)
        return total

    assert benchmark(run) > 0


def test_relevant_ranges_large_block(benchmark):
    enum = PairEnumeration(list(ds1_block_sizes()))
    spec = PairRangeSpec(enum.total_pairs, 100)

    def run():
        return enum.relevant_ranges(0, 5_000, spec)

    ranges = benchmark(run)
    assert len(ranges) >= 1


def test_plan_basic_ds1(benchmark):
    bdm = _ds1_bdm()
    plan = benchmark(lambda: plan_basic(bdm, 100))
    assert plan.total_pairs == bdm.pairs()


def test_plan_blocksplit_ds1(benchmark):
    bdm = _ds1_bdm()
    plan = benchmark(lambda: plan_blocksplit(bdm, 100))
    assert plan.total_pairs == bdm.pairs()


def test_plan_pairrange_ds1(benchmark):
    bdm = _ds1_bdm()
    plan = benchmark(lambda: plan_pairrange(bdm, 100))
    assert plan.total_pairs == bdm.pairs()


def test_blocksplit_greedy_assignment_ds1(benchmark):
    bdm = _ds1_bdm()
    assignment = benchmark(lambda: plan_block_split(bdm, 100))
    assert sum(assignment.reduce_comparisons) == bdm.pairs()
