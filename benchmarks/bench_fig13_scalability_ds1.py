"""Figure 13: execution times and speedup vs. cluster size (DS1).

Paper setup: n from 1 to 100 nodes with m = 2n map and r = 10n reduce
tasks.

Paper findings this bench reproduces:

* Basic does not scale beyond ~2 nodes — its time is floored by the
  single reduce task holding the largest block (~70 % of all pairs);
* BlockSplit and PairRange scale almost linearly up to ~10 nodes for
  this (smaller) dataset, then flatten as per-task overheads dominate;
* at n=100 BlockSplit edges out PairRange on DS1 because PairRange's
  larger map output is no longer amortised by matching work.
"""

from __future__ import annotations

from repro.analysis.experiments import sweep_nodes
from repro.analysis.metrics import speedup
from repro.analysis.reporting import format_series

from conftest import ALL_STRATEGIES, NOISE_SIGMA, ds1_block_sizes, publish

NODES = [1, 2, 5, 10, 20, 40, 100]


def figure13_series():
    results = sweep_nodes(
        ALL_STRATEGIES,
        NODES,
        list(ds1_block_sizes()),
        comparison_noise_sigma=NOISE_SIGMA,
    )
    times = {
        name: [round(results[n][name].execution_time, 1) for n in NODES]
        for name in ALL_STRATEGIES
    }
    speedups = {
        name: [round(s, 2) for s in speedup(times[name])]
        for name in ALL_STRATEGIES
    }
    return times, speedups


def test_fig13_scalability_ds1(benchmark):
    times, speedups = benchmark.pedantic(figure13_series, rounds=1, iterations=1)
    text = (
        format_series(
            "nodes", NODES, times,
            title="Figure 13a — execution time [s] vs. nodes (DS1, m=2n, r=10n)",
        )
        + "\n\n"
        + format_series(
            "nodes", NODES, speedups,
            title="Figure 13b — speedup vs. nodes (DS1)",
        )
    )
    publish("FIG13 scalability DS1", text)

    # Basic saturates almost immediately.
    assert speedups["basic"][-1] < 3.0
    # Balanced strategies scale nearly linearly to 10 nodes ...
    ten = NODES.index(10)
    assert speedups["blocksplit"][ten] > 6.0
    assert speedups["pairrange"][ten] > 6.0
    # ... and keep improving beyond, but sub-linearly on this small set.
    assert speedups["blocksplit"][-1] > speedups["blocksplit"][ten]
    assert speedups["blocksplit"][-1] < 100
    # At n=100 BlockSplit is at least on par with PairRange on DS1
    # (PairRange's extra map output is no longer amortised).
    assert times["blocksplit"][-1] <= times["pairrange"][-1] * 1.05
