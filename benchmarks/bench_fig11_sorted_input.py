"""Figure 11: BlockSplit/PairRange on unsorted vs. key-sorted input (DS1).

BlockSplit splits large blocks *by input partition*.  If the dataset is
sorted by title (= by blocking key, since the key is the title's
prefix) each large block concentrates in few map partitions, the split
degenerates, and BlockSplit's execution time deteriorates — the paper
measures ≈ +80 %.  PairRange's enumeration is independent of the
partitioning and is unaffected.
"""

from __future__ import annotations

from repro.analysis.experiments import sweep_input_order
from repro.analysis.reporting import format_series

from conftest import BALANCED_STRATEGIES, NOISE_SIGMA, ds1_block_sizes, publish

REDUCE_TASKS = [20, 40, 60, 80, 100, 120, 140, 160]


def figure11_series():
    results = sweep_input_order(
        BALANCED_STRATEGIES,
        ["shuffled", "sorted"],
        list(ds1_block_sizes()),
        num_map_tasks=20,
        num_nodes=10,
        reduce_task_counts=REDUCE_TASKS,
        comparison_noise_sigma=NOISE_SIGMA,
    )
    series = {}
    for order in ("shuffled", "sorted"):
        for name in BALANCED_STRATEGIES:
            label = f"{name} ({'unsorted' if order == 'shuffled' else 'sorted'})"
            series[label] = [
                round(results[order][r][name].execution_time, 1)
                for r in REDUCE_TASKS
            ]
    return results, series


def test_fig11_sorted_input(benchmark):
    results, series = benchmark.pedantic(figure11_series, rounds=1, iterations=1)
    text = format_series(
        "r",
        REDUCE_TASKS,
        series,
        title="Figure 11 — execution time [s], unsorted vs. sorted DS1 (n=10, m=20)",
    )
    publish("FIG11 sorted input", text)

    for i, r in enumerate(REDUCE_TASKS):
        bs_unsorted = series["blocksplit (unsorted)"][i]
        bs_sorted = series["blocksplit (sorted)"][i]
        pr_unsorted = series["pairrange (unsorted)"][i]
        pr_sorted = series["pairrange (sorted)"][i]
        # Sorting deteriorates BlockSplit substantially (paper: ~+80 %).
        assert bs_sorted > 1.3 * bs_unsorted
        # PairRange is insensitive to the input order (within noise).
        assert abs(pr_sorted - pr_unsorted) / pr_unsorted < 0.10
        # On sorted input PairRange clearly beats BlockSplit.
        assert pr_sorted < bs_sorted
