"""Micro-benchmarks: similarity kernels.

Pair comparison dominates ER runtime (> 95 % in the paper's reduce
phase); these benches track the cost of a single comparison at the
calibration length and validate the bounded-early-exit speedup the
matcher relies on.
"""

from __future__ import annotations

import random

from repro.er.similarity import (
    jaro_winkler_similarity,
    levenshtein_similarity,
    levenshtein_similarity_bounded,
    levenshtein_similarity_bounded_reference,
    ngram_jaccard,
    similarity_at_least,
)


def _title_pairs(n=200, seed=3):
    rng = random.Random(seed)
    words = ["panasonic", "lumix", "camera", "digital", "zoom", "kit",
             "sony", "alpha", "lens", "black", "silver", "battery"]
    pairs = []
    for _ in range(n):
        a = " ".join(rng.choices(words, k=4))
        b = " ".join(rng.choices(words, k=4))
        pairs.append((a, b))
    return pairs


def test_levenshtein_similarity_throughput(benchmark):
    pairs = _title_pairs()

    def run():
        return sum(levenshtein_similarity(a, b) for a, b in pairs)

    total = benchmark(run)
    assert total >= 0


def test_levenshtein_bounded_faster_on_dissimilar(benchmark):
    pairs = [("a" * 30, "b" * 30)] * 200

    def run():
        return sum(levenshtein_similarity_bounded(a, b, 0.8) for a, b in pairs)

    total = benchmark(run)
    assert total == 0.0


def test_levenshtein_reference_kernel_throughput(benchmark):
    """The pre-PR-3 two-row DP — the baseline the bit-parallel kernel
    is measured against (see benchmarks/perf_harness.py)."""
    pairs = _title_pairs()

    def run():
        return sum(
            levenshtein_similarity_bounded_reference(a, b, 0.8) for a, b in pairs
        )

    total = benchmark(run)
    assert total >= 0


def test_similarity_at_least_throughput(benchmark):
    """The boolean fast path: length filter + bounded kernel, no score."""
    pairs = _title_pairs()
    benchmark(lambda: sum(similarity_at_least(a, b, 0.8) for a, b in pairs))


def test_jaro_winkler_throughput(benchmark):
    pairs = _title_pairs()
    benchmark(lambda: sum(jaro_winkler_similarity(a, b) for a, b in pairs))


def test_ngram_jaccard_throughput(benchmark):
    pairs = _title_pairs()
    benchmark(lambda: sum(ngram_jaccard(a, b) for a, b in pairs))
