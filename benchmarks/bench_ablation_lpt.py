"""Ablation: BlockSplit's greedy LPT assignment vs. naive alternatives.

The paper sorts match tasks by descending size before greedy
assignment "to make it unlikely that they dominate or increase the
overall execution time".  This ablation quantifies that choice against
(a) unsorted greedy and (b) round-robin assignment on DS1.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes
from repro.analysis.metrics import WorkloadStats
from repro.analysis.reporting import format_table
from repro.core.match_tasks import assign_greedy, generate_match_tasks

from conftest import ds1_block_sizes, publish

REDUCE_TASKS = 100


def _assign_in_order(tasks, num_reduce_tasks):
    """Greedy least-loaded without the LPT sort (task-creation order)."""
    loads = [0] * num_reduce_tasks
    for task in tasks:
        target = min(range(num_reduce_tasks), key=lambda i: (loads[i], i))
        loads[target] += task.comparisons
    return loads


def _assign_round_robin(tasks, num_reduce_tasks):
    loads = [0] * num_reduce_tasks
    for i, task in enumerate(tasks):
        loads[i % num_reduce_tasks] += task.comparisons
    return loads


def ablation_rows():
    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    tasks, _split, _thr = generate_match_tasks(bdm, REDUCE_TASKS)
    _assignment, lpt_loads = assign_greedy(tasks, REDUCE_TASKS)
    rows = []
    for name, loads in (
        ("LPT greedy (paper)", lpt_loads),
        ("greedy, unsorted", _assign_in_order(tasks, REDUCE_TASKS)),
        ("round robin", _assign_round_robin(tasks, REDUCE_TASKS)),
    ):
        stats = WorkloadStats.from_workloads(loads)
        rows.append(
            [name, stats.maximum, round(stats.mean, 1), round(stats.imbalance, 4)]
        )
    return rows


def test_ablation_lpt_assignment(benchmark):
    rows = benchmark.pedantic(ablation_rows, rounds=1, iterations=1)
    text = format_table(
        ["assignment", "max pairs/task", "mean pairs/task", "imbalance"],
        rows,
        title=f"Ablation — match-task assignment policies (DS1, r={REDUCE_TASKS})",
    )
    publish("ABLATION-LPT assignment policy", text)

    lpt, unsorted_greedy, round_robin = rows
    # The paper's LPT ordering is at least as balanced as both naive
    # policies, and strictly better than round robin.
    assert lpt[3] <= unsorted_greedy[3] + 1e-9
    assert lpt[3] < round_robin[3]
