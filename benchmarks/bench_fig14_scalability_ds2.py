"""Figure 14: execution times and speedup vs. cluster size (DS2).

Same sweep as Figure 13 on the 1.4 M-record dataset (the paper plots
only BlockSplit and PairRange here — Basic is hopeless at this scale;
we include its floor at small n for reference in the text output).

Paper findings this bench reproduces:

* both strategies scale almost linearly up to ~40 nodes (vs. ~10 for
  DS1) thanks to the much larger per-task workloads;
* PairRange's perfectly uniform ranges pay off: it stays at least on
  par with BlockSplit across the sweep (the paper's "slightly more
  scalable for large match tasks").

This is the DS2-scale demonstration of the analytic planner path:
~10¹¹ pairs are planned and simulated in seconds.
"""

from __future__ import annotations

from repro.analysis.experiments import sweep_nodes
from repro.analysis.metrics import speedup
from repro.analysis.reporting import format_series

from conftest import BALANCED_STRATEGIES, NOISE_SIGMA, ds2_block_sizes, publish

NODES = [1, 2, 5, 10, 20, 40, 100]


def figure14_series():
    results = sweep_nodes(
        BALANCED_STRATEGIES,
        NODES,
        list(ds2_block_sizes()),
        comparison_noise_sigma=NOISE_SIGMA,
    )
    times = {
        name: [round(results[n][name].execution_time, 1) for n in NODES]
        for name in BALANCED_STRATEGIES
    }
    speedups = {
        name: [round(s, 2) for s in speedup(times[name])]
        for name in BALANCED_STRATEGIES
    }
    return times, speedups


def test_fig14_scalability_ds2(benchmark):
    times, speedups = benchmark.pedantic(figure14_series, rounds=1, iterations=1)
    text = (
        format_series(
            "nodes", NODES, times,
            title="Figure 14a — execution time [s] vs. nodes (DS2, m=2n, r=10n)",
        )
        + "\n\n"
        + format_series(
            "nodes", NODES, speedups,
            title="Figure 14b — speedup vs. nodes (DS2)",
        )
    )
    publish("FIG14 scalability DS2", text)

    forty = NODES.index(40)
    hundred = NODES.index(100)
    for name in BALANCED_STRATEGIES:
        # Near-linear scaling to 40 nodes (>= 70 % efficiency).
        assert speedups[name][forty] > 0.7 * 40
        # Still strong at 100 nodes — much better than DS1's speedup
        # at the same size (the paper's central DS2 observation).
        assert speedups[name][hundred] > 40
    # PairRange at least matches BlockSplit on the big dataset.
    assert times["pairrange"][hundred] <= times["blocksplit"][hundred] * 1.05
