"""Figure 10: execution times vs. number of reduce tasks (DS1).

Paper setup: DS1, n=10 nodes, m=20, r from 20 to 160.

Paper findings this bench reproduces:

* Basic is far slower throughout (factor ≈ 6 at r=160 in the paper;
  the exact factor depends on the largest block's pair share) and does
  not benefit from more reduce tasks — its time is floored by the
  largest block and can even *peak* when two large blocks hash to the
  same reduce task;
* BlockSplit and PairRange improve with more reduce tasks (finer
  granularity averages out computational skew);
* the ~35 s BDM overhead is included in the balanced strategies' times.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes, sweep_reduce_tasks
from repro.analysis.reporting import format_series

from conftest import ALL_STRATEGIES, NOISE_SIGMA, ds1_block_sizes, publish

REDUCE_TASKS = [20, 40, 60, 80, 100, 120, 140, 160]


def figure10_series():
    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    results = sweep_reduce_tasks(
        ALL_STRATEGIES,
        REDUCE_TASKS,
        bdm,
        num_nodes=10,
        comparison_noise_sigma=NOISE_SIGMA,
    )
    series = {
        name: [round(results[r][name].execution_time, 1) for r in REDUCE_TASKS]
        for name in ALL_STRATEGIES
    }
    return results, series


def test_fig10_reduce_tasks(benchmark):
    results, series = benchmark.pedantic(figure10_series, rounds=1, iterations=1)
    text = format_series(
        "r",
        REDUCE_TASKS,
        series,
        title="Figure 10 — execution time [s] vs. reduce tasks (DS1, n=10, m=20)",
    )
    publish("FIG10 reduce tasks", text)

    basic = series["basic"]
    blocksplit = series["blocksplit"]
    pairrange = series["pairrange"]
    # Balanced strategies beat Basic at every r; by a large factor at r=160.
    for i in range(len(REDUCE_TASKS)):
        assert blocksplit[i] < basic[i]
        assert pairrange[i] < basic[i]
    assert basic[-1] > 5 * blocksplit[-1]
    # Basic gains essentially nothing from r=20 -> r=160.
    assert min(basic) > 0.5 * max(basic)
    # The balanced strategies benefit from more reduce tasks: their
    # best configuration beats their r=20 configuration.
    assert min(blocksplit) < blocksplit[0]
    assert min(pairrange) < pairrange[0]
    # The two balanced strategies stay within ~15% of each other.
    for bs, pr in zip(blocksplit, pairrange):
        assert abs(bs - pr) / min(bs, pr) < 0.15

    # §VI-B: the BDM job overhead included in balanced times is ~35 s.
    from repro.cluster.simulation import ClusterSpec
    from repro.core.planning import plan_bdm_job, plan_blocksplit
    from repro.core.workflow import simulate_planned_workflow

    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    timeline = simulate_planned_workflow(
        plan_blocksplit(bdm, 100),
        ClusterSpec(10),
        bdm_plan=plan_bdm_job(bdm, 100),
    )
    assert 25 <= timeline.jobs[0].execution_time <= 45
