"""Figures 15-17 (Appendix I): two-source matching at benchmark scale.

The appendix figures are worked examples (their exact numbers are
asserted in tests/core/test_two_source_examples.py).  This bench scales
the scenario up — an R×S linkage between two skewed product catalogues
— and reports the quantities the appendix dataflows illustrate:
per-reduce-task comparison counts, shuffle volumes and simulated
execution times for both dual-source strategies against a no-balancing
baseline.
"""

from __future__ import annotations

from repro.analysis.metrics import WorkloadStats
from repro.analysis.reporting import format_table
from repro.cluster.simulation import ClusterSpec
from repro.core.bdm import BlockDistributionMatrix
from repro.core.planning import (
    plan_bdm_job,
    plan_dual_blocksplit,
    plan_dual_pairrange,
)
from repro.core.two_source import DualSourceBDM
from repro.core.workflow import simulate_planned_workflow
from repro.datasets.partitioning import distribute_block_sizes
from repro.datasets.skew import zipf_block_sizes

from conftest import NOISE_SIGMA, publish

R_ENTITIES = 60_000
S_ENTITIES = 90_000
BLOCKS = 1_500
R_PARTITIONS = 8
S_PARTITIONS = 12
REDUCE_TASKS = 80
NODES = 10


def build_dual_bdm() -> DualSourceBDM:
    r_sizes = zipf_block_sizes(R_ENTITIES, BLOCKS, 1.2)
    s_sizes = zipf_block_sizes(S_ENTITIES, BLOCKS, 1.2)
    r_matrix = distribute_block_sizes(r_sizes, R_PARTITIONS, seed=5)
    s_matrix = distribute_block_sizes(s_sizes, S_PARTITIONS, seed=6)
    keys = [f"b{k}" for k in range(BLOCKS)]
    rows = [
        r_matrix[k] + s_matrix[k]
        for k in range(BLOCKS)
        if sum(r_matrix[k]) + sum(s_matrix[k]) > 0
    ]
    keys = [keys[k] for k in range(BLOCKS) if sum(r_matrix[k]) + sum(s_matrix[k]) > 0]
    base = BlockDistributionMatrix(keys, rows)
    return DualSourceBDM(base, ["R"] * R_PARTITIONS + ["S"] * S_PARTITIONS)


def two_source_rows():
    bdm = build_dual_bdm()
    cluster = ClusterSpec(NODES)
    rows = []
    for name, planner in (
        ("blocksplit-2src", plan_dual_blocksplit),
        ("pairrange-2src", plan_dual_pairrange),
    ):
        plan = planner(bdm, REDUCE_TASKS)
        timeline = simulate_planned_workflow(
            plan,
            cluster,
            bdm_plan=plan_bdm_job(bdm, REDUCE_TASKS),
            comparison_noise_sigma=NOISE_SIGMA,
        )
        stats = WorkloadStats.from_workloads(plan.reduce_comparisons)
        rows.append(
            [
                name,
                plan.total_pairs,
                round(stats.imbalance, 3),
                plan.total_map_output_kv,
                round(timeline.execution_time, 1),
            ]
        )
    # No-balancing reference: whole blocks on hashed reduce tasks
    # (Basic semantics applied to the cross-source pair counts).
    from repro.mapreduce.job import stable_hash

    loads = [0] * REDUCE_TASKS
    for k in range(bdm.num_blocks):
        loads[stable_hash(bdm.key_of(k)) % REDUCE_TASKS] += bdm.block_pairs(k)
    stats = WorkloadStats.from_workloads(loads)
    rows.append(["basic (reference)", sum(loads), round(stats.imbalance, 3),
                 R_ENTITIES + S_ENTITIES, None])
    return bdm, rows


def test_fig15_17_two_sources(benchmark):
    bdm, rows = benchmark.pedantic(two_source_rows, rounds=1, iterations=1)
    text = format_table(
        ["strategy", "total R×S pairs", "imbalance (max/mean)",
         "map output KV", "simulated time [s]"],
        [[c if c is not None else "-" for c in row] for row in rows],
        title=(
            "Figures 15-17 — two-source linkage "
            f"(|R|={R_ENTITIES}, |S|={S_ENTITIES}, r={REDUCE_TASKS}, n={NODES})"
        ),
    )
    publish("FIG15-17 two-source matching", text)

    blocksplit, pairrange, basic = rows
    # Both strategies cover the identical pair total.
    assert blocksplit[1] == pairrange[1] == bdm.pairs()
    # PairRange is perfectly balanced; BlockSplit near-perfect; the
    # unbalanced reference is far off.
    assert pairrange[2] <= blocksplit[2] <= 1.5
    assert basic[2] > 5.0
