"""Figure 9: execution time per 10⁴ pairs under exponential data skew.

Paper setup: DS1 entity count, b=100 synthetic blocks with block k's
size ∝ e^(−s·k), n=10 nodes, m=20, r=100; skew factor s from 0 to 1.

Paper findings this bench reproduces:

* Basic is fastest at s=0 (no BDM job / balancing overhead) but
  degrades steeply — at s=1 it is ~12× slower per pair (225 ms vs
  ~18 ms per 10⁴ comparisons);
* BlockSplit and PairRange stay essentially flat across all skews,
  PairRange marginally ahead.
"""

from __future__ import annotations

from repro.analysis.experiments import sweep_skew
from repro.analysis.reporting import format_series
from repro.datasets.generators import DS1_PROFILE

from conftest import ALL_STRATEGIES, NOISE_SIGMA, publish

SKEWS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def figure9_series():
    results = sweep_skew(
        ALL_STRATEGIES,
        SKEWS,
        num_entities=DS1_PROFILE.num_entities,
        num_blocks=100,
        num_nodes=10,
        num_map_tasks=20,
        num_reduce_tasks=100,
        comparison_noise_sigma=NOISE_SIGMA,
    )
    series = {
        name: [round(results[s][name].ms_per_10k_pairs, 2) for s in SKEWS]
        for name in ALL_STRATEGIES
    }
    return results, series


def test_fig09_skew_robustness(benchmark):
    results, series = benchmark.pedantic(figure9_series, rounds=1, iterations=1)
    text = format_series(
        "skew s",
        SKEWS,
        series,
        title="Figure 9 — ms per 10^4 pairs vs. data skew "
        "(DS1 size, b=100, n=10, m=20, r=100)",
    )
    publish("FIG09 skew robustness", text)

    basic, blocksplit, pairrange = (
        series["basic"], series["blocksplit"], series["pairrange"]
    )
    # Basic is fastest on uniform data (no load-balancing overhead) ...
    assert basic[0] < blocksplit[0]
    assert basic[0] < pairrange[0]
    # ... but collapses under skew: >= 8x slower per pair at s=1.
    assert basic[-1] > 8 * blocksplit[-1]
    # Balanced strategies are robust: flat within 2x over the whole range.
    for values in (blocksplit, pairrange):
        assert max(values) < 2 * min(values)
    # Execution time per pair shrinks with skew for the balanced
    # strategies (fixed BDM overhead amortised over more pairs).
    assert blocksplit[-1] < blocksplit[0]
