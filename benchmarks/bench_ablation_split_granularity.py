"""Ablation: BlockSplit's split granularity is the number of map
partitions m.

BlockSplit splits oversized blocks into exactly m sub-blocks (one per
input partition).  The number of map tasks therefore bounds how finely
a dominant block can be parallelised — the effect behind the paper's
remark that Figure 11's sorted-input degradation "can be diminished by
a higher number of map tasks".  This bench sweeps m at fixed r and
reports BlockSplit's balance and simulated time; PairRange is shown as
the m-independent reference.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes, simulate_run
from repro.analysis.reporting import format_table

from conftest import ds1_block_sizes, publish

MAP_TASKS = [2, 5, 10, 20, 40]
REDUCE_TASKS = 100
NODES = 10


def granularity_rows():
    rows = []
    for m in MAP_TASKS:
        bdm = bdm_for_block_sizes(list(ds1_block_sizes()), m, seed=13)
        blocksplit = simulate_run(
            "blocksplit", bdm, num_nodes=NODES, num_reduce_tasks=REDUCE_TASKS
        )
        pairrange = simulate_run(
            "pairrange", bdm, num_nodes=NODES, num_reduce_tasks=REDUCE_TASKS
        )
        rows.append(
            [
                m,
                round(blocksplit.reduce_stats.imbalance, 3),
                round(blocksplit.execution_time, 1),
                round(pairrange.reduce_stats.imbalance, 3),
                round(pairrange.execution_time, 1),
            ]
        )
    return rows


def test_ablation_split_granularity(benchmark):
    rows = benchmark.pedantic(granularity_rows, rounds=1, iterations=1)
    text = format_table(
        ["m", "blocksplit imbalance", "blocksplit time [s]",
         "pairrange imbalance", "pairrange time [s]"],
        rows,
        title=(
            "Ablation — split granularity: map tasks m "
            f"(DS1, r={REDUCE_TASKS}, n={NODES})"
        ),
    )
    publish("ABLATION-GRANULARITY blocksplit split granularity", text)

    # BlockSplit's balance improves (or holds) as m grows...
    imbalances = [row[1] for row in rows]
    assert imbalances[-1] <= imbalances[0]
    # ...while PairRange is flat in m (within numerical noise).
    pr_imbalances = [row[3] for row in rows]
    assert max(pr_imbalances) - min(pr_imbalances) < 0.01
    # At m=2, a DS1-dominant block cannot be spread over 100 reduce
    # tasks: BlockSplit's imbalance is visibly worse than at m=40.
    assert rows[0][1] > rows[-1][1]
