"""Ablation: the BDM job's combiner (the paper's footnote 2).

Aggregating blocking-key counts per map task before the shuffle shrinks
Job 1's shuffle volume from one KV per *entity* to one KV per distinct
(block, partition) cell.  This bench quantifies the reduction and its
(small) effect on end-to-end time at DS1 scale.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes
from repro.analysis.reporting import format_table
from repro.cluster.simulation import ClusterSpec
from repro.core.planning import plan_bdm_job, plan_blocksplit
from repro.core.workflow import simulate_planned_workflow

from conftest import ds1_block_sizes, publish


def combiner_rows():
    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    plan = plan_blocksplit(bdm, 100)
    cluster = ClusterSpec(10)
    rows = []
    for label, use_combiner in (("with combiner", True), ("without combiner", False)):
        bdm_plan = plan_bdm_job(bdm, 100, use_combiner=use_combiner)
        timeline = simulate_planned_workflow(
            plan, cluster, bdm_plan=bdm_plan
        )
        rows.append(
            [
                label,
                sum(bdm_plan.map_output_kv),
                round(timeline.jobs[0].execution_time, 1),
                round(timeline.execution_time, 1),
            ]
        )
    return rows


def test_ablation_bdm_combiner(benchmark):
    rows = benchmark.pedantic(combiner_rows, rounds=1, iterations=1)
    text = format_table(
        ["configuration", "job1 shuffle KV", "job1 time [s]", "workflow time [s]"],
        rows,
        title="Ablation — BDM combiner (DS1, m=20, r=100, n=10)",
    )
    publish("ABLATION-COMBINER bdm combiner", text)

    with_combiner, without_combiner = rows
    # The combiner collapses 114k entity KVs to <= b*m distinct cells.
    assert with_combiner[1] < without_combiner[1]
    assert with_combiner[1] <= 2_800 * 20
    assert without_combiner[1] == 114_000
    # Job 1 gets faster; the end-to-end effect is small (reduce-bound).
    assert with_combiner[2] <= without_combiner[2]
