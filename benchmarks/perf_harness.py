"""The repo's perf trajectory harness: measured before/after hot-path numbers.

Runs the comparison hot path both ways — the legacy configuration
(reference two-row DP kernel, per-pair attribute extraction, tuple
shuffle keys) against the optimised one (Myers bit-parallel kernel,
prepared matchers with LRU memoisation, packed-int keys), and the
scalar per-pair reduce loops against the columnar batch kernel
(``batch_kernel=True``, micro and end-to-end) and the per-distinct
scalar Myers loop against the column-batched Myers recurrence
(``micro_myers_batch`` plus a near-duplicate-heavy end-to-end leg) —
plus columnar-shard loading vs CSV parsing and the fig-13/fig-14
analytic scalability sweeps, and writes everything to a
``BENCH_<n>.json`` at the repo root.  Each PR that claims a hot-path
win appends a new ``BENCH_<n>.json``; diffing them is the perf
trajectory this repository tracks.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py             # full run
    PYTHONPATH=src python benchmarks/perf_harness.py --small     # CI smoke
    PYTHONPATH=src python benchmarks/perf_harness.py --assert-speedups

The exit status reflects *functional* health only: non-zero when the
before and after configurations disagree on matches or counters (they
must be byte-identical), never because a timing regressed — except
under ``--assert-speedups``, which additionally enforces the headline
targets (≥3× similarity microbench, ≥2× batch-kernel microbench,
≥2× batched-Myers microbench, ≥1.5× end-to-end both ways) for local
verification.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.generators import generate_products  # noqa: E402
from repro.datasets.skew import zipf_block_sizes  # noqa: E402
from repro.engine import ERPipeline  # noqa: E402
from repro.er.blocking import PrefixBlocking  # noqa: E402
from repro.er.entity import Entity  # noqa: E402
from repro.er.matching import ThresholdMatcher  # noqa: E402
from repro.er.similarity import (  # noqa: E402
    levenshtein_similarity,
    levenshtein_similarity_bounded,
    levenshtein_similarity_bounded_reference,
    similarity_at_least,
)
from repro.mapreduce.shuffle import shuffle_bucket  # noqa: E402
from repro.mapreduce.types import KeyValue, packed_keys  # noqa: E402

BENCH_NUMBER = 10
SEED = 20260727
THRESHOLD = 0.8


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------


def best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(fn, repeats: int) -> dict:
    """Warm-up + median-of-N timing for IO-touching workloads.

    ``best_of`` is right for CPU-bound loops, but sections that hit the
    filesystem (spill files, shard loading) see one-sided first-touch
    noise: the first run pays cold caches and file creation, and a
    single lucky/unlucky run can swing a before/after ratio either way
    (BENCH_3 recorded a spurious 0.90× on the external-shuffle section
    from exactly this).  One untimed warm-up absorbs the first-touch
    cost, the median of ``repeats`` timed runs resists stragglers in
    both directions, and the recorded spread ``(max − min) / median``
    says how trustworthy the number is.  Each timed run executes with
    the cyclic GC off after an untimed collect — allocation-heavy
    loads (tens of thousands of entities per pass) otherwise land a
    generational collection inside a random subset of runs, which is
    where BENCH_8's 0.64 ``after_spread`` on the mmap loads came from.
    """
    import gc

    fn()  # warm-up: first-touch IO (file creation, page cache) untimed
    times = []
    for _ in range(max(3, repeats)):
        gc.collect()  # untimed: start every run from the same GC state
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            times.append(time.perf_counter() - start)
        finally:
            if gc_was_enabled:
                gc.enable()
    times.sort()
    median = times[len(times) // 2]
    return {
        "median_s": median,
        "best_s": times[0],
        "spread": (times[-1] - times[0]) / median if median else 0.0,
        "runs": len(times),
    }


def section(title: str) -> None:
    print(f"\n{'-' * 64}\n{title}\n{'-' * 64}")


# ---------------------------------------------------------------------------
# Micro: similarity kernels
# ---------------------------------------------------------------------------


def title_pairs(n: int, seed: int = 3) -> list[tuple[str, str]]:
    rng = random.Random(seed)
    words = ["panasonic", "lumix", "camera", "digital", "zoom", "kit",
             "sony", "alpha", "lens", "black", "silver", "battery"]
    pairs = []
    for _ in range(n):
        a = " ".join(rng.choices(words, k=4))
        if rng.random() < 0.5:
            # Near-duplicate: perturb a few characters.
            chars = list(a)
            for _ in range(rng.randrange(1, 5)):
                chars[rng.randrange(len(chars))] = rng.choice("abcdexyz ")
            b = "".join(chars)
        else:
            b = " ".join(rng.choices(words, k=4))
        pairs.append((a, b))
    return pairs


def bench_micro_similarity(small: bool) -> dict:
    pairs = title_pairs(120 if small else 400)
    repeats = 2 if small else 5

    def run_reference():
        return sum(
            levenshtein_similarity_bounded_reference(a, b, THRESHOLD)
            for a, b in pairs
        )

    def run_kernel():
        return sum(
            levenshtein_similarity_bounded(a, b, THRESHOLD) for a, b in pairs
        )

    assert abs(run_reference() - run_kernel()) < 1e-12  # same scores
    before = best_of(run_reference, repeats)
    after = best_of(run_kernel, repeats)

    def run_unbounded():
        return sum(levenshtein_similarity(a, b) for a, b in pairs)

    def run_boolean():
        return sum(similarity_at_least(a, b, THRESHOLD) for a, b in pairs)

    unbounded = best_of(run_unbounded, repeats)
    boolean = best_of(run_boolean, repeats)
    result = {
        "pairs": len(pairs),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "unbounded_after_s": unbounded,
        "similarity_at_least_s": boolean,
    }
    print(f"bounded similarity  before={before * 1e3:8.2f}ms  "
          f"after={after * 1e3:8.2f}ms  speedup={result['speedup']:.2f}x")
    return result


# ---------------------------------------------------------------------------
# Micro: prepared matcher (per-group extraction + memoisation)
# ---------------------------------------------------------------------------


def bench_micro_matcher(small: bool) -> dict:
    # A skewed reduce group, the workload the prepared path targets:
    # dirty catalogs repeat listings, so many entities carry *exactly*
    # the same title (plus corrupted near-duplicates around them).
    # Interning turns repeated-value comparisons into pointer checks
    # and the LRU memo covers repeated near-duplicate pairs; the legacy
    # path re-extracts and re-scores every single pair.
    n = 80 if small else 250
    rng = random.Random(SEED % 997)
    base = [title for title, _b in title_pairs(max(12, n // 8), seed=5)]
    titles = []
    for i in range(n):
        if rng.random() < 0.6:
            titles.append(rng.choice(base))  # exact repeat
        else:
            chars = list(rng.choice(base))
            chars[rng.randrange(len(chars))] = rng.choice("abcdxyz ")
            titles.append("".join(chars))  # near-duplicate
    entities = [Entity(f"e{i}", {"title": t}) for i, t in enumerate(titles)]
    repeats = 2 if small else 5

    def run_legacy():
        matcher = ThresholdMatcher("title", THRESHOLD, prepared=False, memoize=0)
        hits = 0
        for i, e1 in enumerate(entities):
            for e2 in entities[i + 1:]:
                if matcher.match(e1, e2) is not None:
                    hits += 1
        return hits

    def run_prepared():
        matcher = ThresholdMatcher("title", THRESHOLD)
        prepared = [matcher.prepare(e) for e in entities]
        hits = 0
        for i, p1 in enumerate(prepared):
            for p2 in prepared[i + 1:]:
                if matcher.match_prepared(p1, p2) is not None:
                    hits += 1
        return hits

    assert run_legacy() == run_prepared()  # same matches
    before = best_of(run_legacy, repeats)
    after = best_of(run_prepared, repeats)
    result = {
        "entities": n,
        "pairs": n * (n - 1) // 2,
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }
    print(f"prepared matcher    before={before * 1e3:8.2f}ms  "
          f"after={after * 1e3:8.2f}ms  speedup={result['speedup']:.2f}x")
    return result


# ---------------------------------------------------------------------------
# Micro: packed-key shuffle
# ---------------------------------------------------------------------------


def bench_micro_shuffle(small: bool) -> dict:
    from repro.core.bdm import analytic_bdm_from_block_sizes
    from repro.core.keys import PairRangeKey
    from repro.core.pairrange import PairRangeJob
    from repro.mapreduce.external_shuffle import ExternalShuffle

    # Bucket sizes matter: packing pays one encode per record to save
    # ~log2(n) comparison walks per record, so it amortises on the
    # tens-of-thousands-record buckets real reduce tasks see.
    rng = random.Random(SEED)
    num_blocks = 40 if small else 500
    sizes = [[rng.randrange(1, 20) for _ in range(4)] for _ in range(num_blocks)]
    bdm = analytic_bdm_from_block_sizes(sizes)
    repeats = 3 if small else 8
    num_reduce = 8

    def build_bucket(job):
        # Built once and shared by both runs: timsort is adaptive, so
        # the packed and tuple paths must sort the *same* permutation.
        bucket = []
        enumeration = job.enumeration
        for k, n in enumerate(enumeration.block_sizes):
            for x in range(n):
                for r_index in enumeration.relevant_ranges(k, x, job.spec):
                    bucket.append(
                        KeyValue(PairRangeKey(r_index, k, x), ("value", x))
                    )
        random.Random(SEED + 1).shuffle(bucket)
        return bucket

    shared_bucket: list = []

    def run(enabled):
        with packed_keys(enabled):
            job = PairRangeJob(bdm, ThresholdMatcher(), num_reduce)
        if not shared_bucket:
            shared_bucket.extend(build_bucket(job))
        bucket = shared_bucket

        def sort_group():
            return shuffle_bucket(job, bucket)

        def spill_drain():
            with ExternalShuffle(job, num_reduce, len(bucket) // 4) as spill:
                spill.add_records(bucket)
                return [len(b) for b in spill.buckets()]

        in_memory = best_of(sort_group, repeats)
        # Spilling hits the filesystem: median-of-N with a warm-up, not
        # best-of (see measure() — this section is where BENCH_3 logged
        # a spurious 0.90×).
        external = measure(spill_drain, max(3, repeats // 2))
        fingerprint = [(g.key, g.values) for g in sort_group()]
        return in_memory, external, fingerprint

    after, after_ext, fp_packed = run(True)
    before, before_ext, fp_tuple = run(False)
    assert fp_packed == fp_tuple  # byte-identical grouping
    result = {
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "external_before_s": before_ext["median_s"],
        "external_after_s": after_ext["median_s"],
        "external_speedup": before_ext["median_s"] / after_ext["median_s"],
        "external_before_spread": before_ext["spread"],
        "external_after_spread": after_ext["spread"],
        "external_runs": after_ext["runs"],
    }
    print(f"packed-key shuffle  before={before * 1e3:8.2f}ms  "
          f"after={after * 1e3:8.2f}ms  speedup={result['speedup']:.2f}x")
    print(f"  + spill-to-disk   before={result['external_before_s'] * 1e3:8.2f}ms  "
          f"after={result['external_after_s'] * 1e3:8.2f}ms  "
          f"speedup={result['external_speedup']:.2f}x  "
          f"(median of {result['external_runs']}, spread "
          f"{result['external_before_spread']:.0%}/"
          f"{result['external_after_spread']:.0%})")
    return result


# ---------------------------------------------------------------------------
# Micro: columnar batch kernel vs scalar pair loop
# ---------------------------------------------------------------------------


def bench_micro_batch_kernel(small: bool) -> dict:
    from repro.er.batch_kernel import TrianglePairs, active_numpy

    # One skewed reduce group, the batch kernel's target workload: a
    # dirty catalog block where most listings are verbatim repeats of a
    # small base set plus typo'd near-duplicates around them.  The
    # kernel packs the group once, settles repeat pairs through the
    # vectorized equality/length filters, and runs Myers once per
    # *distinct* surviving pair; the scalar loop pays a Python call and
    # a memo probe for every single pair.  Both use the pipeline's
    # default matcher configuration.
    n = 150 if small else 400
    rng = random.Random(SEED % 613)
    words = ["panasonic", "lumix", "camera", "digital", "zoom", "kit",
             "sony", "alpha", "lens", "black", "silver", "battery",
             "dmc", "fz", "hd", "travel", "pack", "bundle"]
    base = [" ".join(rng.choices(words, k=rng.randrange(2, 8)))
            for _ in range(max(10, n // 10))]
    titles = []
    for _ in range(n):
        if rng.random() < 0.75:
            titles.append(rng.choice(base))  # verbatim repeat
        else:
            chars = list(rng.choice(base))
            chars[rng.randrange(len(chars))] = rng.choice("abcdxyz ")
            titles.append("".join(chars))  # near-duplicate
    entities = [Entity(f"e{i}", {"title": t}) for i, t in enumerate(titles)]
    spec = TrianglePairs(n)
    repeats = 3 if small else 6

    def run_scalar():
        matcher = ThresholdMatcher("title", THRESHOLD)
        prepared = [matcher.prepare(e) for e in entities]
        match_prepared = matcher.match_prepared
        out = []
        for i, j in spec.iter_pairs():
            pair = match_prepared(prepared[i], prepared[j])
            if pair is not None:
                out.append(pair)
        return out

    def run_batched():
        matcher = ThresholdMatcher("title", THRESHOLD)
        prepared = [matcher.prepare(e) for e in entities]
        return matcher.match_batch(prepared, spec)

    fp = lambda pairs: [(p.id1, p.id2, p.similarity) for p in pairs]  # noqa: E731
    assert fp(run_scalar()) == fp(run_batched())  # byte-identical matches
    before = best_of(run_scalar, repeats)
    after = best_of(run_batched, repeats)
    result = {
        "entities": n,
        "pairs": spec.count,
        "numpy": active_numpy() is not None,
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
    }
    print(f"batch kernel        before={before * 1e3:8.2f}ms  "
          f"after={after * 1e3:8.2f}ms  speedup={result['speedup']:.2f}x  "
          f"(numpy={'yes' if result['numpy'] else 'no'})")
    return result


# ---------------------------------------------------------------------------
# Micro: batched Myers recurrence vs per-distinct scalar Myers
# ---------------------------------------------------------------------------


class _myers_lanes:
    """Temporarily raise the batched-Myers lane floor (``1 << 60``
    disables the batched recurrence, reverting to the per-distinct
    scalar Myers loop — the pre-batched configuration)."""

    def __init__(self, min_lanes: int):
        self.min_lanes = min_lanes

    def __enter__(self):
        import repro.er.batch_kernel as bk

        self._bk = bk
        self._saved = bk.MYERS_MIN_LANES
        bk.MYERS_MIN_LANES = self.min_lanes

    def __exit__(self, *exc):
        self._bk.MYERS_MIN_LANES = self._saved


def bench_micro_myers_batch(small: bool) -> dict:
    from repro.er.batch_kernel import (
        TrianglePairs,
        active_numpy,
        score_pair_batch,
    )

    # A distinct-pair-heavy reduce group — the regime the batched Myers
    # recurrence targets.  Unlike the batch-kernel micro above (mostly
    # verbatim repeats that settle in the equality filter), here nearly
    # every entity is a typo'd variant, so the surviving work is tens of
    # thousands of *distinct* Myers calls.  Before = the batch kernel
    # with the batched recurrence disabled (PR 8's per-distinct scalar
    # Myers loop); after = the same kernel routing survivor lanes
    # through ``myers_distance_batch``.  Matches, counters and the
    # residual memo cache must stay byte-identical either way.
    n = 150 if small else 400
    rng = random.Random(SEED % 821)
    words = ["widget", "gadget", "sprocket", "flange", "gizmo",
             "doohickey", "panasonic", "lumix", "camera", "zoom"]
    base = [
        " ".join(rng.choices(words, k=5)) + f" #{i:03d}"
        for i in range(max(8, n // 10))
    ]

    def typo(s):
        k = rng.randrange(len(s))
        op = rng.randrange(3)
        if op == 0:
            return s[:k] + rng.choice("abcdexyz ") + s[k:]
        if op == 1:
            return s[:k] + s[k + 1:]
        return s[:k] + rng.choice("abcdexyz ") + s[k + 1:]

    texts = []
    for i in range(n):
        s = base[i % len(base)]
        for _ in range(rng.randrange(3)):
            s = typo(s)
        texts.append(s)
    spec = TrianglePairs(n)
    repeats = 2 if small else 5

    def run(batched_myers: bool):
        with _myers_lanes(4 if batched_myers else 1 << 60):
            cache: dict = {}
            scores, hits, misses = score_pair_batch(
                texts, spec, THRESHOLD, cache=cache, memoize=4096
            )
            return list(scores), hits, misses, list(cache.items())

    functional_ok = run(False) == run(True)
    before = best_of(lambda: run(False), repeats)
    after = best_of(lambda: run(True), repeats)
    result = {
        "entities": n,
        "pairs": spec.count,
        "numpy": active_numpy() is not None,
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "functional_ok": functional_ok,
    }
    marker = "" if functional_ok else "  ** FUNCTIONAL MISMATCH **"
    print(f"batched Myers       before={before * 1e3:8.2f}ms  "
          f"after={after * 1e3:8.2f}ms  speedup={result['speedup']:.2f}x  "
          f"(numpy={'yes' if result['numpy'] else 'no'}){marker}")
    return result


# ---------------------------------------------------------------------------
# Micro: columnar shard loading vs CSV parsing
# ---------------------------------------------------------------------------


def bench_micro_columnar_load(small: bool) -> dict:
    import tempfile

    from repro.datasets.loaders import save_entities_csv
    from repro.io import ColumnarShardSource, CsvShardSource, write_columnar

    n = 1_000 if small else 10_000
    num_shards = 4
    entities = generate_products(n, seed=SEED % 1009)
    repeats = 3 if small else 6

    with tempfile.TemporaryDirectory(prefix="repro-er-bench-") as tmp:
        tmp_path = Path(tmp)
        csv_path = tmp_path / "entities.csv"
        save_entities_csv(entities, csv_path)
        cols_dir = write_columnar(
            CsvShardSource(csv_path, num_shards=num_shards), tmp_path / "cols"
        )

        def load_csv():
            return list(
                CsvShardSource(csv_path, num_shards=num_shards).iter_records()
            )

        def load_columnar():
            source = ColumnarShardSource(cols_dir)
            try:
                return list(source.iter_records())
            finally:
                source.close()

        assert load_csv() == load_columnar()  # byte-identical entities
        # Page-cache warm-up: read every byte of both representations
        # untimed before either timed sequence.  measure()'s own warm-up
        # only touches the *current* loader's files, so the first timed
        # section would otherwise race the other's cold pages (the
        # second ingredient, GC isolation per timed run, lives in
        # measure() itself — both fed BENCH_8's 0.64 after_spread).
        for path in [csv_path, *sorted(cols_dir.rglob("*"))]:
            if path.is_file():
                path.read_bytes()
        before = measure(load_csv, repeats)
        after = measure(load_columnar, repeats)

    result = {
        "entities": n,
        "num_shards": num_shards,
        "before_s": before["median_s"],
        "after_s": after["median_s"],
        "speedup": before["median_s"] / after["median_s"],
        "before_spread": before["spread"],
        "after_spread": after["spread"],
    }
    print(f"columnar load       before={result['before_s'] * 1e3:8.2f}ms  "
          f"after={result['after_s'] * 1e3:8.2f}ms  "
          f"speedup={result['speedup']:.2f}x")
    return result


# ---------------------------------------------------------------------------
# End-to-end: full pipelines, legacy vs optimised configuration
# ---------------------------------------------------------------------------


class _ReferenceSimilarity:
    """Picklable pre-optimisation scoring function (see equivalence tests)."""

    def __init__(self, threshold: float):
        self.threshold = threshold

    def __call__(self, a: str, b: str) -> float:
        return levenshtein_similarity_bounded_reference(a, b, self.threshold)


def _e2e_fingerprint(result) -> tuple:
    return (
        tuple((p.id1, p.id2, p.similarity) for p in result.matches),
        result.job2.counters.as_dict(),
        tuple(result.reduce_comparisons()),
    )


def bench_e2e(strategy: str, num_entities: int, small: bool) -> dict:
    entities = generate_products(num_entities, seed=SEED % 1000)
    m, r = (3, 5) if small else (4, 10)

    def run(legacy: bool):
        if legacy:
            matcher = ThresholdMatcher(
                "title", THRESHOLD, _ReferenceSimilarity(THRESHOLD),
                prepared=False, memoize=0,
            )
        else:
            matcher = ThresholdMatcher("title", THRESHOLD)
        with packed_keys(not legacy):
            pipeline = ERPipeline(
                strategy,
                PrefixBlocking("title"),
                matcher,
                num_map_tasks=m,
                num_reduce_tasks=r,
            )
            return pipeline.run(entities)

    start = time.perf_counter()
    new_result = run(legacy=False)
    after = time.perf_counter() - start
    start = time.perf_counter()
    old_result = run(legacy=True)
    before = time.perf_counter() - start

    functional_ok = _e2e_fingerprint(new_result) == _e2e_fingerprint(old_result)
    result = {
        "entities": num_entities,
        "num_map_tasks": m,
        "num_reduce_tasks": r,
        "comparisons": new_result.total_comparisons(),
        "matches": len(new_result.matches),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "functional_ok": functional_ok,
    }
    marker = "" if functional_ok else "  ** FUNCTIONAL MISMATCH **"
    print(f"e2e {strategy:<11}     before={before:8.3f}s   "
          f"after={after:8.3f}s   speedup={result['speedup']:.2f}x{marker}")
    return result


# ---------------------------------------------------------------------------
# End-to-end: batched reduce loops vs scalar pair loops
# ---------------------------------------------------------------------------


def _dirty_feed(num_base: int, repeat_factor: float, seed: int) -> list[Entity]:
    """A catalog-aggregation corpus: base listings plus verbatim repeats.

    Aggregating multiple feeds of the same catalog re-ingests the same
    listing verbatim under a fresh id — the duplicate-heavy regime the
    paper's dirty DS2 corpus exhibits and the batch kernel targets
    (repeat pairs settle in the vectorized equality filter and each
    distinct near-duplicate pair runs Myers once per group).
    """
    base = generate_products(num_base, seed=seed)
    rng = random.Random(seed + 1)
    out = list(base)
    next_id = len(base)
    for _ in range(int(num_base * repeat_factor)):
        entity = rng.choice(base)
        out.append(Entity(f"p{next_id}", dict(entity.attributes), entity.source))
        next_id += 1
    rng.shuffle(out)
    return out


def bench_e2e_batched(strategy: str, num_base: int, small: bool) -> dict:
    entities = _dirty_feed(num_base, 1.0, SEED % 1000)
    m, r = (3, 5) if small else (4, 10)

    def run(batch: bool):
        pipeline = ERPipeline(
            strategy,
            PrefixBlocking("title"),
            ThresholdMatcher("title", THRESHOLD),
            num_map_tasks=m,
            num_reduce_tasks=r,
            batch_kernel=batch,
        )
        return pipeline.run(entities)

    repeats = 1 if small else 2
    scalar_result = run(batch=False)
    batched_result = run(batch=True)
    before = best_of(lambda: run(batch=False), repeats)
    after = best_of(lambda: run(batch=True), repeats)

    functional_ok = (
        _e2e_fingerprint(batched_result) == _e2e_fingerprint(scalar_result)
    )
    result = {
        "entities": len(entities),
        "num_map_tasks": m,
        "num_reduce_tasks": r,
        "comparisons": batched_result.total_comparisons(),
        "matches": len(batched_result.matches),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "functional_ok": functional_ok,
    }
    marker = "" if functional_ok else "  ** FUNCTIONAL MISMATCH **"
    print(f"e2e batched {strategy:<11} before={before:8.3f}s   "
          f"after={after:8.3f}s   speedup={result['speedup']:.2f}x{marker}")
    return result


def _noisy_feed(num_base: int, typo_factor: float, seed: int) -> list[Entity]:
    """A corrupted catalog corpus: base listings plus *typo'd* copies.

    Where :func:`_dirty_feed` re-ingests listings verbatim (repeat pairs
    settle in the equality filter), OCR'd or hand-keyed feeds corrupt a
    few characters per copy — so most pairs inside a block survive to
    the Myers kernel as *distinct* near-duplicates, the regime the
    batched recurrence targets.
    """
    base = generate_products(num_base, seed=seed)
    rng = random.Random(seed + 2)
    out = list(base)
    next_id = len(base)
    for _ in range(int(num_base * typo_factor)):
        entity = rng.choice(base)
        attributes = dict(entity.attributes)
        title = attributes.get("title", "")
        if title:
            chars = list(title)
            for _ in range(rng.randrange(1, 4)):
                pos = rng.randrange(len(chars))
                chars[pos] = rng.choice("abcdexyz ")
            attributes["title"] = "".join(chars)
        out.append(Entity(f"p{next_id}", attributes, entity.source))
        next_id += 1
    rng.shuffle(out)
    return out


def bench_e2e_myers(strategy: str, num_base: int, small: bool) -> dict:
    """End-to-end on the near-duplicate-heavy corpus: batch kernel both
    ways, batched Myers recurrence off (before) vs on (after)."""
    entities = _noisy_feed(num_base, 1.0, SEED % 1000)
    m, r = (3, 5) if small else (4, 10)

    def run(batched_myers: bool):
        with _myers_lanes(4 if batched_myers else 1 << 60):
            pipeline = ERPipeline(
                strategy,
                PrefixBlocking("title"),
                ThresholdMatcher("title", THRESHOLD),
                num_map_tasks=m,
                num_reduce_tasks=r,
                batch_kernel=True,
            )
            return pipeline.run(entities)

    repeats = 1 if small else 2
    scalar_result = run(False)
    batched_result = run(True)
    before = best_of(lambda: run(False), repeats)
    after = best_of(lambda: run(True), repeats)

    functional_ok = (
        _e2e_fingerprint(batched_result) == _e2e_fingerprint(scalar_result)
    )
    result = {
        "entities": len(entities),
        "num_map_tasks": m,
        "num_reduce_tasks": r,
        "comparisons": batched_result.total_comparisons(),
        "matches": len(batched_result.matches),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "functional_ok": functional_ok,
    }
    marker = "" if functional_ok else "  ** FUNCTIONAL MISMATCH **"
    print(f"e2e myers   {strategy:<11} before={before:8.3f}s   "
          f"after={after:8.3f}s   speedup={result['speedup']:.2f}x{marker}")
    return result


# ---------------------------------------------------------------------------
# Figures: the paper's scalability sweeps (analytic, full scale)
# ---------------------------------------------------------------------------


def bench_figures(small: bool) -> dict:
    from repro.analysis.experiments import sweep_nodes
    from repro.datasets.generators import DS1_PROFILE, DS2_PROFILE

    strategies = ["basic", "blocksplit", "pairrange"]
    figures = {}
    for fig, profile, nodes in (
        ("fig13_ds1", DS1_PROFILE, [1, 2, 5, 10] if small else [1, 2, 5, 10, 20, 40, 100]),
        ("fig14_ds2", DS2_PROFILE, [10] if small else [10, 20, 40, 100]),
    ):
        sizes = zipf_block_sizes(
            profile.num_entities, profile.num_blocks, profile.zipf_exponent
        )
        start = time.perf_counter()
        results = sweep_nodes(
            strategies, nodes, list(sizes), comparison_noise_sigma=0.25
        )
        elapsed = time.perf_counter() - start
        times = {
            name: [round(results[n][name].execution_time, 1) for n in nodes]
            for name in strategies
        }
        figures[fig] = {
            "nodes": nodes,
            "execution_times_s": times,
            "planning_wall_clock_s": elapsed,
        }
        print(f"{fig}: planned {len(nodes)} cluster sizes × "
              f"{len(strategies)} strategies in {elapsed:.2f}s wall-clock")
    return figures


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--small", action="store_true",
                        help="CI smoke sizes (seconds, not minutes)")
    parser.add_argument("--output", type=Path, default=None,
                        help=f"output path (default: BENCH_{BENCH_NUMBER}.json)")
    parser.add_argument("--skip-figures", action="store_true",
                        help="skip the fig13/fig14 analytic sweeps")
    parser.add_argument("--assert-speedups", action="store_true",
                        help="fail if the headline speedup targets are missed")
    args = parser.parse_args(argv)

    random.seed(SEED)
    output = args.output or REPO_ROOT / f"BENCH_{BENCH_NUMBER}.json"

    machine = {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "seed": SEED,
        "mode": "small" if args.small else "full",
    }
    print(f"perf harness — bench {BENCH_NUMBER}  "
          f"(cpus={machine['cpu_count']}, python={machine['python']}, "
          f"mode={machine['mode']})")

    report: dict = {"bench": BENCH_NUMBER, "machine": machine}

    section("Micro kernels (before = legacy path, after = optimised path)")
    report["micro_similarity"] = bench_micro_similarity(args.small)
    report["micro_matcher"] = bench_micro_matcher(args.small)
    report["micro_shuffle"] = bench_micro_shuffle(args.small)

    section("Micro: batch kernel, batched Myers and columnar shards")
    report["micro_batch_kernel"] = bench_micro_batch_kernel(args.small)
    report["micro_myers_batch"] = bench_micro_myers_batch(args.small)
    report["micro_columnar_load"] = bench_micro_columnar_load(args.small)

    section("End-to-end pipelines (serial backend, real matching)")
    n = 400 if args.small else 2500
    report["e2e"] = {
        "blocksplit": bench_e2e("blocksplit", n, args.small),
        "pairrange": bench_e2e("pairrange", n, args.small),
    }

    section("End-to-end batched reduce loops (dirty-feed corpus)")
    n_base = 300 if args.small else 1500
    report["e2e_batched"] = {
        "blocksplit": bench_e2e_batched("blocksplit", n_base, args.small),
        "pairrange": bench_e2e_batched("pairrange", n_base, args.small),
    }

    section("End-to-end batched Myers (near-duplicate-heavy corpus)")
    n_noisy = 300 if args.small else 1500
    report["e2e_myers"] = {
        "blocksplit": bench_e2e_myers("blocksplit", n_noisy, args.small),
        "pairrange": bench_e2e_myers("pairrange", n_noisy, args.small),
    }

    if not args.skip_figures:
        section("Paper scalability figures (analytic planning, full scale)")
        report["figures"] = bench_figures(args.small)

    functional_ok = all(
        e["functional_ok"]
        for group in (report["e2e"], report["e2e_batched"],
                      report["e2e_myers"])
        for e in group.values()
    ) and report["micro_myers_batch"]["functional_ok"]
    report["functional_ok"] = functional_ok

    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {output}")

    if not functional_ok:
        print("FUNCTIONAL ERROR: legacy and optimised paths disagree",
              file=sys.stderr)
        return 1
    if args.assert_speedups:
        micro = report["micro_similarity"]["speedup"]
        e2e_best = max(e["speedup"] for e in report["e2e"].values())
        batch_micro = report["micro_batch_kernel"]["speedup"]
        batch_e2e_best = max(
            e["speedup"] for e in report["e2e_batched"].values()
        )
        myers_micro = report["micro_myers_batch"]["speedup"]
        myers_numpy = report["micro_myers_batch"]["numpy"]
        if micro < 3.0:
            print(f"SPEEDUP MISS: similarity microbench {micro:.2f}x < 3x",
                  file=sys.stderr)
            return 1
        if e2e_best < 1.5:
            print(f"SPEEDUP MISS: best end-to-end {e2e_best:.2f}x < 1.5x",
                  file=sys.stderr)
            return 1
        if batch_micro < 2.0:
            print(f"SPEEDUP MISS: batch-kernel microbench "
                  f"{batch_micro:.2f}x < 2x", file=sys.stderr)
            return 1
        if batch_e2e_best < 1.5:
            print(f"SPEEDUP MISS: best batched end-to-end "
                  f"{batch_e2e_best:.2f}x < 1.5x", file=sys.stderr)
            return 1
        # The batched recurrence only exists on the numpy path; the
        # stdlib leg keeps the per-pair loop, so there is no ratio to
        # enforce there.
        if myers_numpy and myers_micro < 2.0:
            print(f"SPEEDUP MISS: batched-Myers microbench "
                  f"{myers_micro:.2f}x < 2x", file=sys.stderr)
            return 1
        print(f"speedup targets met: micro {micro:.2f}x (>=3x), "
              f"e2e {e2e_best:.2f}x (>=1.5x), "
              f"batch micro {batch_micro:.2f}x (>=2x), "
              f"batched e2e {batch_e2e_best:.2f}x (>=1.5x), "
              f"myers micro {myers_micro:.2f}x (>=2x numpy leg)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
