"""Shared fixtures for the figure-reproduction benchmarks.

Every ``bench_figXX_*.py`` regenerates one table/figure of the paper's
evaluation: it computes the same rows/series the paper plots, prints
them, and writes them to ``benchmarks/results/`` so EXPERIMENTS.md can
quote them.  pytest-benchmark times the computation itself (the
planner + simulator pipeline), which demonstrates that full-scale
DS1/DS2 experiments run in seconds.
"""

from __future__ import annotations

import functools
import os
import random
from pathlib import Path

import pytest

from repro.datasets.generators import DS1_PROFILE, DS2_PROFILE
from repro.datasets.skew import zipf_block_sizes

RESULTS_DIR = Path(__file__).parent / "results"

#: One seed for every bench RNG: results (and the BENCH_*.json files
#: derived from them) must be comparable run to run and machine to
#: machine, so nothing may depend on interpreter hash or wall clock.
BENCH_SEED = 20260727


@pytest.fixture(scope="session", autouse=True)
def bench_environment():
    """Seed all RNGs and report the machine shape before any bench runs.

    The CPU count is printed (run pytest with ``-s`` to see it) so the
    numbers archived in ``benchmarks/results/`` and ``BENCH_*.json``
    can be attributed to the machine that produced them — a 1-core CI
    runner and a 64-core workstation are not comparable.
    """
    random.seed(BENCH_SEED)
    try:  # numpy is optional; seed it only if the env has it
        import numpy

        numpy.random.seed(BENCH_SEED % (2**32))
    except ImportError:
        pass
    print(f"\n[bench] cpu_count={os.cpu_count()} seed={BENCH_SEED}")
    yield

#: Strategy display order used throughout the figures.
ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
BALANCED_STRATEGIES = ["blocksplit", "pairrange"]

#: Computational-skew level used by the execution-time figures (the
#: paper's §VI-B effect; see CostModel / reduce_task_specs).
NOISE_SIGMA = 0.25


@functools.lru_cache(maxsize=None)
def ds1_block_sizes() -> tuple[int, ...]:
    """DS1 stand-in: 114 k products, 2,800 prefix blocks, Zipf 1.2."""
    return tuple(
        zipf_block_sizes(
            DS1_PROFILE.num_entities,
            DS1_PROFILE.num_blocks,
            DS1_PROFILE.zipf_exponent,
        )
    )


@functools.lru_cache(maxsize=None)
def ds2_block_sizes() -> tuple[int, ...]:
    """DS2 stand-in: 1.4 M publications, 8,000 prefix blocks, Zipf 1.6."""
    return tuple(
        zipf_block_sizes(
            DS2_PROFILE.num_entities,
            DS2_PROFILE.num_blocks,
            DS2_PROFILE.zipf_exponent,
        )
    )


def publish(figure_id: str, text: str) -> None:
    """Print a figure's data and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{figure_id}\n{'=' * 72}\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{figure_id.split()[0].lower()}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
