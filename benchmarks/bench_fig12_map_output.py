"""Figure 12: key-value pairs emitted by map vs. number of reduce tasks.

Paper findings this bench reproduces (all *exact* counts, no
simulation involved):

* Basic never replicates: map output = input size, constant in r;
* BlockSplit is a step function of r — r only decides *which* blocks
  split; the split method itself depends on the m input partitions, so
  output plateaus between split-set changes and saturates once all
  large blocks are split;
* PairRange's output grows almost linearly with r and overtakes
  BlockSplit for large r.
"""

from __future__ import annotations

from repro.analysis.experiments import bdm_for_block_sizes
from repro.analysis.reporting import format_series
from repro.core.match_tasks import generate_match_tasks
from repro.core.planning import plan_basic, plan_blocksplit, plan_pairrange

from conftest import ds1_block_sizes, publish

REDUCE_TASKS = [20, 40, 60, 80, 100, 120, 140, 160]
PLANNERS = {
    "basic": plan_basic,
    "blocksplit": plan_blocksplit,
    "pairrange": plan_pairrange,
}


def figure12_series():
    bdm = bdm_for_block_sizes(list(ds1_block_sizes()), 20, seed=13)
    series = {
        name: [planner(bdm, r).total_map_output_kv for r in REDUCE_TASKS]
        for name, planner in PLANNERS.items()
    }
    return bdm, series


def test_fig12_map_output(benchmark):
    bdm, series = benchmark.pedantic(figure12_series, rounds=1, iterations=1)
    text = format_series(
        "r",
        REDUCE_TASKS,
        series,
        title="Figure 12 — map output KV pairs vs. reduce tasks (DS1, m=20)",
    )
    publish("FIG12 map output", text)

    basic = series["basic"]
    blocksplit = series["blocksplit"]
    pairrange = series["pairrange"]
    # Basic: constant and equal to the number of input entities.
    assert len(set(basic)) == 1
    assert basic[0] == bdm.total_entities()
    # BlockSplit: non-decreasing step function driven by the split set.
    assert blocksplit == sorted(blocksplit)
    split_sets = [
        generate_match_tasks(bdm, r)[1] for r in REDUCE_TASKS
    ]
    for i in range(1, len(REDUCE_TASKS)):
        if split_sets[i] == split_sets[i - 1]:
            assert blocksplit[i] == blocksplit[i - 1]
    # PairRange: strictly grows over the sweep and ends above BlockSplit.
    assert pairrange == sorted(pairrange)
    assert pairrange[-1] > pairrange[0]
    assert pairrange[-1] > blocksplit[-1]
    # BlockSplit emits the most KV pairs at the *small* end of the sweep
    # relative to PairRange (the paper's "largest map output for a small
    # number of reduce tasks").
    assert blocksplit[0] > pairrange[0]
