"""Micro-benchmarks: the MapReduce engine itself.

Throughput of the substrate the strategies run on — useful to spot
regressions in the shuffle/grouping hot path.
"""

from __future__ import annotations

from repro.core.workflow import ERWorkflow
from repro.datasets.generators import generate_products
from repro.er.blocking import PrefixBlocking
from repro.er.matching import RecordingMatcher
from repro.mapreduce.job import LambdaJob
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import make_partitions


def test_engine_wordcount_throughput(benchmark):
    lines = [f"alpha beta gamma delta token{i % 97}" for i in range(2_000)]
    partitions = make_partitions(lines, 8)

    def map_fn(key, value, emit, ctx):
        for word in value.split():
            emit(word, 1)

    def reduce_fn(key, values, emit, ctx):
        emit(key, sum(values))

    job = LambdaJob(map_fn, reduce_fn, name="wordcount")

    def run():
        return LocalRuntime().run(job, partitions, 8)

    result = benchmark(run)
    assert result.counters.get("map.output.records") == 10_000


def test_engine_blocksplit_workflow_end_to_end(benchmark):
    entities = generate_products(1_500, seed=31)
    blocking = PrefixBlocking("title")

    def run():
        workflow = ERWorkflow(
            "blocksplit", blocking, RecordingMatcher(),
            num_map_tasks=4, num_reduce_tasks=8,
        )
        return workflow.run(entities)

    result = benchmark(run)
    assert result.total_comparisons() > 0


def test_engine_pairrange_workflow_end_to_end(benchmark):
    entities = generate_products(1_500, seed=31)
    blocking = PrefixBlocking("title")

    def run():
        workflow = ERWorkflow(
            "pairrange", blocking, RecordingMatcher(),
            num_map_tasks=4, num_reduce_tasks=8,
        )
        return workflow.run(entities)

    result = benchmark(run)
    assert result.total_comparisons() > 0
