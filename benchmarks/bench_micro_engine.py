"""Micro-benchmarks: the MapReduce engine itself.

Throughput of the substrate the strategies run on — useful to spot
regressions in the shuffle/grouping hot path — plus the serial vs
parallel backend comparison.  Pair comparison dominates the workflow
runtime and parallelises across reduce tasks, so the parallel backend's
speedup approaches the worker count on real multi-core hardware.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datasets.generators import generate_products
from repro.engine import ERPipeline, ParallelBackend
from repro.er.blocking import PrefixBlocking
from repro.er.matching import RecordingMatcher, ThresholdMatcher
from repro.mapreduce.job import LambdaJob
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import make_partitions


def test_engine_wordcount_throughput(benchmark):
    lines = [f"alpha beta gamma delta token{i % 97}" for i in range(2_000)]
    partitions = make_partitions(lines, 8)

    def map_fn(key, value, emit, ctx):
        for word in value.split():
            emit(word, 1)

    def reduce_fn(key, values, emit, ctx):
        emit(key, sum(values))

    job = LambdaJob(map_fn, reduce_fn, name="wordcount")

    def run():
        return LocalRuntime().run(job, partitions, 8)

    result = benchmark(run)
    assert result.counters.get("map.output.records") == 10_000


def test_engine_blocksplit_workflow_end_to_end(benchmark):
    entities = generate_products(1_500, seed=31)
    blocking = PrefixBlocking("title")

    def run():
        pipeline = ERPipeline(
            "blocksplit", blocking, RecordingMatcher(),
            num_map_tasks=4, num_reduce_tasks=8,
        )
        return pipeline.run(entities)

    result = benchmark(run)
    assert result.total_comparisons() > 0


def test_engine_pairrange_workflow_end_to_end(benchmark):
    entities = generate_products(1_500, seed=31)
    blocking = PrefixBlocking("title")

    def run():
        pipeline = ERPipeline(
            "pairrange", blocking, RecordingMatcher(),
            num_map_tasks=4, num_reduce_tasks=8,
        )
        return pipeline.run(entities)

    result = benchmark(run)
    assert result.total_comparisons() > 0


# ---------------------------------------------------------------------------
# Serial vs parallel backend
# ---------------------------------------------------------------------------

#: Entities for the backend comparison: enough that pair comparison
#: (real edit-distance matching) dominates scheduling overhead.
_SPEEDUP_ENTITIES = 1_000
_SPEEDUP_WORKERS = 4


def _timed_run(backend) -> tuple[float, object]:
    entities = generate_products(_SPEEDUP_ENTITIES, seed=31)
    pipeline = ERPipeline(
        "blocksplit",
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=8,
        num_reduce_tasks=16,
        backend=backend,
    )
    start = time.perf_counter()
    result = pipeline.run(entities)
    return time.perf_counter() - start, result


def test_engine_parallel_backend_matches_serial_benchmark(benchmark):
    entities = generate_products(1_500, seed=31)
    blocking = PrefixBlocking("title")

    def run():
        pipeline = ERPipeline(
            "blocksplit", blocking, RecordingMatcher(),
            num_map_tasks=4, num_reduce_tasks=8,
            backend=ParallelBackend(max_workers=_SPEEDUP_WORKERS),
        )
        return pipeline.run(entities)

    result = benchmark(run)
    assert result.total_comparisons() > 0


def test_engine_parallel_backend_speedup():
    """Wall-clock: parallel backend vs serial on the matching-bound
    workflow.  The speedup assertion needs real cores; on smaller
    machines the numbers are still printed for inspection."""
    serial_time, serial_result = _timed_run("serial")
    parallel_time, parallel_result = _timed_run(
        ParallelBackend(max_workers=_SPEEDUP_WORKERS, executor="process")
    )
    assert parallel_result.matches == serial_result.matches
    speedup = serial_time / parallel_time
    print(
        f"\nserial {serial_time:.2f}s, parallel({_SPEEDUP_WORKERS}) "
        f"{parallel_time:.2f}s -> speedup {speedup:.2f}x "
        f"({serial_result.total_comparisons():,} comparisons, "
        f"{os.cpu_count()} cpus)"
    )
    if (os.cpu_count() or 1) < _SPEEDUP_WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {_SPEEDUP_WORKERS} cpus, "
            f"have {os.cpu_count()}"
        )
    assert speedup > 1.2, (
        f"parallel backend should beat serial on >= {_SPEEDUP_WORKERS} "
        f"cores, got {speedup:.2f}x"
    )
