"""Extension bench: Sorted Neighborhood vs. blocking-based strategies.

The paper's related work (§VII) notes that SN "is by design less
vulnerable to skewed data": its per-entity work is capped by the window
size regardless of key frequencies.  The flip side is a different (and
size-bounded) candidate set.  This bench puts the three blocking
strategies and SN side by side on skewed data: candidates generated,
balance, and recall of planted duplicate pairs.
"""

from __future__ import annotations

import random

from repro.analysis.metrics import WorkloadStats
from repro.analysis.reporting import format_table
from repro.core.sorted_neighborhood import sorted_neighborhood
from repro.engine import ERPipeline
from repro.datasets.generators import generate_products
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher

from conftest import publish

NUM_ENTITIES = 4_000
WINDOW = 20
REDUCE_TASKS = 10


def comparison_rows():
    entities = generate_products(NUM_ENTITIES, seed=47)
    blocking = PrefixBlocking("title", 3)

    # Ground truth: matches found by exhaustive in-block comparison.
    truth_workflow = ERPipeline(
        "pairrange", blocking, ThresholdMatcher("title", 0.8),
        num_map_tasks=4, num_reduce_tasks=REDUCE_TASKS,
    )
    truth = truth_workflow.run(entities).matches

    rows = []
    for name in ("basic", "blocksplit", "pairrange"):
        matcher = ThresholdMatcher("title", 0.8)
        workflow = ERPipeline(
            name, blocking, matcher, num_map_tasks=4, num_reduce_tasks=REDUCE_TASKS
        )
        result = workflow.run(entities)
        stats = WorkloadStats.from_workloads(result.reduce_comparisons())
        recall = len(result.matches.pair_ids & truth.pair_ids) / max(1, len(truth))
        rows.append(
            [name, result.total_comparisons(), round(stats.imbalance, 2),
             len(result.matches), round(recall, 3)]
        )

    sn_matcher = ThresholdMatcher("title", 0.8)
    sn = sorted_neighborhood(
        entities,
        lambda e: str(e.get("title") or ""),
        window=WINDOW,
        matcher=sn_matcher,
        num_map_tasks=4,
        num_reduce_tasks=REDUCE_TASKS,
    )
    stats = WorkloadStats.from_workloads(list(sn.reduce_comparisons))
    recall = len(sn.matches.pair_ids & truth.pair_ids) / max(1, len(truth))
    rows.append(
        [f"sorted-neighborhood (w={WINDOW})", sn.comparisons,
         round(stats.imbalance, 2), len(sn.matches), round(recall, 3)]
    )
    return rows


def test_sorted_neighborhood_comparison(benchmark):
    rows = benchmark.pedantic(comparison_rows, rounds=1, iterations=1)
    text = format_table(
        ["approach", "comparisons", "imbalance", "matches", "recall vs blocking"],
        rows,
        title=(
            f"Sorted Neighborhood vs. blocking strategies "
            f"({NUM_ENTITIES} products, r={REDUCE_TASKS})"
        ),
    )
    publish("EXT-SN sorted neighborhood", text)

    basic, blocksplit, pairrange, sn = rows
    # All blocking strategies examine the identical candidate set.
    assert basic[1] == blocksplit[1] == pairrange[1]
    # SN's candidate count is bounded by n * (w-1): far fewer than the
    # skewed blocking candidates.
    assert sn[1] <= NUM_ENTITIES * (WINDOW - 1)
    assert sn[1] < basic[1]
    # SN's per-task balance is inherent (work per entity <= w-1).
    assert sn[2] < basic[2]
    # The cost: SN misses some in-block matches (recall < 1), the
    # trade-off the paper's related work discusses.
    assert sn[4] <= 1.0
