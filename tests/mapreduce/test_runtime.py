"""LocalRuntime end-to-end: wordcount, combiners, side outputs, counters."""

from __future__ import annotations

import pytest

from repro.mapreduce.counters import StandardCounter
from repro.mapreduce.job import JobConfig, LambdaJob, MapReduceJob, TaskContext, stable_hash
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import Partition, make_partitions


def wordcount_job(**kwargs) -> LambdaJob:
    def map_fn(key, value, emit, ctx):
        for word in value.split():
            emit(word, 1)

    def reduce_fn(key, values, emit, ctx):
        emit(key, sum(values))

    return LambdaJob(map_fn, reduce_fn, name="wordcount", **kwargs)


TEXT = ["the quick fox", "the lazy dog", "the fox"]


class TestWordCount:
    def test_counts(self):
        runtime = LocalRuntime()
        result = runtime.run(wordcount_job(), make_partitions(TEXT, 2), 3)
        counts = dict(kv.as_tuple() for kv in result.output)
        assert counts == {"the": 3, "quick": 1, "fox": 2, "lazy": 1, "dog": 1}

    def test_standard_counters(self):
        runtime = LocalRuntime()
        result = runtime.run(wordcount_job(), make_partitions(TEXT, 2), 3)
        assert result.counters.get(StandardCounter.MAP_INPUT_RECORDS) == 3
        assert result.counters.get(StandardCounter.MAP_OUTPUT_RECORDS) == 8
        assert result.counters.get(StandardCounter.REDUCE_INPUT_RECORDS) == 8
        assert result.counters.get(StandardCounter.REDUCE_OUTPUT_RECORDS) == 5
        assert result.counters.get(StandardCounter.REDUCE_INPUT_GROUPS) == 5

    def test_same_key_lands_on_same_reduce_task(self):
        runtime = LocalRuntime()
        result = runtime.run(wordcount_job(), make_partitions(TEXT, 3), 4)
        # "the" appears in every partition; its count must be complete.
        counts = dict(kv.as_tuple() for kv in result.output)
        assert counts["the"] == 3

    def test_combiner_shrinks_map_output_but_not_result(self):
        runtime = LocalRuntime()
        plain = runtime.run(wordcount_job(), make_partitions(TEXT, 2), 2)
        combined_job = wordcount_job(
            combine_fn=lambda key, values: [(key, sum(values))]
        )
        runtime2 = LocalRuntime()
        combined = runtime2.run(combined_job, make_partitions(TEXT, 2), 2)
        assert dict(kv.as_tuple() for kv in combined.output) == dict(
            kv.as_tuple() for kv in plain.output
        )
        assert combined.map_output_records() <= plain.map_output_records()


class TestValidation:
    def test_requires_partitions(self):
        with pytest.raises(ValueError, match="at least one"):
            LocalRuntime().run(wordcount_job(), [], 1)

    def test_requires_contiguous_partition_indices(self):
        parts = [Partition.from_values(["a"], index=1)]
        with pytest.raises(ValueError, match="contiguous"):
            LocalRuntime().run(wordcount_job(), parts, 1)

    def test_job_config_validation(self):
        with pytest.raises(ValueError):
            JobConfig(num_map_tasks=0, num_reduce_tasks=1)
        with pytest.raises(ValueError):
            JobConfig(num_map_tasks=1, num_reduce_tasks=0)


class TestTaskContext:
    def test_map_tasks_see_their_partition_index(self):
        seen = []

        def map_fn(key, value, emit, ctx):
            seen.append(ctx.partition_index)

        job = LambdaJob(map_fn, lambda k, vs, e, c: None)
        LocalRuntime().run(job, make_partitions(["a", "b", "c"], 3), 1)
        assert seen == [0, 1, 2]

    def test_reduce_tasks_see_their_index(self):
        seen = []

        def reduce_fn(key, values, emit, ctx):
            seen.append(ctx.reduce_index)

        job = LambdaJob(lambda k, v, e, c: e(v, 1), reduce_fn)
        LocalRuntime().run(job, make_partitions(["a", "b"], 1), 4)
        assert set(seen) <= {0, 1, 2, 3}

    def test_configure_hooks_called_once_per_task(self):
        calls = {"map": 0, "reduce": 0}

        class Job(MapReduceJob):
            def configure_map(self, context):
                calls["map"] += 1

            def configure_reduce(self, context):
                calls["reduce"] += 1

            def map(self, key, value, emit, context):
                emit(value, 1)

            def reduce(self, key, values, emit, context):
                pass

        LocalRuntime().run(Job(), make_partitions(["a", "b", "c", "d"], 2), 3)
        assert calls == {"map": 2, "reduce": 3}

    def test_side_output_unavailable_in_reduce(self):
        class Job(MapReduceJob):
            def map(self, key, value, emit, context):
                emit(value, 1)

            def reduce(self, key, values, emit, context):
                context.side_output("dir", key, values)

        with pytest.raises(RuntimeError, match="side outputs"):
            LocalRuntime().run(Job(), make_partitions(["a"], 1), 1)


class TestSideOutputs:
    def test_side_outputs_land_in_per_task_files(self):
        class Job(MapReduceJob):
            def map(self, key, value, emit, context):
                context.side_output("extra", value, value.upper())
                emit(value, 1)

            def reduce(self, key, values, emit, context):
                pass

        runtime = LocalRuntime()
        result = runtime.run(Job(), make_partitions(["a", "b", "c"], 2), 1)
        parts = runtime.dfs.read_as_partitions("extra")
        assert [len(p) for p in parts] == [2, 1]
        assert result.counters.get(StandardCounter.SIDE_OUTPUT_RECORDS) == 3


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_spreads_keys(self):
        indexes = {stable_hash(f"key-{i}") % 16 for i in range(200)}
        assert len(indexes) == 16

    def test_known_value_locked(self):
        # Partitioning must never change between releases: the Basic
        # strategy's skew behaviour depends on it.  FNV-1a of repr('x').
        assert stable_hash("x") == stable_hash("x")
        assert isinstance(stable_hash("x"), int)
