"""Counters: increments, merging, equality."""

from __future__ import annotations

import pytest

from repro.mapreduce.counters import Counters, StandardCounter


class TestCounters:
    def test_default_zero(self):
        assert Counters().get("missing") == 0

    def test_increment(self):
        c = Counters()
        c.increment("a")
        c.increment("a", 4)
        assert c.get("a") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().increment("a", -1)

    def test_merge(self):
        a = Counters({"x": 1})
        b = Counters({"x": 2, "y": 3})
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 3}

    def test_merged_classmethod(self):
        groups = [Counters({"x": i}) for i in range(1, 4)]
        assert Counters.merged(groups).get("x") == 6

    def test_getitem(self):
        assert Counters({"a": 7})["a"] == 7

    def test_iter_sorted(self):
        c = Counters({"b": 2, "a": 1})
        assert list(c) == [("a", 1), ("b", 2)]

    def test_equality(self):
        assert Counters({"a": 1}) == Counters({"a": 1})
        assert Counters({"a": 1}) != Counters({"a": 2})
        assert Counters() != object()

    def test_standard_names_are_distinct(self):
        names = [
            getattr(StandardCounter, attr)
            for attr in dir(StandardCounter)
            if not attr.startswith("_")
        ]
        assert len(names) == len(set(names))
