"""Integration: chaining MR jobs through DFS side outputs.

This is the exact mechanism the ER workflow uses to hand Job 1's
annotated entities to Job 2 with an identical partitioning.
"""

from __future__ import annotations

import pytest

from repro.mapreduce.job import LambdaJob, MapReduceJob
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import make_partitions


class AnnotateJob(MapReduceJob):
    """Job 1: tag each value, side-output the tagged records."""

    name = "annotate"

    def map(self, key, value, emit, context):
        context.side_output("annotated", value % 3, value)
        emit(value % 3, 1)

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


class SumJob(MapReduceJob):
    """Job 2: consume the annotated partitions."""

    name = "sum"

    def map(self, key, value, emit, context):
        emit(key, value)

    def reduce(self, key, values, emit, context):
        emit(key, sum(values))


class TestChaining:
    def test_second_job_sees_first_jobs_partitioning(self):
        runtime = LocalRuntime()
        partitions = make_partitions(list(range(30)), 4)
        first = runtime.run(AnnotateJob(), partitions, 2)
        chained = runtime.dfs.read_as_partitions("annotated")
        assert [p.index for p in chained] == [0, 1, 2, 3]
        assert [len(p) for p in chained] == [len(p) for p in partitions]

        second = runtime.run(SumJob(), chained, 3)
        sums = dict(kv.as_tuple() for kv in second.output)
        expected = {k: sum(v for v in range(30) if v % 3 == k) for k in range(3)}
        assert sums == expected

    def test_counts_agree_between_jobs(self):
        runtime = LocalRuntime()
        partitions = make_partitions(list(range(30)), 4)
        first = runtime.run(AnnotateJob(), partitions, 2)
        counts = dict(kv.as_tuple() for kv in first.output)
        assert counts == {0: 10, 1: 10, 2: 10}

    def test_three_job_pipeline(self):
        """Job chain of length three, each consuming the previous side
        output — no re-partitioning anywhere."""
        runtime = LocalRuntime()

        class Stage(MapReduceJob):
            def __init__(self, directory):
                self.directory = directory
                self.name = f"stage-{directory}"

            def map(self, key, value, emit, context):
                context.side_output(self.directory, key, value + 1)
                emit(0, value)

            def reduce(self, key, values, emit, context):
                emit(key, sorted(values))

        partitions = make_partitions([0, 0, 0], 3)
        runtime.run(Stage("s1"), partitions, 1)
        runtime.run(Stage("s2"), runtime.dfs.read_as_partitions("s1"), 1)
        final = runtime.run(Stage("s3"), runtime.dfs.read_as_partitions("s2"), 1)
        # Stage 1 saw [0,0,0] and side-wrote [1,1,1]; stage 2 side-wrote
        # [2,2,2], which is what stage 3 reduces over...
        assert final.output[0].value == [2, 2, 2]
        # ... and its own side output increments once more.
        chained = runtime.dfs.read_as_partitions("s3")
        assert [record.value for p in chained for record in p] == [3, 3, 3]


class TestLambdaJobRouting:
    def test_custom_routing_functions_delegate(self):
        job = LambdaJob(
            map_fn=lambda k, v, e, c: e((v, v * 2), v),
            reduce_fn=lambda k, vs, e, c: e(k, list(vs)),
            partition_fn=lambda key, r: key[0] % r,
            sort_key_fn=lambda key: key[1],
            group_key_fn=lambda key: key[0],
        )
        assert job.partition((3, 6), 2) == 1
        assert job.sort_key((3, 6)) == 6
        assert job.group_key((3, 6)) == 3

    def test_defaults_used_when_not_provided(self):
        job = LambdaJob(
            map_fn=lambda k, v, e, c: None,
            reduce_fn=lambda k, vs, e, c: None,
        )
        assert job.sort_key("x") == "x"
        assert job.group_key("x") == "x"
        assert 0 <= job.partition("x", 7) < 7


class TestRuntimeReuseSafety:
    def test_two_runs_on_one_runtime_need_distinct_directories(self):
        from repro.mapreduce.dfs import DfsError

        runtime = LocalRuntime()
        partitions = make_partitions([1, 2, 3], 2)
        runtime.run(AnnotateJob(), partitions, 1)
        with pytest.raises(DfsError, match="already exists"):
            runtime.run(AnnotateJob(), partitions, 1)

    def test_fresh_runtime_is_isolated(self):
        partitions = make_partitions([1, 2, 3], 2)
        LocalRuntime().run(AnnotateJob(), partitions, 1)
        LocalRuntime().run(AnnotateJob(), partitions, 1)  # no clash
