"""KeyValue, Partition, make_partitions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mapreduce.types import KeyValue, Partition, make_partitions


class TestKeyValue:
    def test_unpacking(self):
        k, v = KeyValue("a", 1)
        assert (k, v) == ("a", 1)

    def test_as_tuple(self):
        assert KeyValue("a", 1).as_tuple() == ("a", 1)

    def test_equality_and_hash(self):
        assert KeyValue("a", 1) == KeyValue("a", 1)
        assert hash(KeyValue("a", 1)) == hash(KeyValue("a", 1))
        assert KeyValue("a", 1) != KeyValue("a", 2)


class TestPartition:
    def test_from_pairs(self):
        p = Partition.from_pairs([("k", 1), ("k2", 2)], index=0)
        assert len(p) == 2
        assert p[0] == KeyValue("k", 1)

    def test_from_values_uses_none_keys(self):
        p = Partition.from_values([10, 20], index=1)
        assert [record.key for record in p] == [None, None]
        assert [record.value for record in p] == [10, 20]

    def test_default_name(self):
        assert Partition.from_values([], index=3).name == "part-00003"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Partition.from_values([], index=-1)

    def test_iteration_order_is_stable(self):
        p = Partition.from_values(list(range(5)), index=0)
        assert [record.value for record in p] == list(range(5))


class TestMakePartitions:
    def test_even_split(self):
        parts = make_partitions(list(range(9)), 3)
        assert [len(p) for p in parts] == [3, 3, 3]

    def test_uneven_split_front_loads_extras(self):
        parts = make_partitions(list(range(10)), 3)
        assert [len(p) for p in parts] == [4, 3, 3]

    def test_more_partitions_than_values(self):
        parts = make_partitions([1, 2], 5)
        assert [len(p) for p in parts] == [1, 1, 0, 0, 0]

    def test_preserves_order(self):
        parts = make_partitions(list(range(7)), 2)
        flattened = [record.value for p in parts for record in p]
        assert flattened == list(range(7))

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            make_partitions([1], 0)

    @given(
        st.lists(st.integers(), max_size=50),
        st.integers(min_value=1, max_value=10),
    )
    def test_partition_sizes_differ_by_at_most_one(self, values, m):
        parts = make_partitions(values, m)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == len(values)
        assert max(sizes) - min(sizes) <= 1
        assert [p.index for p in parts] == list(range(m))
