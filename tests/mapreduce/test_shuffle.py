"""Shuffle semantics: partition / sort / group over composite keys."""

from __future__ import annotations

from typing import NamedTuple

from repro.mapreduce.job import LambdaJob
from repro.mapreduce.shuffle import (
    group_bucket,
    partition_map_output,
    shuffle,
    sort_bucket,
)
from repro.mapreduce.types import KeyValue


class ColorShape(NamedTuple):
    """The composite key of the paper's Figure 1: shape + color."""

    color: str
    shape: str


def figure1_job() -> LambdaJob:
    """Partition on color only, sort and group on the entire key."""
    return LambdaJob(
        map_fn=lambda k, v, emit, ctx: None,
        reduce_fn=lambda k, vs, emit, ctx: None,
        partition_fn=lambda key, r: {"light": 0, "dark": 1, "black": 2}[key.color],
    )


def records(*keys):
    return [KeyValue(k, i) for i, k in enumerate(keys)]


class TestPartition:
    def test_partition_on_key_projection(self):
        job = figure1_job()
        outputs = [
            records(
                ColorShape("light", "circle"),
                ColorShape("dark", "circle"),
                ColorShape("black", "triangle"),
                ColorShape("light", "triangle"),
            )
        ]
        buckets = partition_map_output(job, outputs, 3)
        assert [len(b) for b in buckets] == [2, 1, 1]
        assert all(kv.key.color == "light" for kv in buckets[0])

    def test_merge_preserves_map_task_order(self):
        job = LambdaJob(
            map_fn=lambda *a: None,
            reduce_fn=lambda *a: None,
            partition_fn=lambda key, r: 0,
        )
        outputs = [records("a"), records("b")]
        buckets = partition_map_output(job, outputs, 1)
        assert [kv.key for kv in buckets[0]] == ["a", "b"]

    def test_bad_partition_index_rejected(self):
        import pytest

        job = LambdaJob(
            map_fn=lambda *a: None,
            reduce_fn=lambda *a: None,
            partition_fn=lambda key, r: r,  # out of range
        )
        with pytest.raises(ValueError, match="outside"):
            partition_map_output(job, [records("a")], 2)


class TestSortAndGroup:
    def test_sort_is_stable(self):
        job = LambdaJob(
            map_fn=lambda *a: None,
            reduce_fn=lambda *a: None,
            sort_key_fn=lambda key: key[0],
        )
        bucket = [KeyValue(("a", 2), "x"), KeyValue(("a", 1), "y")]
        sorted_bucket = sort_bucket(job, bucket)
        # Equal sort keys keep arrival order.
        assert [kv.value for kv in sorted_bucket] == ["x", "y"]

    def test_group_on_projection(self):
        # Figure 1: 5 distinct keys -> 5 reduce calls when grouping on
        # the whole key, fewer when grouping on color only.
        keys = [
            ColorShape("light", "circle"),
            ColorShape("light", "circle"),
            ColorShape("light", "triangle"),
            ColorShape("dark", "circle"),
        ]
        whole_key_job = LambdaJob(
            map_fn=lambda *a: None, reduce_fn=lambda *a: None
        )
        bucket = sort_bucket(whole_key_job, [KeyValue(k, 1) for k in keys])
        groups = group_bucket(whole_key_job, bucket)
        assert len(groups) == 3

        color_job = LambdaJob(
            map_fn=lambda *a: None,
            reduce_fn=lambda *a: None,
            group_key_fn=lambda key: key.color,
        )
        groups = group_bucket(color_job, sort_bucket(color_job, [KeyValue(k, 1) for k in keys]))
        assert len(groups) == 2

    def test_group_key_is_first_records_full_key(self):
        job = LambdaJob(
            map_fn=lambda *a: None,
            reduce_fn=lambda *a: None,
            group_key_fn=lambda key: key[0],
        )
        bucket = [KeyValue(("g", 1), "a"), KeyValue(("g", 2), "b")]
        groups = group_bucket(job, sort_bucket(job, bucket))
        assert len(groups) == 1
        assert groups[0].key == ("g", 1)
        assert groups[0].values == ("a", "b")

    def test_empty_bucket(self):
        job = LambdaJob(map_fn=lambda *a: None, reduce_fn=lambda *a: None)
        assert group_bucket(job, []) == []


class TestFullShuffle:
    def test_end_to_end(self):
        job = figure1_job()
        outputs = [
            records(
                ColorShape("light", "circle"),
                ColorShape("dark", "circle"),
            ),
            records(
                ColorShape("light", "circle"),
                ColorShape("black", "circle"),
            ),
        ]
        grouped = shuffle(job, outputs, 3)
        assert len(grouped) == 3
        # Reduce task 0 gets both light circles in one group.
        assert len(grouped[0]) == 1
        assert len(grouped[0][0]) == 2
