"""KeyCodec: packed ints must be indistinguishable from tuple keys.

The codec's whole contract is *order preservation* — packing bounded
int fields most-significant-first makes int comparison equal
lexicographic tuple comparison — plus exact round-tripping and loud
failure on out-of-range fields.  On top of the unit properties, the
shuffle-level test proves that a strategy job built with packed keys
produces byte-identical reduce groups to one built with tuple keys.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bdm import analytic_bdm_from_block_sizes
from repro.core.blocksplit import BlockSplitJob
from repro.core.pairrange import PairRangeJob
from repro.er.matching import ThresholdMatcher
from repro.mapreduce.shuffle import shuffle
from repro.mapreduce.types import (
    KeyCodec,
    KeyValue,
    packed_keys,
    packed_keys_enabled,
    set_packed_keys,
)


class TestKeyCodecUnit:
    def test_round_trip(self):
        codec = KeyCodec(10, 300, 7)
        rng = random.Random(1)
        for _ in range(200):
            fields = (rng.randrange(10), rng.randrange(300), rng.randrange(7))
            assert codec.decode(codec.encode(fields)) == fields

    def test_order_matches_tuple_order(self):
        codec = KeyCodec(6, 40, 12, 2)
        rng = random.Random(2)
        tuples = [
            (rng.randrange(6), rng.randrange(40), rng.randrange(12), rng.randrange(2))
            for _ in range(300)
        ]
        packed = [codec.encode(t) for t in tuples]
        assert sorted(range(300), key=lambda i: packed[i]) == sorted(
            range(300), key=lambda i: tuples[i]
        )

    def test_equality_is_bijective(self):
        codec = KeyCodec(5, 5)
        seen = {codec.encode((a, b)) for a in range(5) for b in range(5)}
        assert len(seen) == 25

    def test_rejects_out_of_range(self):
        codec = KeyCodec(4, 4)
        with pytest.raises(ValueError, match="outside"):
            codec.encode((4, 0))
        with pytest.raises(ValueError, match="outside"):
            codec.encode((0, -1))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError, match="expected 2 fields"):
            KeyCodec(4, 4).encode((1, 2, 3))

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError, match=">= 1"):
            KeyCodec(0)
        with pytest.raises(ValueError, match="at least one"):
            KeyCodec()

    def test_decode_rejects_out_of_range(self):
        codec = KeyCodec(4, 4)
        with pytest.raises(ValueError, match="codec range"):
            codec.decode(1 << codec.total_bits)

    def test_limit_one_fields(self):
        codec = KeyCodec(1, 8, 1)
        assert codec.decode(codec.encode((0, 5, 0))) == (0, 5, 0)

    def test_field_maps_translate_and_order(self):
        """Non-int fields (the dual jobs' source tag) encode via ranks."""
        codec = KeyCodec(4, 2, field_maps={1: {"R": 0, "S": 1}})
        assert codec.encode((2, "R")) < codec.encode((2, "S"))
        assert codec.encode((2, "S")) < codec.encode((3, "R"))
        assert codec.decode(codec.encode((3, "S"))) == (3, 1)
        with pytest.raises(ValueError, match="outside"):
            codec.encode((0, "X"))

    def test_field_maps_survive_pickling(self):
        import pickle

        codec = KeyCodec(4, 2, field_maps={1: {"R": 0, "S": 1}})
        clone = pickle.loads(pickle.dumps(codec))
        assert clone.encode((3, "S")) == codec.encode((3, "S"))


class TestPackedKeysToggle:
    def test_context_manager_restores(self):
        initial = packed_keys_enabled()
        with packed_keys(not initial):
            assert packed_keys_enabled() is (not initial)
        assert packed_keys_enabled() is initial

    def test_set_packed_keys(self):
        initial = packed_keys_enabled()
        try:
            set_packed_keys(False)
            assert not packed_keys_enabled()
        finally:
            set_packed_keys(initial)


def _synthetic_map_outputs(job, entities_per_task=40, seed=9):
    """Map outputs for a strategy job over a synthetic annotated input.

    Runs the job's own map function per partition, so the emitted keys
    are exactly what the shuffle sees in a real run.
    """
    from repro.er.entity import Entity
    from repro.mapreduce.job import JobConfig, TaskContext

    rng = random.Random(seed)
    bdm = job.bdm
    config = JobConfig(num_map_tasks=bdm.num_partitions, num_reduce_tasks=job.num_reduce_tasks)
    outputs = []
    eid = 0
    for p in range(bdm.num_partitions):
        context = TaskContext(config, partition_index=p)
        job.configure_map(context)
        task_out: list[KeyValue] = []

        def emit(key, value, _out=task_out):
            _out.append(KeyValue(key, value))

        for k in range(bdm.num_blocks):
            for _ in range(bdm.size(k, p)):
                entity = Entity(f"e{eid}", {"title": f"t{rng.randrange(20)}"})
                eid += 1
                job.map(bdm.key_of(k), entity, emit, context)
        outputs.append(task_out)
    return outputs


@pytest.mark.parametrize("job_cls", [BlockSplitJob, PairRangeJob])
def test_shuffle_groups_identical_packed_vs_tuple(job_cls):
    """Grouping semantics are byte-identical across the two key paths."""
    sizes = [[7, 3, 0], [1, 1, 1], [12, 9, 4], [0, 0, 2], [5, 5, 5]]
    bdm = analytic_bdm_from_block_sizes(sizes)
    r = 4

    def run(enabled):
        with packed_keys(enabled):
            job = job_cls(bdm, ThresholdMatcher(), r)
        outputs = _synthetic_map_outputs(job)
        per_task = shuffle(job, outputs, r)
        # Compare representative keys and value lists — the observable
        # reduce-side contract.  (Group keys themselves are projections
        # and intentionally differ in representation.)
        return [
            [(group.key, group.values) for group in groups]
            for groups in per_task
        ]

    assert run(True) == run(False)
