"""Regression tests for the deliberately-broad fault handlers.

The lint suite's ``silent-except`` rule forced an audit of every broad
catch; the survivors are probes and reaper paths whose *breadth is the
contract*.  These tests drive real, hostile faults through them — an
exception whose pickle hooks themselves explode, an unpicklable job —
and pin the documented recovery behavior.
"""

import pickle

import pytest

from repro.engine.parallel import _picklable
from repro.er.matching import ThresholdMatcher
from repro.mapreduce.runtime import MapReduceJob
from repro.mapreduce.transport import RemoteTaskError, shippable_exception


class ExplodingReduce(Exception):
    """An exception whose own serialization hook raises."""

    def __reduce__(self):
        raise RuntimeError("refusing to be pickled")


class Unroundtrippable(Exception):
    """Pickles, but reconstructs as a different type."""

    def __init__(self, fh):
        super().__init__("carrying an open file")
        self.fh = fh

    def __reduce__(self):
        return (ValueError, ("degraded",))


def test_shippable_exception_passes_clean_exceptions_through():
    original = ValueError("plain")
    assert shippable_exception(original) is original


def test_shippable_exception_survives_exploding_reduce():
    shipped = shippable_exception(ExplodingReduce("boom"))
    assert isinstance(shipped, RemoteTaskError)
    assert "ExplodingReduce" in str(shipped)
    # The replacement itself must round-trip — that is its whole point.
    clone = pickle.loads(pickle.dumps(shipped))
    assert isinstance(clone, RemoteTaskError)


def test_shippable_exception_rejects_type_changing_roundtrip():
    shipped = shippable_exception(Unroundtrippable(None))
    assert isinstance(shipped, RemoteTaskError)


class _ClosureJob(MapReduceJob):
    """A job carrying a closure: picklable never, probe must say no."""

    def __init__(self):
        threshold = 0.5
        self.predicate = lambda a, b: a == b and threshold  # noqa: E731

    def map_fn(self, key, value):  # pragma: no cover - never runs
        return []

    def reduce_fn(self, key, values):  # pragma: no cover - never runs
        return []


def test_picklable_probe_accepts_real_jobs():
    assert _picklable is not None
    job = _ClosureJob()
    assert _picklable(job) is False


def test_picklable_probe_survives_exploding_getstate():
    class HostileJob(MapReduceJob):
        def __getstate__(self):
            raise ZeroDivisionError("hostile __getstate__")

        def map_fn(self, key, value):  # pragma: no cover
            return []

        def reduce_fn(self, key, values):  # pragma: no cover
            return []

    # Any failure — even a nonsense exception type — means "use threads",
    # never a crash.
    assert _picklable(HostileJob()) is False


def test_threshold_matcher_roundtrips():
    matcher = ThresholdMatcher(threshold=0.8)
    clone = pickle.loads(pickle.dumps(matcher))
    assert clone.threshold == pytest.approx(0.8)
