"""Spill-to-disk shuffle: forced spilling must not change anything."""

from __future__ import annotations

import random

import pytest

from repro.mapreduce.external_shuffle import ExternalShuffle
from repro.mapreduce.job import LambdaJob
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.shuffle import partition_map_output, sort_bucket
from repro.mapreduce.types import KeyValue, make_partitions

NUM_REDUCE_TASKS = 3


def _job() -> LambdaJob:
    """A composite-key job: partition on key[0], sort on the whole key.

    Duplicated sort keys exercise the stability guarantee — equal keys
    must keep their arrival order through spills and merges.
    """
    return LambdaJob(
        map_fn=lambda k, v, emit, ctx: emit((v % NUM_REDUCE_TASKS, v % 5), v),
        reduce_fn=lambda k, vs, emit, ctx: emit(k, sum(vs)),
        partition_fn=lambda key, r: key[0] % r,
        name="spill-probe",
    )


def _records(n: int = 200, seed: int = 13) -> list[KeyValue]:
    rng = random.Random(seed)
    return [
        KeyValue((rng.randrange(NUM_REDUCE_TASKS), rng.randrange(5), i), i)
        for i in range(n)
    ]


def _probe_job() -> LambdaJob:
    return LambdaJob(
        map_fn=lambda k, v, emit, ctx: emit(k, v),
        reduce_fn=lambda k, vs, emit, ctx: emit(k, list(vs)),
        partition_fn=lambda key, r: key[0] % r,
        sort_key_fn=lambda key: (key[0], key[1]),  # drop key[2]: duplicates
        name="merge-probe",
    )


class TestSpilling:
    def test_tiny_budget_forces_spills(self):
        job = _probe_job()
        records = _records()
        with ExternalShuffle(job, NUM_REDUCE_TASKS, memory_budget=10) as shuffle:
            shuffle.add_records(records)
            assert shuffle.spill_count >= len(records) // 10
            assert shuffle.spilled_records >= len(records) - 10
            assert shuffle.buffered_records < 10

    def test_buckets_equal_in_memory_shuffle(self):
        job = _probe_job()
        records = _records()
        expected = [
            sort_bucket(job, bucket)
            for bucket in partition_map_output(job, [records], NUM_REDUCE_TASKS)
        ]
        with ExternalShuffle(job, NUM_REDUCE_TASKS, memory_budget=7) as shuffle:
            shuffle.add_records(records)
            drained = [
                shuffle.bucket_records(i) for i in range(NUM_REDUCE_TASKS)
            ]
        assert drained == expected

    def test_no_spill_under_budget(self):
        job = _probe_job()
        records = _records(n=20)
        with ExternalShuffle(job, NUM_REDUCE_TASKS, memory_budget=1000) as shuffle:
            shuffle.add_records(records)
            assert shuffle.spill_count == 0
            expected = [
                sort_bucket(job, bucket)
                for bucket in partition_map_output(job, [records], NUM_REDUCE_TASKS)
            ]
            assert [
                [record for _key, record in bucket] for bucket in shuffle.buckets()
            ] == expected

    def test_entries_carry_the_sort_key_encoded_at_add_time(self):
        # The (sort key, record) pairs buckets() yields must pair every
        # record with exactly the job's sort projection of its key — the
        # reduce group walk reuses it instead of re-encoding.
        job = _probe_job()
        with ExternalShuffle(job, NUM_REDUCE_TASKS, memory_budget=7) as shuffle:
            shuffle.add_records(_records(n=40))
            for index in range(NUM_REDUCE_TASKS):
                for sort_key, record in shuffle.bucket_entries(index):
                    assert sort_key == job.sort_key(record.key)

    def test_lazy_bucket_sequence(self):
        job = _probe_job()
        with ExternalShuffle(job, NUM_REDUCE_TASKS, memory_budget=5) as shuffle:
            shuffle.add_records(_records(n=30))
            buckets = shuffle.buckets()
            assert len(buckets) == NUM_REDUCE_TASKS
            assert buckets[1] == shuffle.bucket_entries(1)
            assert [r for _k, r in buckets[1]] == shuffle.bucket_records(1)


class TestValidation:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError, match="memory_budget"):
            ExternalShuffle(_probe_job(), NUM_REDUCE_TASKS, memory_budget=0)

    def test_rejects_nonpositive_reduce_tasks(self):
        with pytest.raises(ValueError, match="num_reduce_tasks"):
            ExternalShuffle(_probe_job(), 0, memory_budget=10)

    def test_closed_shuffle_refuses_work(self):
        shuffle = ExternalShuffle(_probe_job(), NUM_REDUCE_TASKS, memory_budget=10)
        shuffle.close()
        with pytest.raises(RuntimeError, match="closed"):
            shuffle.add(KeyValue((0, 0, 0), 0))
        with pytest.raises(RuntimeError, match="closed"):
            shuffle.bucket_records(0)

    def test_bucket_index_bounds(self):
        with ExternalShuffle(_probe_job(), NUM_REDUCE_TASKS, 10) as shuffle:
            with pytest.raises(IndexError):
                shuffle.bucket_records(NUM_REDUCE_TASKS)

    def test_spill_files_removed_on_close(self, tmp_path):
        shuffle = ExternalShuffle(
            _probe_job(), NUM_REDUCE_TASKS, memory_budget=5
        )
        shuffle.add_records(_records(n=30))
        spill_dir = shuffle._dir
        assert any(spill_dir.iterdir())
        shuffle.close()
        assert not spill_dir.exists()


class TestRuntimeIntegration:
    def test_job_results_identical_with_and_without_budget(self):
        job = _job()
        partitions = make_partitions(list(range(120)), 4)
        plain = LocalRuntime().run(job, partitions, NUM_REDUCE_TASKS)
        spilled = LocalRuntime().run(
            job, partitions, NUM_REDUCE_TASKS, memory_budget=6
        )
        assert spilled.output == plain.output
        assert spilled.counters == plain.counters
        assert spilled.reduce_input_records() == plain.reduce_input_records()
        # Raw map outputs are dropped under a budget; their stats stay.
        assert all(task.output == () for task in spilled.map_tasks)
        assert [t.output_records for t in spilled.map_tasks] == [
            t.output_records for t in plain.map_tasks
        ]

    def test_runtime_rejects_nonpositive_budget(self):
        job = _job()
        partitions = make_partitions(list(range(10)), 2)
        with pytest.raises(ValueError, match="memory_budget"):
            LocalRuntime().run(job, partitions, 2, memory_budget=0)
