"""The in-memory DFS: side outputs and partition-preserving job chaining."""

from __future__ import annotations

import pytest

from repro.mapreduce.dfs import DfsError, DistributedFileSystem
from repro.mapreduce.types import KeyValue


class TestFiles:
    def test_create_and_append(self):
        dfs = DistributedFileSystem()
        dfs.create("dir/part-00000")
        dfs.append("dir/part-00000", "k", "v")
        assert dfs.read("dir/part-00000") == [KeyValue("k", "v")]

    def test_double_create_rejected(self):
        dfs = DistributedFileSystem()
        dfs.create("x")
        with pytest.raises(DfsError):
            dfs.create("x")

    def test_append_to_missing_path_rejected(self):
        with pytest.raises(DfsError):
            DistributedFileSystem().append("missing", "k", "v")

    def test_read_missing_path_rejected(self):
        with pytest.raises(DfsError):
            DistributedFileSystem().read("missing")

    def test_write_records(self):
        dfs = DistributedFileSystem()
        dfs.write_records("f", [KeyValue(1, 2), KeyValue(3, 4)])
        assert len(dfs.read("f")) == 2

    def test_exists(self):
        dfs = DistributedFileSystem()
        assert not dfs.exists("a")
        dfs.create("a")
        assert dfs.exists("a")


class TestDirectories:
    def test_list_dir_sorted(self):
        dfs = DistributedFileSystem()
        for i in (2, 0, 1):
            dfs.create(DistributedFileSystem.task_path("out", i))
        assert dfs.list_dir("out") == [
            "out/part-00000",
            "out/part-00001",
            "out/part-00002",
        ]

    def test_read_dir_concatenates(self):
        dfs = DistributedFileSystem()
        dfs.write_records("d/part-00000", [KeyValue("a", 1)])
        dfs.write_records("d/part-00001", [KeyValue("b", 2)])
        assert [r.key for r in dfs.read_dir("d")] == ["a", "b"]

    def test_total_records(self):
        dfs = DistributedFileSystem()
        dfs.write_records("d/part-00000", [KeyValue("a", 1), KeyValue("b", 2)])
        dfs.write_records("d/part-00001", [KeyValue("c", 3)])
        assert dfs.total_records("d") == 3


class TestPartitionChaining:
    def test_read_as_partitions(self):
        dfs = DistributedFileSystem()
        dfs.write_records("out/part-00000", [KeyValue("a", 1)])
        dfs.write_records("out/part-00001", [KeyValue("b", 2), KeyValue("c", 3)])
        parts = dfs.read_as_partitions("out")
        assert [p.index for p in parts] == [0, 1]
        assert [len(p) for p in parts] == [1, 2]

    def test_non_contiguous_partitions_rejected(self):
        dfs = DistributedFileSystem()
        dfs.write_records("out/part-00000", [KeyValue("a", 1)])
        dfs.write_records("out/part-00002", [KeyValue("b", 2)])
        with pytest.raises(DfsError, match="non-contiguous"):
            dfs.read_as_partitions("out")

    def test_task_path_format(self):
        assert DistributedFileSystem.task_path("dir/", 7) == "dir/part-00007"
