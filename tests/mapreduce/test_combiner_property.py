"""Property: an associative/commutative combiner never changes results.

The classic combiner contract — for aggregations like the BDM count,
running the combiner per map task must leave the reduce output
untouched while (weakly) shrinking the shuffle.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapreduce.job import LambdaJob
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import make_partitions


def count_job(with_combiner: bool) -> LambdaJob:
    def map_fn(key, value, emit, ctx):
        emit(value % 7, 1)

    def reduce_fn(key, values, emit, ctx):
        emit(key, sum(values))

    return LambdaJob(
        map_fn,
        reduce_fn,
        combine_fn=(lambda k, vs: [(k, sum(vs))]) if with_combiner else None,
        name="count",
    )


@given(
    values=st.lists(st.integers(min_value=0, max_value=1000), max_size=80),
    m=st.integers(min_value=1, max_value=5),
    r=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=40, deadline=None)
def test_combiner_preserves_output_and_shrinks_shuffle(values, m, r):
    if not values:
        return
    partitions = make_partitions(values, m)
    plain = LocalRuntime().run(count_job(False), partitions, r)
    combined = LocalRuntime().run(count_job(True), partitions, r)
    assert dict(kv.as_tuple() for kv in plain.output) == dict(
        kv.as_tuple() for kv in combined.output
    )
    assert combined.map_output_records() <= plain.map_output_records()


@given(
    values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    m=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_combined_map_output_bounded_by_distinct_keys(values, m):
    partitions = make_partitions(values, m)
    combined = LocalRuntime().run(count_job(True), partitions, 3)
    distinct_keys = len({v % 7 for v in values})
    assert combined.map_output_records() <= distinct_keys * m
