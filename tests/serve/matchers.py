"""Picklable matchers for the serve tests.

These live in a real module (not inside a test function) because served
jobs ship their matcher to worker *processes*: pickle must be able to
re-import the class on the other side.
"""

from __future__ import annotations

import time

from repro.er.entity import Entity
from repro.er.matching import Matcher


class SlowMatcher(Matcher):
    """Burns ``delay`` seconds per comparison — makes a job long enough
    to disconnect from / cancel / shut down while it runs."""

    def __init__(self, delay: float = 0.005):
        super().__init__()
        self.delay = delay

    def similarity(self, e1: Entity, e2: Entity) -> float:
        time.sleep(self.delay)
        return 1.0 if e1.get("key") == e2.get("key") else 0.0

    def is_match(self, similarity: float) -> bool:
        return similarity >= 1.0


class ExplodingMatcher(Matcher):
    """Raises on the first comparison — a deterministic task failure."""

    def similarity(self, e1: Entity, e2: Entity) -> float:
        raise ValueError("exploding matcher detonated")

    def is_match(self, similarity: float) -> bool:  # pragma: no cover
        return False
