"""The shared worker pool: multi-job scheduling over one process pool.

Real worker processes throughout (no mocks): correctness of results
against the serial reference, per-job failure isolation, fair rotation,
and pool lifecycle.
"""

from __future__ import annotations

import threading

import pytest

from repro.datasets.generators import generate_products
from repro.engine import ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.serve.pool import (
    PooledBackend,
    SharedWorkerPool,
    WorkerPoolError,
    _PoolJob,
)

from .matchers import ExplodingMatcher


def _pipeline(backend, matcher=None):
    return ERPipeline(
        "blocksplit",
        PrefixBlocking("title"),
        matcher if matcher is not None else ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=5,
        backend=backend,
    )


def _fingerprint(result):
    return (
        [(p.id1, p.id2, p.similarity) for p in result.matches],
        result.reduce_comparisons(),
        result.job2.counters.as_dict(),
        None if result.job1 is None else result.job1.counters.as_dict(),
    )


@pytest.fixture(scope="module")
def pool():
    with SharedWorkerPool(num_workers=2) as shared:
        yield shared


class TestCorrectness:
    def test_single_job_is_byte_identical_to_serial(self, pool):
        entities = generate_products(150, seed=61)
        reference = _fingerprint(_pipeline("serial").run(entities))
        pooled = _fingerprint(_pipeline(PooledBackend(pool)).run(entities))
        assert pooled == reference

    def test_concurrent_jobs_are_isolated_and_identical(self, pool):
        datasets = [generate_products(120, seed=s) for s in (62, 63, 64)]
        references = [
            _fingerprint(_pipeline("serial").run(e)) for e in datasets
        ]
        results: list = [None] * len(datasets)
        errors: list = []

        def run(i):
            try:
                results[i] = _fingerprint(
                    _pipeline(PooledBackend(pool)).run(datasets[i])
                )
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,))
            for i in range(len(datasets))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results == references

    def test_streamed_matches_keep_task_order(self, pool):
        entities = generate_products(150, seed=65)
        reference = _pipeline("serial").run(entities)
        execution = _pipeline(PooledBackend(pool)).submit(entities)
        streamed = [
            (p.id1, p.id2, p.similarity) for p in execution.iter_matches()
        ]
        execution.result()
        assert streamed == [
            (r.value.id1, r.value.id2, r.value.similarity)
            for r in reference.job2.output
        ]


class TestFailureIsolation:
    def test_task_error_fails_only_its_job(self, pool):
        good_entities = generate_products(120, seed=66)
        reference = _fingerprint(_pipeline("serial").run(good_entities))
        bad = _pipeline(PooledBackend(pool), matcher=ExplodingMatcher()).submit(
            generate_products(120, seed=67)
        )
        good = _pipeline(PooledBackend(pool)).submit(good_entities)
        with pytest.raises(ValueError, match="exploding matcher detonated"):
            bad.result()
        # The neighbour job is untouched by the failure.
        assert _fingerprint(good.result()) == reference
        # And the pool stays usable for the next job.
        again = _pipeline(PooledBackend(pool)).run(good_entities)
        assert _fingerprint(again) == reference


class TestFairRotation:
    def test_round_robin_interleaves_jobs(self):
        # White-box: the dispatch order over pending jobs, no workers
        # needed — job A's queue must not starve B and C.
        pool = SharedWorkerPool(num_workers=1)
        jobs = [_PoolJob(i, f"j{i}") for i in range(3)]
        counts = (5, 2, 2)
        for job, count in zip(jobs, counts):
            pool._jobs[job.job_id] = job
            for index in range(count):
                job.pending.append(object())
            pool._rotation.append(job)
        order = []
        while True:
            assignment = pool._next_pending()
            if assignment is None:
                break
            order.append(assignment[0].job_id)
        assert order == [0, 1, 2, 0, 1, 2, 0, 0, 0]


class TestLifecycle:
    def test_unstarted_pool_refuses_jobs(self):
        pool = SharedWorkerPool(num_workers=1)
        with pytest.raises(WorkerPoolError, match="not running"):
            pool.open_job()

    def test_closed_pool_refuses_jobs(self):
        pool = SharedWorkerPool(num_workers=1).start()
        pool.close()
        with pytest.raises(WorkerPoolError, match="not running"):
            pool.open_job()

    def test_close_is_idempotent(self):
        pool = SharedWorkerPool(num_workers=1).start()
        pool.close()
        pool.close()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            SharedWorkerPool(num_workers=0)
