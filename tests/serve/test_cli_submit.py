"""The ``serve``/``submit`` CLI verbs against an in-process daemon."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.serve import ERServer
from repro.serve.protocol import ENV_SERVE_TOKEN

TOKEN = "cli-submit-token"


@pytest.fixture(scope="module")
def server():
    with ERServer(num_workers=2, token=TOKEN) as daemon:
        yield daemon


@pytest.fixture()
def dataset(tmp_path):
    data = tmp_path / "in.csv"
    assert main(["generate", "--kind", "products", "--num", "300",
                 "--seed", "7", "--output", str(data)]) == 0
    return data


class TestSubmit:
    def test_submit_output_is_byte_identical_to_local_dedup(
        self, server, dataset, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(ENV_SERVE_TOKEN, TOKEN)
        host, port = server.address
        local_out = tmp_path / "local.csv"
        remote_out = tmp_path / "remote.csv"
        assert main(["dedup", "--input", str(dataset),
                     "--output", str(local_out)]) == 0
        assert main(["submit", "--server", f"{host}:{port}",
                     "--input", str(dataset),
                     "--output", str(remote_out)]) == 0
        captured = capsys.readouterr()
        # Same strategy, same m/r defaults, same streaming sink: the
        # served run must reproduce the local file byte for byte.
        assert remote_out.read_text() == local_out.read_text()
        assert f"served by {host}:{port}" in captured.out

    def test_progress_narrates_on_stderr(
        self, server, dataset, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(ENV_SERVE_TOKEN, TOKEN)
        host, port = server.address
        assert main(["submit", "--server", f"{host}:{port}",
                     "--input", str(dataset),
                     "--output", str(tmp_path / "m.csv"),
                     "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[matching]" in captured.err and "reduce task" in captured.err

    def test_token_flag_overrides_environment(
        self, server, dataset, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv(ENV_SERVE_TOKEN, raising=False)
        host, port = server.address
        assert main(["submit", "--server", f"{host}:{port}",
                     "--token", TOKEN,
                     "--input", str(dataset),
                     "--output", str(tmp_path / "m.csv")]) == 0
        capsys.readouterr()

    def test_malformed_server_address_is_a_clean_error(
        self, dataset, tmp_path, capsys
    ):
        code = main(["submit", "--server", "nonsense",
                     "--input", str(dataset),
                     "--output", str(tmp_path / "m.csv")])
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_missing_token_is_a_clean_error(
        self, server, dataset, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv(ENV_SERVE_TOKEN, raising=False)
        host, port = server.address
        code = main(["submit", "--server", f"{host}:{port}",
                     "--input", str(dataset),
                     "--output", str(tmp_path / "m.csv")])
        assert code == 2
        assert "token" in capsys.readouterr().err

    def test_wrong_token_is_a_clean_error(
        self, server, dataset, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(ENV_SERVE_TOKEN, "definitely-wrong")
        host, port = server.address
        code = main(["submit", "--server", f"{host}:{port}",
                     "--input", str(dataset),
                     "--output", str(tmp_path / "m.csv")])
        assert code == 2
        assert "handshake" in capsys.readouterr().err
