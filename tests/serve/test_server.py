"""The ER service daemon end to end: real sockets, real workers.

Covers the acceptance battery of the serve subsystem: concurrent
clients byte-identical to serial, per-session cancellation on
disconnect, worker-crash survival behind the service, authentication
before deserialization, graceful shutdown (drain and cancel flavours),
and the JSONL workload log.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import time

import pytest

from repro.datasets.generators import generate_products
from repro.engine import ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.mapreduce.events import PipelineCancelled
from repro.mapreduce.transport import ConnectionClosed, TransportError, connect
from repro.serve import (
    ERServer,
    ServeClient,
    ServeConnectionError,
    SubmissionRejected,
)
from repro.serve.protocol import TOKEN_BYTES, encode_token
from repro.worker import ENV_FAULT, ENV_FAULT_WORKERS

from .conftest import key_entities
from .matchers import SlowMatcher

TOKEN = "serve-test-token"


def _pipeline(matcher=None, **kwargs):
    kwargs.setdefault("num_map_tasks", 3)
    kwargs.setdefault("num_reduce_tasks", 5)
    return ERPipeline(
        "blocksplit",
        PrefixBlocking("title"),
        matcher if matcher is not None else ThresholdMatcher("title", 0.8),
        **kwargs,
    )


def _fingerprint(result):
    return (
        [(p.id1, p.id2, p.similarity) for p in result.matches],
        result.reduce_comparisons(),
        result.job2.counters.as_dict(),
        None if result.job1 is None else result.job1.counters.as_dict(),
    )


@pytest.fixture(scope="module")
def server():
    with ERServer(num_workers=2, token=TOKEN) as daemon:
        yield daemon


class TestConcurrentClients:
    def test_two_clients_byte_identical_to_serial(self, server):
        entities_a = generate_products(160, seed=81)
        entities_b = generate_products(140, seed=82)
        ref_a = _pipeline().run(entities_a)
        ref_b = _pipeline().run(entities_b)
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as c1, \
                ServeClient(host, port, token=TOKEN) as c2:
            # Both jobs in flight before either result is read: they
            # share the pool concurrently.
            e1 = c1.submit(_pipeline(), entities_a)
            e2 = c2.submit(_pipeline(), entities_b)
            streamed = [
                (p.id1, p.id2, p.similarity) for p in e1.iter_matches()
            ]
            r1, r2 = e1.result(), e2.result()
        assert _fingerprint(r1) == _fingerprint(ref_a)
        assert _fingerprint(r2) == _fingerprint(ref_b)
        # The remote stream is the serial reduce-output order exactly.
        assert streamed == [
            (r.value.id1, r.value.id2, r.value.similarity)
            for r in ref_a.job2.output
        ]

    def test_one_client_many_jobs(self, server):
        datasets = [generate_products(100, seed=s) for s in (83, 84, 85)]
        references = [_fingerprint(_pipeline().run(e)) for e in datasets]
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            handles = [client.submit(_pipeline(), e) for e in datasets]
            results = [_fingerprint(h.result()) for h in handles]
        assert results == references

    def test_remote_progress_matches_local(self, server):
        entities = generate_products(120, seed=86)
        local = _pipeline().submit(entities)
        local.result()
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            remote = client.submit(_pipeline(), entities)
            remote.result()
            remote_progress = remote.progress()
        local_progress = local.progress()
        assert remote_progress == local_progress
        assert remote_progress.comparisons > 0


class TestDisconnect:
    def test_disconnect_cancels_only_that_session(self, server):
        host, port = server.address
        good_entities = generate_products(130, seed=87)
        reference = _fingerprint(_pipeline().run(good_entities))
        slow_entities = key_entities(40, keys=2)

        survivor = ServeClient(host, port, token=TOKEN)
        doomed = ServeClient(host, port, token=TOKEN)
        try:
            slow = doomed.submit(
                _pipeline(matcher=SlowMatcher(delay=0.05)), slow_entities
            )
            good = survivor.submit(_pipeline(), good_entities)
            # Wait until the slow job is really executing on the pool.
            deadline = time.monotonic() + 30
            while not slow.progress().stages:
                assert time.monotonic() < deadline, "slow job never started"
                time.sleep(0.02)
            # The client process "dies": connection drops, no goodbye.
            doomed._conn.close()
            # The other session's job is untouched.
            assert _fingerprint(good.result(timeout=120)) == reference
            # The dead session's job gets cancelled server-side.
            deadline = time.monotonic() + 60
            while server.active_jobs:
                assert time.monotonic() < deadline, "job was not cancelled"
                time.sleep(0.05)
        finally:
            survivor.close()
            doomed.close()

    def test_lost_connection_fails_local_handles(self, server):
        host, port = server.address
        client = ServeClient(host, port, token=TOKEN)
        execution = client.submit(
            _pipeline(matcher=SlowMatcher(delay=0.05)), key_entities(40, keys=2)
        )
        client._conn.close()
        with pytest.raises(ServeConnectionError):
            execution.result(timeout=60)


class TestWorkerCrash:
    def test_crash_during_served_job_requeues_and_completes(self, monkeypatch):
        entities = generate_products(160, seed=88)
        reference = _fingerprint(_pipeline().run(entities))
        # Worker 0 dies mid-protocol at its 2nd task; armed before the
        # daemon starts so the pool workers inherit the fault hooks.
        monkeypatch.setenv(ENV_FAULT, "crash:2")
        monkeypatch.setenv(ENV_FAULT_WORKERS, "0")
        with ERServer(num_workers=2, token=TOKEN) as server:
            host, port = server.address
            with ServeClient(host, port, token=TOKEN) as client:
                result = client.submit(_pipeline(), entities).result(timeout=180)
        assert _fingerprint(result) == reference

    def test_pool_heals_for_later_jobs(self, monkeypatch):
        entities = generate_products(120, seed=89)
        reference = _fingerprint(_pipeline().run(entities))
        monkeypatch.setenv(ENV_FAULT, "crash:1")
        monkeypatch.setenv(ENV_FAULT_WORKERS, "0")
        with ERServer(num_workers=2, token=TOKEN) as server:
            host, port = server.address
            with ServeClient(host, port, token=TOKEN) as client:
                first = client.submit(_pipeline(), entities).result(timeout=180)
                # The crashed worker was respawned: the pool is back at
                # full strength and the next job sees a healthy pool.
                second = client.submit(_pipeline(), entities).result(timeout=180)
        assert _fingerprint(first) == reference
        assert _fingerprint(second) == reference


class TestAuthentication:
    def test_bad_token_is_dropped_before_any_unpickling(self, server, tmp_path):
        host, port = server.address
        marker = tmp_path / "pwned"
        failures_before = server.auth_failures

        class Evil:
            """Pickle payload that would create ``marker`` on loads."""

            def __reduce__(self):
                return (open, (str(marker), "w"))

        payload = pickle.dumps(("hello", Evil()))
        conn = connect(host, port)
        try:
            conn.send_bytes(encode_token("wrong-token-entirely"))
            conn.send_bytes(struct.pack(">Q", len(payload)) + payload)
            # The server must close on us without reading the pickle.
            with pytest.raises((ConnectionClosed, TransportError)):
                conn.recv(timeout=30)
        finally:
            conn.close()
        deadline = time.monotonic() + 30
        while server.auth_failures == failures_before:
            assert time.monotonic() < deadline, "auth failure not recorded"
            time.sleep(0.02)
        assert not marker.exists(), "malicious pickle was deserialized!"
        # The daemon is unharmed: a legitimate client still works.
        with ServeClient(host, port, token=TOKEN) as client:
            assert client.server_info["num_workers"] == 2

    def test_wrong_token_client_fails_handshake(self, server):
        host, port = server.address
        with pytest.raises(ServeConnectionError, match="handshake"):
            ServeClient(host, port, token="not-the-token", timeout=10)

    def test_client_requires_a_token(self, server, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TOKEN", raising=False)
        host, port = server.address
        with pytest.raises(ValueError, match="no service token"):
            ServeClient(host, port)

    def test_oversized_token_rejected_loudly(self):
        with pytest.raises(ValueError, match="longer than"):
            encode_token("x" * (TOKEN_BYTES + 1))


class TestShutdown:
    def test_graceful_shutdown_drains_running_jobs(self):
        entities = generate_products(120, seed=90)
        reference = _fingerprint(_pipeline().run(entities))
        server = ERServer(num_workers=2, token=TOKEN, drain_timeout=120).start()
        host, port = server.address
        client = ServeClient(host, port, token=TOKEN)
        try:
            execution = client.submit(_pipeline(), entities)
            server.shutdown()  # drain: the in-flight job completes
            assert _fingerprint(execution.result(timeout=60)) == reference
            assert client.server_draining
        finally:
            client.close()

    def test_zero_drain_timeout_cancels_running_jobs(self):
        server = ERServer(num_workers=2, token=TOKEN, drain_timeout=0).start()
        host, port = server.address
        client = ServeClient(host, port, token=TOKEN)
        try:
            execution = client.submit(
                _pipeline(matcher=SlowMatcher(delay=0.05)),
                key_entities(40, keys=2),
            )
            deadline = time.monotonic() + 30
            while not execution.progress().stages:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            server.shutdown()
            with pytest.raises((PipelineCancelled, ServeConnectionError)):
                execution.result(timeout=60)
        finally:
            client.close()

    def test_draining_server_rejects_new_submissions(self):
        server = ERServer(num_workers=1, token=TOKEN).start()
        host, port = server.address
        client = ServeClient(host, port, token=TOKEN)
        try:
            server._draining = True  # as during shutdown, before close
            with pytest.raises(SubmissionRejected, match="shutting down"):
                client.submit(_pipeline(), generate_products(40, seed=91))
        finally:
            client.close()
            server.shutdown()

    def test_refused_connection_after_shutdown(self):
        server = ERServer(num_workers=1, token=TOKEN).start()
        host, port = server.address
        server.shutdown()
        with pytest.raises((ServeConnectionError, TransportError, OSError)):
            ServeClient(host, port, token=TOKEN, timeout=5)


class TestWorkloadLog:
    def test_jsonl_entries_for_succeeded_and_cancelled_jobs(self, tmp_path):
        log_path = tmp_path / "workload.jsonl"
        entities = generate_products(110, seed=92)
        with ERServer(
            num_workers=2, token=TOKEN, workload_log=log_path
        ) as server:
            host, port = server.address
            with ServeClient(host, port, token=TOKEN) as client:
                client.submit(_pipeline(), entities).result(timeout=120)
                slow = client.submit(
                    _pipeline(matcher=SlowMatcher(delay=0.05)),
                    key_entities(40, keys=2),
                )
                deadline = time.monotonic() + 30
                while not slow.progress().stages:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                slow.cancel()
                with pytest.raises(PipelineCancelled):
                    slow.result(timeout=60)
                # The log is written by the job waiter thread; wait for
                # the daemon to retire both jobs.
                deadline = time.monotonic() + 30
                while server.active_jobs:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
        entries = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert len(entries) == 2
        done, cancelled = entries
        assert done["state"] == "succeeded"
        assert done["strategy"] == "blocksplit"
        assert done["comparisons"] > 0 and done["matches"] >= 0
        assert done["params"]["num_reduce_tasks"] == 5
        assert set(done["stages"]) == {"bdm", "matching"}
        assert done["stages"]["matching"]["comparisons"] == done["comparisons"]
        assert done["wall_s"] > 0
        assert cancelled["state"] == "cancelled"
        assert cancelled["job_id"] != done["job_id"]


class TestDeltaIngest:
    """The ``submit-delta`` job kind: server-resident corpus states."""

    @pytest.fixture(scope="class")
    def delta_server(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("states")
        with ERServer(
            num_workers=2, token=TOKEN, state_root=root
        ) as daemon:
            yield daemon, root

    def test_ingests_equal_full_recompute(self, delta_server):
        from repro.engine.persistence import load_state

        server, root = delta_server
        entities = generate_products(200, seed=95)
        full = _pipeline().run(entities)
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            first = client.submit_delta(
                _pipeline(), entities[:130], "corpus"
            ).result(timeout=120)
            handle = client.submit_delta(_pipeline(), entities[130:], "corpus")
            streamed = [
                (p.id1, p.id2, p.similarity) for p in handle.iter_matches()
            ]
            second = handle.result(timeout=120)
        # The remote handle streams exactly the delta run's matches
        # (stream order is reduce-task order; the result sorts).
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == {
            (p.id1, p.id2, p.similarity) for p in second.matches
        }
        # ...the two ingests together are the full recompute, and the
        # state on disk has committed both (cumulative counters too).
        state = load_state(root / "corpus")
        assert state.num_ingests == 2
        assert {
            (p.id1, p.id2, p.similarity) for p in state.matches
        } == {(p.id1, p.id2, p.similarity) for p in full.matches}
        assert (
            first.total_comparisons() + second.total_comparisons()
            == full.total_comparisons()
        )
        assert state.comparisons == full.total_comparisons()
        assert second.total_comparisons() < full.total_comparisons()

    def test_concurrent_states_do_not_interfere(self, delta_server):
        from repro.engine.persistence import load_state

        server, root = delta_server
        a = generate_products(90, seed=96)
        b = generate_products(90, seed=97)
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            handles = [
                client.submit_delta(_pipeline(), a, "state-a"),
                client.submit_delta(_pipeline(), b, "state-b"),
            ]
            for handle in handles:
                handle.result(timeout=120)
        expected_a = _pipeline().run(a)
        state_a = load_state(root / "state-a")
        assert {
            (p.id1, p.id2) for p in state_a.matches
        } == {(p.id1, p.id2) for p in expected_a.matches}
        assert load_state(root / "state-b").num_ingests == 1

    def test_failed_ingest_leaves_state_untouched(self, delta_server):
        from repro.engine.persistence import load_state
        from .matchers import ExplodingMatcher

        server, root = delta_server
        entities = generate_products(80, seed=98)
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            client.submit_delta(
                _pipeline(), entities[:50], "fragile"
            ).result(timeout=120)
            snapshot = {
                path.name: path.read_bytes()
                for path in sorted((root / "fragile").iterdir())
            }
            broken = client.submit_delta(
                _pipeline(matcher=ExplodingMatcher()),
                entities[50:],
                "fragile",
            )
            with pytest.raises(Exception, match="exploding matcher"):
                broken.result(timeout=120)
            # Untouched on disk — and the retried ingest still lands.
            assert {
                path.name: path.read_bytes()
                for path in sorted((root / "fragile").iterdir())
            } == snapshot
            client.submit_delta(
                _pipeline(), entities[50:], "fragile"
            ).result(timeout=120)
        assert load_state(root / "fragile").num_ingests == 2

    def test_corrupt_state_fails_cleanly_and_server_survives(
        self, delta_server
    ):
        server, root = delta_server
        (root / "rotten").mkdir()
        (root / "rotten" / "state.json").write_text("not json at all")
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            doomed = client.submit_delta(
                _pipeline(), generate_products(40, seed=99), "rotten"
            )
            with pytest.raises(Exception, match="not valid JSON"):
                doomed.result(timeout=60)
            # The daemon took the failure in stride: a healthy ingest
            # on the same connection still works.
            client.submit_delta(
                _pipeline(), generate_products(40, seed=99), "healthy"
            ).result(timeout=120)

    def test_rejects_bad_state_names(self, delta_server):
        server, _ = delta_server
        host, port = server.address
        entities = generate_products(30, seed=99)
        with ServeClient(host, port, token=TOKEN) as client:
            for name in ("../escape", "a/b", "", "..", "x" * 201):
                with pytest.raises(
                    SubmissionRejected, match="invalid state name"
                ):
                    client.submit_delta(_pipeline(), entities, name)

    def test_rejects_without_state_root(self, server):
        host, port = server.address
        with ServeClient(host, port, token=TOKEN) as client:
            with pytest.raises(
                SubmissionRejected, match="no corpus states"
            ):
                client.submit_delta(
                    _pipeline(), generate_products(30, seed=99), "corpus"
                )

    def test_workload_log_keeps_lifecycle_state_for_ingests(self, tmp_path):
        # The corpus-state name must not clobber the entry's lifecycle
        # ``state`` field ("succeeded"/"failed"/...): it gets its own
        # ``corpus_state`` key.
        log_path = tmp_path / "workload.jsonl"
        entities = generate_products(60, seed=97)
        with ERServer(
            num_workers=2,
            token=TOKEN,
            state_root=tmp_path / "states",
            workload_log=log_path,
        ) as daemon:
            host, port = daemon.address
            with ServeClient(host, port, token=TOKEN) as client:
                client.submit_delta(
                    _pipeline(), entities, "corpus"
                ).result(timeout=120)
                deadline = time.monotonic() + 30
                while daemon.active_jobs:
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
        (entry,) = [
            json.loads(line)
            for line in log_path.read_text().splitlines()
        ]
        assert entry["state"] == "succeeded"
        assert entry["corpus_state"] == "corpus"
