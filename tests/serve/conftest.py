"""Shared helpers for the serve test suite."""

from __future__ import annotations

from repro.er.entity import Entity


def key_entities(count: int, *, keys: int = 2) -> list[Entity]:
    """Entities tailored for :class:`.matchers.SlowMatcher` jobs.

    Titles spread over eight 3-character prefixes so PrefixBlocking
    yields small blocks (the comparison count — and so a slow job's
    wall-clock — stays bounded); the ``key`` attribute cycles over
    ``keys`` values, which is what SlowMatcher compares.
    """
    return [
        Entity(
            f"e{i:03d}",
            {"title": f"b{i % 8}x item {i:03d}", "key": str(i % keys)},
        )
        for i in range(count)
    ]
