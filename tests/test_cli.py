"""The command-line interface end to end (via main(argv))."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main


class TestGenerate:
    def test_products(self, tmp_path, capsys):
        out = tmp_path / "p.csv"
        assert main(["generate", "--kind", "products", "--num", "120",
                     "--output", str(out)]) == 0
        assert "120" in capsys.readouterr().out
        rows = list(csv.reader(out.open()))
        assert len(rows) == 121  # header + entities

    def test_publications(self, tmp_path):
        out = tmp_path / "p.csv"
        assert main(["generate", "--kind", "publications", "--num", "50",
                     "--output", str(out)]) == 0
        assert out.exists()


class TestDedup:
    def _dataset(self, tmp_path):
        data = tmp_path / "in.csv"
        main(["generate", "--kind", "products", "--num", "400",
              "--seed", "3", "--output", str(data)])
        return data

    @pytest.mark.parametrize("strategy", ["basic", "blocksplit", "pairrange"])
    def test_dedup_strategies_agree(self, tmp_path, strategy, capsys):
        data = self._dataset(tmp_path)
        out = tmp_path / f"m-{strategy}.csv"
        assert main(["dedup", "--input", str(data), "--output", str(out),
                     "--strategy", strategy]) == 0
        capsys.readouterr()
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["id1", "id2", "similarity"]
        assert len(rows) > 1

    def test_parallel_backend_same_matches(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        serial_out = tmp_path / "serial.csv"
        parallel_out = tmp_path / "parallel.csv"
        assert main(["dedup", "--input", str(data), "--output", str(serial_out),
                     "--backend", "serial"]) == 0
        assert main(["dedup", "--input", str(data), "--output", str(parallel_out),
                     "--backend", "parallel", "--workers", "4"]) == 0
        capsys.readouterr()
        assert serial_out.read_text() == parallel_out.read_text()

    def test_all_strategies_same_matches(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        contents = []
        for strategy in ("basic", "blocksplit", "pairrange"):
            out = tmp_path / f"m-{strategy}.csv"
            main(["dedup", "--input", str(data), "--output", str(out),
                  "--strategy", strategy])
            contents.append(list(csv.reader(out.open())))
        capsys.readouterr()
        # The streamed sink writes rows in reduce-task order, which is
        # strategy-specific; the *set* of scored pairs must agree (and
        # within one strategy, files are byte-identical across
        # backends — see the backend tests above).
        assert all(rows[0] == ["id1", "id2", "similarity"] for rows in contents)
        sets = [set(map(tuple, rows[1:])) for rows in contents]
        assert len(sets[0]) == len(contents[0]) - 1  # no duplicate rows
        assert sets[0] == sets[1] == sets[2] and sets[0]

    def test_async_backend_same_matches(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        serial_out = tmp_path / "serial.csv"
        async_out = tmp_path / "async.csv"
        assert main(["dedup", "--input", str(data), "--output", str(serial_out)]) == 0
        assert main(["dedup", "--input", str(data), "--output", str(async_out),
                     "--backend", "async", "--workers", "3"]) == 0
        capsys.readouterr()
        assert serial_out.read_text() == async_out.read_text()

    def test_distributed_backend_same_matches(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        serial_out = tmp_path / "serial.csv"
        distributed_out = tmp_path / "distributed.csv"
        assert main(["dedup", "--input", str(data), "--output", str(serial_out)]) == 0
        assert main(["dedup", "--input", str(data), "--output", str(distributed_out),
                     "--backend", "distributed", "--workers", "2",
                     "--task-timeout", "60"]) == 0
        capsys.readouterr()
        assert serial_out.read_text() == distributed_out.read_text()

    def test_task_timeout_requires_distributed_backend(self, tmp_path):
        data = self._dataset(tmp_path)
        with pytest.raises(SystemExit, match="--task-timeout requires"):
            main(["dedup", "--input", str(data),
                  "--output", str(tmp_path / "m.csv"), "--task-timeout", "5"])

    def test_workers_requires_a_pooled_backend(self, tmp_path):
        data = self._dataset(tmp_path)
        with pytest.raises(SystemExit, match="--workers requires"):
            main(["dedup", "--input", str(data),
                  "--output", str(tmp_path / "m.csv"), "--workers", "2"])

    def test_max_worker_respawns_requires_distributed_backend(self, tmp_path):
        data = self._dataset(tmp_path)
        with pytest.raises(SystemExit, match="--max-worker-respawns requires"):
            main(["dedup", "--input", str(data),
                  "--output", str(tmp_path / "m.csv"),
                  "--max-worker-respawns", "2"])

    def test_save_result_and_progress(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        out = tmp_path / "m.csv"
        result_path = tmp_path / "result.json"
        assert main(["dedup", "--input", str(data), "--output", str(out),
                     "--save-result", str(result_path), "--progress"]) == 0
        captured = capsys.readouterr()
        assert "saved result to" in captured.out
        # --progress narrates task lifecycle on stderr.
        assert "[matching]" in captured.err and "reduce task" in captured.err
        from repro.engine import PipelineResult

        loaded = PipelineResult.load(result_path)
        rows = list(csv.reader(out.open()))
        assert len(loaded.matches) == len(rows) - 1

    def test_save_result_rejected_with_missing_keys(self, tmp_path, capsys):
        data = tmp_path / "in.csv"
        data.write_text("_id,_source,title\na,R,alpha\nb,R,\n")
        code = main(["dedup", "--input", str(data), "--output",
                     str(tmp_path / "m.csv"), "--allow-missing-keys",
                     "--save-result", str(tmp_path / "r.json")])
        assert code == 2
        assert "--allow-missing-keys" in capsys.readouterr().err

    def test_missing_keys_flag(self, tmp_path, capsys):
        data = tmp_path / "in.csv"
        data.write_text(
            "_id,_source,title\n"
            "a,R,alpha one\n"
            "b,R,alpha one x\n"
            "c,R,\n"
        )
        out = tmp_path / "m.csv"
        assert main(["dedup", "--input", str(data), "--output", str(out),
                     "--allow-missing-keys", "--threshold", "0.5"]) == 0
        capsys.readouterr()
        assert out.exists()


class TestLink:
    def test_link(self, tmp_path, capsys):
        r_csv, s_csv = tmp_path / "r.csv", tmp_path / "s.csv"
        main(["generate", "--num", "200", "--seed", "1", "--output", str(r_csv)])
        main(["generate", "--num", "200", "--seed", "1", "--output", str(s_csv)])
        out = tmp_path / "links.csv"
        assert main(["link", "--input-r", str(r_csv), "--input-s", str(s_csv),
                     "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "links" in captured
        rows = list(csv.reader(out.open()))
        # Identical seeds -> every record links to its own copy.
        assert len(rows) - 1 >= 200

    def test_link_rejects_basic(self, tmp_path, capsys):
        r_csv = tmp_path / "r.csv"
        main(["generate", "--num", "10", "--output", str(r_csv)])
        out = tmp_path / "links.csv"
        code = main(["link", "--input-r", str(r_csv), "--input-s", str(r_csv),
                     "--output", str(out), "--strategy", "basic"])
        assert code == 2


class TestSimulate:
    def test_ds1_table(self, capsys):
        assert main(["simulate", "--dataset", "ds1", "--nodes", "5"]) == 0
        out = capsys.readouterr().out
        assert "blocksplit" in out and "pairrange" in out and "basic" in out
        assert "simulated time" in out

    def test_explicit_m_r(self, capsys):
        assert main(["simulate", "--dataset", "ds1", "--nodes", "2",
                     "--map-tasks", "4", "--reduce-tasks", "16",
                     "--strategies", "pairrange"]) == 0
        out = capsys.readouterr().out
        assert "m=4, r=16" in out

    def test_from_persisted_result(self, tmp_path, capsys):
        data = tmp_path / "p.csv"
        main(["generate", "--kind", "products", "--num", "300",
              "--seed", "4", "--output", str(data)])
        result_path = tmp_path / "result.json"
        main(["dedup", "--input", str(data), "--output", str(tmp_path / "m.csv"),
              "--save-result", str(result_path), "--map-tasks", "3"])
        capsys.readouterr()
        assert main(["simulate", "--from-result", str(result_path),
                     "--nodes", "4", "--reduce-tasks", "12"]) == 0
        out = capsys.readouterr().out
        # m comes from the persisted BDM, not from the cluster shape.
        assert "m=3, r=12" in out
        assert "blocksplit" in out and "pairrange" in out

    def test_from_result_missing_file_is_clean_error(self, tmp_path, capsys):
        code = main(["simulate", "--from-result", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no such result file" in capsys.readouterr().err

    def test_from_result_rejects_two_source_result(self, tmp_path, capsys):
        data = tmp_path / "p.csv"
        main(["generate", "--num", "60", "--seed", "5", "--output", str(data)])
        result_path = tmp_path / "link-result.json"
        main(["link", "--input-r", str(data), "--input-s", str(data),
              "--output", str(tmp_path / "l.csv"),
              "--save-result", str(result_path)])
        capsys.readouterr()
        code = main(["simulate", "--from-result", str(result_path)])
        assert code == 2
        assert "cannot replan" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestRecommend:
    def test_recommend_on_skewed_products(self, tmp_path, capsys):
        data = tmp_path / "p.csv"
        main(["generate", "--kind", "products", "--num", "500",
              "--seed", "2", "--output", str(data)])
        assert main(["recommend", "--input", str(data)]) == 0
        out = capsys.readouterr().out
        assert "recommended strategy:" in out
        assert "gini_coefficient" in out

    def test_sorted_flag_flips_to_pairrange(self, tmp_path, capsys):
        data = tmp_path / "p.csv"
        main(["generate", "--kind", "products", "--num", "500",
              "--seed", "2", "--output", str(data)])
        main(["recommend", "--input", str(data), "--sorted-input"])
        out = capsys.readouterr().out
        assert "recommended strategy: pairrange" in out


class TestPack:
    def _dataset(self, tmp_path, num="300"):
        data = tmp_path / "in.csv"
        main(["generate", "--kind", "products", "--num", num,
              "--seed", "7", "--output", str(data)])
        return data

    def test_pack_roundtrip(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        cols = tmp_path / "cols"
        assert main(["pack", "--input", str(data), "--out", str(cols),
                     "--shards", "3"]) == 0
        assert "packed 300 entities into 3 columnar shard(s)" in (
            capsys.readouterr().out
        )
        from repro.io import ColumnarShardSource, CsvShardSource

        via_cols = list(ColumnarShardSource(cols).iter_records())
        via_csv = list(CsvShardSource(data, num_shards=3).iter_records())
        assert via_cols == via_csv

    def test_pack_refuses_overwrite(self, tmp_path, capsys):
        data = self._dataset(tmp_path)
        cols = tmp_path / "cols"
        assert main(["pack", "--input", str(data), "--out", str(cols)]) == 0
        capsys.readouterr()
        assert main(["pack", "--input", str(data), "--out", str(cols)]) == 2
        assert "already holds a columnar dataset" in capsys.readouterr().err

    def test_pack_missing_input(self, tmp_path, capsys):
        code = main(["pack", "--input", str(tmp_path / "nope.csv"),
                     "--out", str(tmp_path / "cols")])
        assert code == 2
        assert "repro-er pack: error:" in capsys.readouterr().err

    def test_pack_rejects_nonpositive_shards(self, tmp_path):
        data = self._dataset(tmp_path)
        with pytest.raises(SystemExit):
            main(["pack", "--input", str(data), "--out",
                  str(tmp_path / "cols"), "--shards", "0"])


class TestColumnarInput:
    def _packed(self, tmp_path, num="400"):
        data = tmp_path / "in.csv"
        main(["generate", "--kind", "products", "--num", num,
              "--seed", "9", "--output", str(data)])
        cols = tmp_path / "cols"
        main(["pack", "--input", str(data), "--out", str(cols),
              "--shards", "3"])
        return data, cols

    def test_dedup_columnar_identical_to_csv_shards(self, tmp_path, capsys):
        """Same shard count ⇒ byte-identical match files."""
        data, cols = self._packed(tmp_path)
        out_cols = tmp_path / "m-cols.csv"
        out_csv = tmp_path / "m-csv.csv"
        assert main(["dedup", "--input", str(cols), "--input-format",
                     "columnar", "--output", str(out_cols)]) == 0
        assert main(["dedup", "--input", str(data), "--input-format",
                     "csv-shards", "--shards", "3",
                     "--output", str(out_csv)]) == 0
        captured = capsys.readouterr()
        assert "columnar shards" in captured.out
        assert out_cols.read_text() == out_csv.read_text()

    def test_dedup_columnar_rejects_shards_flag(self, tmp_path, capsys):
        _, cols = self._packed(tmp_path)
        with pytest.raises(SystemExit, match="--shards requires"):
            main(["dedup", "--input", str(cols), "--input-format",
                  "columnar", "--shards", "4",
                  "--output", str(tmp_path / "m.csv")])

    def test_dedup_columnar_rejects_non_dataset(self, tmp_path):
        with pytest.raises(SystemExit, match="not a columnar dataset"):
            main(["dedup", "--input", str(tmp_path), "--input-format",
                  "columnar", "--output", str(tmp_path / "m.csv")])

    def test_link_columnar(self, tmp_path, capsys):
        data, cols = self._packed(tmp_path, num="200")
        out_cols = tmp_path / "l-cols.csv"
        out_csv = tmp_path / "l-csv.csv"
        assert main(["link", "--input-r", str(cols), "--input-s", str(cols),
                     "--input-format", "columnar",
                     "--output", str(out_cols)]) == 0
        assert main(["link", "--input-r", str(data), "--input-s", str(data),
                     "--output", str(out_csv)]) == 0
        capsys.readouterr()
        assert out_cols.read_text() == out_csv.read_text()


class TestBatchKernelFlag:
    def test_no_batch_kernel_identical_output(self, tmp_path, capsys):
        data = tmp_path / "in.csv"
        main(["generate", "--kind", "products", "--num", "400",
              "--seed", "11", "--output", str(data)])
        batched = tmp_path / "m-batched.csv"
        scalar = tmp_path / "m-scalar.csv"
        for strategy in ("basic", "blocksplit", "pairrange"):
            assert main(["dedup", "--input", str(data), "--strategy",
                         strategy, "--output", str(batched)]) == 0
            assert main(["dedup", "--input", str(data), "--strategy",
                         strategy, "--output", str(scalar),
                         "--no-batch-kernel"]) == 0
            assert batched.read_text() == scalar.read_text()
        capsys.readouterr()
