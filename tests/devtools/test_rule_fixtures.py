"""Every shipped rule has a bad fixture it fires on and a clean twin.

The fixture pair is the rule's executable specification: ``bad/<rule>.py``
must produce at least one finding *of that rule*, and ``good/<rule>.py``
— the same scenario written correctly — must lint completely clean
(against **all** rules, so the "fixed" version is genuinely fixed).
"""

from pathlib import Path

import pytest

from repro.devtools import all_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
RULE_NAMES = [rule.name for rule in all_rules()]


def _fixture(kind: str, rule: str) -> Path:
    return FIXTURES / kind / f"{rule.replace('-', '_')}.py"


def test_every_rule_has_fixture_pair():
    for rule in RULE_NAMES:
        assert _fixture("bad", rule).is_file(), f"missing bad fixture: {rule}"
        assert _fixture("good", rule).is_file(), f"missing good fixture: {rule}"


def test_no_stray_fixtures():
    expected = {f"{rule.replace('-', '_')}.py" for rule in RULE_NAMES}
    for kind in ("bad", "good"):
        present = {path.name for path in (FIXTURES / kind).glob("*.py")}
        assert present == expected


@pytest.mark.parametrize("rule", RULE_NAMES)
def test_bad_fixture_fires(rule):
    report = lint_paths([_fixture("bad", rule)])
    assert not report.errors
    fired = {finding.rule for finding in report.new}
    assert rule in fired, (
        f"bad fixture for {rule} produced {sorted(fired) or 'nothing'}"
    )


@pytest.mark.parametrize("rule", RULE_NAMES)
def test_good_fixture_is_clean(rule):
    report = lint_paths([_fixture("good", rule)])
    assert not report.errors
    assert report.new == [], [finding.render() for finding in report.new]


def test_handle_cancel_race_details():
    """The reintroduced PR 7 race is pinpointed: an unguarded read of
    ``session.jobs`` naming the lock that should have been held."""
    report = lint_paths([_fixture("bad", "unguarded-attribute")])
    (finding,) = [f for f in report.new if f.rule == "unguarded-attribute"]
    assert "session.jobs" in finding.message
    assert "with session.lock" in finding.message


def test_closure_finding_names_captured_variable():
    report = lint_paths([_fixture("bad", "unpicklable-callable")])
    closure = [
        finding
        for finding in report.new
        if finding.rule == "unpicklable-callable"
        and "closing over" in finding.message
    ]
    assert closure, "symtable should name the captured variable"
    assert "threshold" in closure[0].message
