"""Pragma suppression and baseline semantics."""

from pathlib import Path

import pytest

from repro.devtools import Baseline, lint_paths, lint_source, load_baseline
from repro.devtools.baseline import write_baseline

ASSERT_LINE = "assert ready, 'not empty'\n"


def test_trailing_pragma_suppresses_same_line():
    findings = lint_source(
        "assert True  # repro-lint: disable=no-runtime-assert\n"
    )
    assert findings == []


def test_standalone_pragma_covers_next_line():
    findings = lint_source(
        "# repro-lint: disable=no-runtime-assert\n" + ASSERT_LINE
    )
    assert findings == []


def test_pragma_allows_justification_prose():
    findings = lint_source(
        "assert True  # repro-lint: disable=no-runtime-assert -- why not\n"
    )
    assert findings == []


def test_pragma_only_suppresses_named_rules():
    findings = lint_source(
        "assert True  # repro-lint: disable=silent-except\n"
    )
    assert [finding.rule for finding in findings] == ["no-runtime-assert"]


def test_disable_file_pragma():
    findings = lint_source(
        "# repro-lint: disable-file=no-runtime-assert\n"
        + ASSERT_LINE
        + ASSERT_LINE
    )
    assert findings == []


def test_pragma_does_not_leak_to_later_lines():
    findings = lint_source(
        "# repro-lint: disable=no-runtime-assert\n"
        + ASSERT_LINE
        + ASSERT_LINE  # line 3: not covered
    )
    assert [finding.line for finding in findings] == [3]


def _lint_with_baseline(path: Path, baseline_path: Path):
    return lint_paths([path], baseline=load_baseline(baseline_path))


def test_baseline_absorbs_and_survives_line_drift(tmp_path):
    source = tmp_path / "module.py"
    source.write_text("def f(ready):\n    " + ASSERT_LINE)
    baseline_path = tmp_path / "baseline.txt"

    report = lint_paths([source])
    assert len(report.new) == 1
    write_baseline(
        baseline_path,
        [(report.new[0], ASSERT_LINE)],
    )

    # Absorbed…
    report = _lint_with_baseline(source, baseline_path)
    assert report.new == [] and len(report.baselined) == 1

    # …and still absorbed after unrelated lines shift the finding down.
    source.write_text("# a new comment\n\ndef f(ready):\n    " + ASSERT_LINE)
    report = _lint_with_baseline(source, baseline_path)
    assert report.new == [] and len(report.baselined) == 1


def test_baseline_is_a_multiset(tmp_path):
    source = tmp_path / "module.py"
    source.write_text(
        "def f(ready):\n    " + ASSERT_LINE + "    " + ASSERT_LINE
    )
    report = lint_paths([source])
    assert len(report.new) == 2

    baseline_path = tmp_path / "baseline.txt"
    write_baseline(baseline_path, [(report.new[0], ASSERT_LINE)])

    # One identical entry absorbs exactly one of the two findings.
    report = _lint_with_baseline(source, baseline_path)
    assert len(report.new) == 1 and len(report.baselined) == 1


def test_baseline_does_not_match_other_rules():
    baseline = Baseline([("silent-except", "module.py", "assert True")])
    finding_like = lint_source("assert True\n")[0]
    assert not baseline.match(finding_like, "assert True")


def test_missing_baseline_is_empty(tmp_path):
    assert len(load_baseline(tmp_path / "nope.txt")) == 0


def test_malformed_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.txt"
    bad.write_text("only-one-field\n")
    with pytest.raises(ValueError, match="malformed baseline entry"):
        load_baseline(bad)


def test_wire_root_marker_extends_reachability():
    source = (
        "import threading\n"
        "\n"
        "class Hidden:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
    )
    # Unmarked: the class is not wire-reachable, nothing fires.
    assert lint_source(source, rules=["unpicklable-attribute"]) == []
    marked = source.replace("class Hidden:", "class Hidden:  # repro-lint: wire-root")
    findings = lint_source(marked, rules=["unpicklable-attribute"])
    assert [finding.rule for finding in findings] == ["unpicklable-attribute"]
