"""The linter's own acceptance gates, run against the real tree.

* ``src/repro`` lints clean against the checked-in baseline — the same
  invocation CI runs;
* reintroducing the PR 7 ``_handle_cancel`` race into the *actual*
  ``serve/server.py`` source is re-detected by the lock-discipline
  checker (the regression the suite exists to prevent).
"""

from pathlib import Path

from repro.devtools import lint_paths, lint_source, load_baseline

REPO = Path(__file__).resolve().parents[2]
SERVER = REPO / "src" / "repro" / "serve" / "server.py"


def test_src_lints_clean_against_checked_in_baseline():
    report = lint_paths(
        [REPO / "src" / "repro"],
        baseline=load_baseline(REPO / "lint-baseline.txt"),
        root=REPO,
    )
    assert not report.errors, report.errors
    assert report.new == [], "\n".join(f.render() for f in report.new)
    assert len(report.files) > 80  # the whole package was scanned


def test_server_source_has_no_unguarded_access():
    findings = lint_source(
        SERVER.read_text(encoding="utf-8"),
        filename="server.py",
        rules=["unguarded-attribute"],
    )
    assert findings == [], [finding.render() for finding in findings]


def test_reintroduced_handle_cancel_race_is_detected():
    source = SERVER.read_text(encoding="utf-8")
    guarded = (
        "        with session.lock:\n"
        "            job = session.jobs.get(job_id)\n"
    )
    assert guarded in source, "expected the PR 7 fix in _handle_cancel"
    racy = source.replace(
        guarded, "        job = session.jobs.get(job_id)\n", 1
    )
    assert racy != source
    findings = lint_source(
        racy, filename="server.py", rules=["unguarded-attribute"]
    )
    assert any(
        "session.jobs" in finding.message
        and "with session.lock" in finding.message
        for finding in findings
    ), [finding.render() for finding in findings]


def test_worker_task_registry_is_whitelisted():
    worker = REPO / "src" / "repro" / "worker.py"
    findings = lint_source(
        worker.read_text(encoding="utf-8"),
        filename="worker.py",
        rules=["task-whitelist"],
    )
    assert findings == []
    # Widening the registry is caught.
    widened = worker.read_text(encoding="utf-8").replace(
        '"reduce": execute_reduce_task,',
        '"reduce": execute_reduce_task,\n    "shell": print,',
        1,
    )
    findings = lint_source(widened, filename="worker.py", rules=["task-whitelist"])
    assert [finding.rule for finding in findings] == ["task-whitelist"]
