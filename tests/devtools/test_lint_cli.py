"""The lint CLI: exit codes, --json schema stability, baseline workflow."""

import json
from pathlib import Path

from repro.cli import main as cli_main
from repro.devtools.lint import BASELINE_NAME, JSON_SCHEMA_VERSION, main

CLEAN = "def f(x):\n    return x\n"
DIRTY = "def f(ready):\n    assert ready\n"


def test_exit_zero_on_clean_file(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert main([str(target)]) == 0


def test_exit_one_on_findings(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert main([str(target)]) == 1
    out = capsys.readouterr().out
    assert "no-runtime-assert" in out and "dirty.py:2" in out


def test_exit_two_on_unknown_rule(tmp_path, capsys):
    target = tmp_path / "clean.py"
    target.write_text(CLEAN)
    assert main([str(target), "--select", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main([str(tmp_path / "absent.txt")]) == 2


def test_exit_one_on_syntax_error(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    assert main([str(target)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_select_restricts_rules(tmp_path):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert main([str(target), "--select", "silent-except"]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for expected in (
        "set-iteration", "unpicklable-attribute", "unguarded-attribute",
        "unpickle-before-auth", "unclosed-resource", "no-runtime-assert",
    ):
        assert expected in out


def test_json_schema_is_stable(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert main([str(target), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {
        "version", "ok", "files", "counts", "findings", "baselined", "errors",
    }
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["ok"] is False
    assert payload["files"] == 1
    assert set(payload["counts"]) == {"new", "baselined", "suppressed"}
    (finding,) = payload["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["rule"] == "no-runtime-assert"
    assert finding["line"] == 2


def test_write_baseline_roundtrip(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    target = Path("dirty.py")
    target.write_text(DIRTY)
    assert main([str(target)]) == 1
    assert main([str(target), "--write-baseline"]) == 0
    assert Path(BASELINE_NAME).is_file()
    # Grandfathered now; a fresh run gates only on new findings.
    assert main([str(target)]) == 0
    # A *new* violation still fails.
    target.write_text(DIRTY + "\nassert True\n")
    assert main([str(target)]) == 1


def test_repro_er_lint_delegates(tmp_path, capsys):
    target = tmp_path / "dirty.py"
    target.write_text(DIRTY)
    assert cli_main(["lint", str(target)]) == 1
    assert "no-runtime-assert" in capsys.readouterr().out
    assert cli_main(["lint", "--list-rules"]) == 0


def test_lint_listed_in_cli_help(capsys):
    import pytest

    with pytest.raises(SystemExit):
        cli_main(["--help"])
    assert "lint" in capsys.readouterr().out
