"""GOOD: the task registry maps wire names to the two whitelisted units."""


def execute_map_task(job, config, partition):
    return job


def execute_reduce_task(job, config, index, bucket):
    return bucket


TASK_UNITS = {
    "map": execute_map_task,
    "reduce": execute_reduce_task,
}
