"""GOOD: the runtime-only lock is excluded from the pickled state."""

import threading


class PipelineRequest:
    def __init__(self, partitions):
        self.partitions = partitions
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
