"""GOOD: wire-reachable callables are module-level (pickle-by-name)."""


def similarity(a, b):
    return 1.0 if a == b else 0.0


def lowercase_key(record):
    return record.lower()


# repro-lint: wire-root
class ShippedMatcher:
    def __init__(self, threshold):
        self.threshold = threshold
        self.similarity = similarity
        self.key = lowercase_key
