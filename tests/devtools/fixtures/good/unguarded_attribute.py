"""GOOD: guarded state is only touched under its declared lock."""

import threading


class Session:
    def __init__(self):
        self.jobs = {}  # guarded-by: lock
        self.lock = threading.Lock()


class Server:
    def handle_cancel(self, session, job_id):
        with session.lock:
            job = session.jobs.get(job_id)
        if job is not None and job.execution is not None:
            job.execution.cancel()

    def drop(self, session, job_id):  # holds-lock: lock
        session.jobs.pop(job_id, None)
