"""GOOD: runtime invariants raise; they survive python -O."""


def next_task(ready):
    if not ready:
        raise RuntimeError("scheduler invariant: ready queue must not be empty")
    return ready[0]
