"""GOOD: the set is sorted before its order can reach a result."""


def emit_pairs(pairs):
    seen = {pair for pair in pairs}
    out = []
    for pair in sorted(seen):
        out.append(pair)
    return out
