"""GOOD: containers keyed by a stable record identifier."""


def index_records(records):
    return {record.key: record for record in records}
