"""GOOD: blocking happens outside locks (or on the condition itself,
which releases its lock while sleeping)."""

import queue
import threading


class Inbox:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._queue = queue.Queue()
        self._done = False

    def next_message(self):
        message = self._queue.get()
        with self._lock:
            return message

    def wait_done(self):
        with self._cond:
            while not self._done:
                self._cond.wait()
