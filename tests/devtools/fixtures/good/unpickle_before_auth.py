"""GOOD: raw token preamble verified before anything is unpickled."""

import secrets


def accept_worker(conn, token):
    preamble = conn.recv_raw(32)
    if not secrets.compare_digest(preamble, token):
        conn.close()
        raise ValueError("bad token")
    return conn.recv()
