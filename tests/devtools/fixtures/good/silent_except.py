"""GOOD: the handler catches exactly the fault it expects."""


def parse_sizes(lines):
    out = []
    for line in lines:
        try:
            out.append(int(line))
        except ValueError:
            continue
    return out
