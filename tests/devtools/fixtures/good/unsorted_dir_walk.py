"""GOOD: directory listings are sorted before use."""

import os


def discover_shards(root):
    return [name for name in sorted(os.listdir(root)) if name.endswith(".csv")]
