"""GOOD: the caller supplies any timestamp; results derive from inputs."""


def stamp_match(pair, stamp):
    return (pair, stamp)
