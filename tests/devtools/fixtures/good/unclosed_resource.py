"""GOOD: every acquired resource has a visible owner."""

import json
import socket


def load_config(path):
    with open(path) as handle:
        return json.load(handle)


def read_header(path):
    handle = open(path, "rb")
    try:
        return handle.read(16)
    finally:
        handle.close()


def open_listener():
    sock = socket.socket()
    return sock
