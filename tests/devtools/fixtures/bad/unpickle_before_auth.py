"""BAD: a pickled message is read before the token digest check."""

import secrets


def accept_worker(conn, token):
    hello = conn.recv()
    preamble = conn.recv_raw(32)
    if not secrets.compare_digest(preamble, token):
        conn.close()
        raise ValueError("bad token")
    return hello
