"""BAD: a broad catch that swallows every fault without a trace."""


def parse_sizes(lines):
    out = []
    for line in lines:
        try:
            out.append(int(line))
        except Exception:
            pass
    return out
