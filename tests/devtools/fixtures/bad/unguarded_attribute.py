"""BAD: the PR 7 ``_handle_cancel`` race, reintroduced.

``session.jobs`` is declared guarded, but the cancel handler reads it
without taking ``session.lock`` — the exact shape of the race the
serve layer once shipped: a job registering concurrently with a cancel
could be observed half-inserted.
"""

import threading


class Session:
    def __init__(self):
        self.jobs = {}  # guarded-by: lock
        self.lock = threading.Lock()


class Server:
    def handle_cancel(self, session, job_id):
        job = session.jobs.get(job_id)
        if job is not None and job.execution is not None:
            job.execution.cancel()
