"""BAD: a wire-reachable request class smuggles a lock.

The class is named ``PipelineRequest``, so the pickle-safety walk
seeds on it by name even in this loose fixture file.
"""

import threading


class PipelineRequest:
    def __init__(self, partitions):
        self.partitions = partitions
        self._lock = threading.Lock()
