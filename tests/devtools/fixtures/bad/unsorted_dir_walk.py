"""BAD: shard discovery in file-system order."""

import os


def discover_shards(root):
    return [name for name in os.listdir(root) if name.endswith(".csv")]
