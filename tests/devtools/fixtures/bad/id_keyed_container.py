"""BAD: a container keyed by memory addresses."""


def index_records(records):
    return {id(record): record for record in records}
