"""BAD: iterating a set straight into an ordered output."""


def emit_pairs(pairs):
    seen = {pair for pair in pairs}
    out = []
    for pair in seen:
        out.append(pair)
    return out
