"""BAD: a wall-clock value baked into a result record."""

import time


def stamp_match(pair):
    return (pair, time.time())
