"""BAD: a runtime invariant guarded by assert (gone under python -O)."""


def next_task(ready):
    assert ready, "scheduler invariant: ready queue must not be empty"
    return ready[0]
