"""BAD: the classic refcount-dependent file leak."""

import json


def load_config(path):
    return json.load(open(path))
