"""BAD: the worker task registry grew a non-whitelisted entry."""


def execute_map_task(job, config, partition):
    return job


def execute_reduce_task(job, config, index, bucket):
    return bucket


def run_anything(payload):
    return payload()


TASK_UNITS = {
    "map": execute_map_task,
    "reduce": execute_reduce_task,
    "anything": run_anything,
}
