"""BAD: a wire-reachable class captures a closure and a lambda."""


def similarity(a, b):
    return 1.0 if a == b else 0.0


# repro-lint: wire-root
class ShippedMatcher:
    def __init__(self, threshold):
        def matches(a, b):
            return similarity(a, b) >= threshold

        self.matches = matches
        self.key = lambda record: record.lower()
