"""BAD: a timeout-less queue get while holding a lock."""

import queue
import threading


class Inbox:
    def __init__(self):
        self._lock = threading.Lock()
        self._queue = queue.Queue()

    def next_message(self):
        with self._lock:
            return self._queue.get()
