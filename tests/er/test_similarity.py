"""Similarity measures: known values and metric properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.er.similarity import (
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    levenshtein_similarity_bounded,
    ngram_jaccard,
    ngrams,
    numeric_similarity,
    token_jaccard,
    weighted_average,
)

short_text = st.text(alphabet="abcdef ", max_size=12)


class TestLevenshteinDistance:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("book", "back", 2),
            ("a", "b", 1),
        ],
    )
    def test_known_values(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(short_text, short_text)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein_distance(a, b) >= abs(len(a) - len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(short_text, short_text, st.integers(min_value=0, max_value=6))
    def test_bounded_agrees_within_bound(self, a, b, bound):
        exact = levenshtein_distance(a, b)
        bounded = levenshtein_distance(a, b, max_distance=bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded == bound + 1


class TestLevenshteinSimilarity:
    def test_equal_strings(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("", "") == 1.0

    def test_disjoint_strings(self):
        assert levenshtein_similarity("aaa", "bbb") == 0.0

    def test_paper_threshold_example(self):
        # One edit on a ten-char string -> 0.9 >= 0.8 threshold.
        assert levenshtein_similarity("abcdefghij", "abcdefghix") == pytest.approx(0.9)

    @given(short_text, short_text)
    def test_range(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0

    @given(short_text, short_text)
    def test_bounded_matches_exact_above_threshold(self, a, b):
        threshold = 0.8
        exact = levenshtein_similarity(a, b)
        bounded = levenshtein_similarity_bounded(a, b, threshold)
        if exact >= threshold:
            assert bounded == pytest.approx(exact)
        else:
            assert bounded == 0.0


class TestJaro:
    def test_equal(self):
        assert jaro_similarity("same", "same") == 1.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0

    def test_known_value(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_winkler_boosts_common_prefix(self):
        plain = jaro_similarity("martha", "marhta")
        boosted = jaro_winkler_similarity("martha", "marhta")
        assert boosted > plain

    def test_winkler_prefix_weight_validated(self):
        with pytest.raises(ValueError):
            jaro_winkler_similarity("a", "b", prefix_weight=0.5)

    @given(short_text, short_text)
    def test_symmetry_and_range(self, a, b):
        s = jaro_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(jaro_similarity(b, a))


class TestSetSimilarities:
    def test_jaccard_known(self):
        assert jaccard_similarity({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_jaccard_empty_sets_equal(self):
        assert jaccard_similarity([], []) == 1.0

    def test_token_jaccard(self):
        assert token_jaccard("a b c", "b c d") == pytest.approx(0.5)

    def test_ngrams_padded(self):
        grams = ngrams("ab", 3)
        assert grams == ["##a", "#ab", "ab#", "b##"]

    def test_ngrams_unpadded(self):
        assert ngrams("abcd", 3, pad=False) == ["abc", "bcd"]

    def test_ngrams_validation(self):
        with pytest.raises(ValueError):
            ngrams("abc", 0)

    def test_ngram_jaccard_range(self):
        assert 0.0 <= ngram_jaccard("hello", "hallo") <= 1.0


class TestNumericAndCombined:
    def test_numeric_similarity(self):
        assert numeric_similarity(10, 10) == 1.0
        assert numeric_similarity(0, 10, scale=10) == 0.0
        assert numeric_similarity(0, 25, scale=10) == 0.0

    def test_numeric_scale_validated(self):
        with pytest.raises(ValueError):
            numeric_similarity(1, 2, scale=0)

    def test_weighted_average(self):
        assert weighted_average([1.0, 0.0], [1, 3]) == pytest.approx(0.25)

    def test_weighted_average_validation(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [1, 2])
        with pytest.raises(ValueError):
            weighted_average([], [])
        with pytest.raises(ValueError):
            weighted_average([1.0], [0])
