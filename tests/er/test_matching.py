"""Matchers and match results."""

from __future__ import annotations

import pytest

from repro.er.entity import Entity
from repro.er.matching import (
    AlwaysMatcher,
    MatchPair,
    MatchResult,
    RecordingMatcher,
    ThresholdMatcher,
    brute_force_match,
    brute_force_pairs,
)


def entity(eid, title, source="R"):
    return Entity(eid, {"title": title}, source)


class TestMatchPair:
    def test_canonical_order(self):
        a, b = entity("a", "x"), entity("b", "x")
        assert MatchPair.of(a, b, 1.0) == MatchPair.of(b, a, 1.0)

    def test_ids(self):
        pair = MatchPair.of(entity("b", "x"), entity("a", "x"), 0.9)
        assert pair.ids == ("R:a", "R:b")


class TestMatchResult:
    def test_deduplicates(self):
        result = MatchResult()
        result.add(MatchPair("R:a", "R:b", 0.9))
        result.add(MatchPair("R:a", "R:b", 0.95))
        assert len(result) == 1

    def test_contains_unordered(self):
        result = MatchResult([MatchPair("R:a", "R:b", 0.9)])
        assert ("R:b", "R:a") in result
        assert ("R:a", "R:c") not in result

    def test_merge_and_equality(self):
        r1 = MatchResult([MatchPair("R:a", "R:b", 0.9)])
        r2 = MatchResult([MatchPair("R:c", "R:d", 0.8)])
        r1.merge(r2)
        assert r1.pair_ids == {("R:a", "R:b"), ("R:c", "R:d")}

    def test_iteration_sorted(self):
        result = MatchResult(
            [MatchPair("R:c", "R:d", 0.8), MatchPair("R:a", "R:b", 0.9)]
        )
        assert [p.ids for p in result] == [("R:a", "R:b"), ("R:c", "R:d")]


class TestThresholdMatcher:
    def test_paper_configuration_matches_similar_titles(self):
        matcher = ThresholdMatcher()  # title, 0.8, edit distance
        near = matcher.match(entity("a", "panasonic lumix 12"), entity("b", "panasonic lumix 13"))
        assert near is not None
        assert near.similarity >= 0.8

    def test_rejects_dissimilar(self):
        matcher = ThresholdMatcher()
        assert matcher.match(entity("a", "panasonic lumix"), entity("b", "qqqq zzzz")) is None

    def test_counts_comparisons_and_matches(self):
        matcher = ThresholdMatcher()
        matcher.match(entity("a", "same title"), entity("b", "same title"))
        matcher.match(entity("a", "same title"), entity("c", "zzz"))
        assert matcher.comparisons == 2
        assert matcher.matches_found == 1
        matcher.reset_counters()
        assert matcher.comparisons == 0

    def test_custom_similarity_function(self):
        matcher = ThresholdMatcher(similarity_fn=lambda a, b: 1.0, threshold=0.5)
        assert matcher.match(entity("a", "x"), entity("b", "y")) is not None

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            ThresholdMatcher(threshold=1.5)

    def test_missing_attribute_treated_as_empty(self):
        matcher = ThresholdMatcher()
        pair = matcher.match(Entity("a", {}), Entity("b", {}))
        assert pair is not None  # "" vs "" is similarity 1.0


class TestHelpers:
    def test_brute_force_pairs(self):
        entities = [entity(str(i), "t") for i in range(4)]
        assert len(brute_force_pairs(entities)) == 6

    def test_brute_force_match_with_always(self):
        entities = [entity(str(i), "t") for i in range(5)]
        result = brute_force_match(entities, AlwaysMatcher())
        assert len(result) == 10

    def test_recording_matcher_records_canonical_pairs(self):
        matcher = RecordingMatcher()
        matcher.match(entity("b", "x"), entity("a", "y"))
        assert matcher.compared == [("R:a", "R:b")]
        assert matcher.matches_found == 0
