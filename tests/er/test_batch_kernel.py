"""Property tests: the batched pair kernel is byte-identical to the
scalar kernels, on both the numpy and the pure-stdlib path.

`score_pair_batch` must reproduce `levenshtein_similarity_bounded`
score for score on arbitrary unicode batches — including empty strings,
strings past the 64-char Myers limit, duplicated group members, and
thresholds at both edges — and `ThresholdMatcher.match_batch` must
emit exactly the pairs (same order, same counters) the scalar
`match_prepared` loop emits.
"""

from __future__ import annotations

import random

import pytest

import repro.er.batch_kernel as bk
from repro.er.batch_kernel import (
    CrossPairs,
    SpanPairs,
    TrianglePairs,
    active_numpy,
    matching_positions,
    score_pair_batch,
)
from repro.er.entity import Entity
from repro.er.matching import Matcher, ThresholdMatcher
from repro.er.similarity import (
    _myers_distance,
    levenshtein_distance_reference,
    levenshtein_similarity_bounded,
    myers_distance_masks,
    myers_masks,
)

ALPHABET = "abcdeé中文ß😀"
THRESHOLDS = [0.0, 0.3, 0.8, 1.0]


@pytest.fixture(
    params=[
        pytest.param(
            "numpy",
            marks=pytest.mark.skipif(
                active_numpy() is None, reason="numpy not installed"
            ),
        ),
        "stdlib",
    ]
)
def kernel_mode(request, monkeypatch):
    """Run the test body on both kernel paths.

    ``numpy`` also drops the minimum-batch and minimum-lane heuristics
    so small batches exercise the vectorized path all the way into the
    batched Myers recurrence; ``stdlib`` blanks the module's numpy
    handle, the same state a numpy-less interpreter starts in.
    """
    if request.param == "numpy":
        monkeypatch.setattr(bk, "NUMPY_MIN_PAIRS", 0)
        monkeypatch.setattr(bk, "MYERS_MIN_LANES", 0)
    else:
        monkeypatch.setattr(bk, "_numpy", None)
    return request.param


def _random_texts(rng: random.Random, n: int) -> list[str]:
    texts: list[str] = []
    for _ in range(n):
        kind = rng.random()
        if kind < 0.08:
            texts.append("")  # empty: the Myers mask edge case
        elif kind < 0.18 and texts:
            texts.append(rng.choice(texts))  # duplicate group member
        elif kind < 0.28:
            # Past the 64-char Myers limit: the banded path.
            length = rng.randrange(65, 120)
            texts.append("".join(rng.choice(ALPHABET) for _ in range(length)))
        else:
            length = rng.randrange(0, 40)
            texts.append("".join(rng.choice(ALPHABET) for _ in range(length)))
    return texts


class TestPairSpecs:
    """count / iter_pairs / pair_at / index_arrays describe one pair set."""

    def _check(self, spec):
        pairs = list(spec.iter_pairs())
        assert len(pairs) == spec.count
        assert pairs == [spec.pair_at(k) for k in range(spec.count)]
        np = active_numpy()
        if np is not None and spec.count:
            left, right = spec.index_arrays(np)
            assert list(zip(left.tolist(), right.tolist())) == pairs

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 40])
    def test_triangle(self, n):
        spec = TrianglePairs(n)
        assert spec.count == n * (n - 1) // 2
        self._check(spec)
        for i, j in spec.iter_pairs():
            assert 0 <= i < j < n

    @pytest.mark.parametrize("split,total", [(0, 0), (0, 5), (5, 5), (2, 7), (4, 9)])
    def test_cross(self, split, total):
        spec = CrossPairs(split, total)
        assert spec.count == split * (total - split)
        self._check(spec)
        for i, j in spec.iter_pairs():
            assert 0 <= i < split <= j < total

    def test_spans(self):
        spec = SpanPairs([(3, 0, 2), (5, 1, 4), (8, 0, 1)])
        assert spec.count == 2 + 3 + 1
        assert list(spec.iter_pairs()) == [
            (0, 3), (1, 3), (1, 5), (2, 5), (3, 5), (0, 8),
        ]
        self._check(spec)
        self._check(SpanPairs([]))


class TestMyersMasks:
    def test_masks_match_scalar_myers(self):
        rng = random.Random(11)
        for _ in range(300):
            pattern = "".join(
                rng.choice(ALPHABET) for _ in range(rng.randrange(1, 65))
            )
            text = "".join(
                rng.choice(ALPHABET) for _ in range(rng.randrange(0, 120))
            )
            masks = myers_masks(pattern)
            for md in (None, rng.randrange(0, 10)):
                assert myers_distance_masks(masks, text, md) == _myers_distance(
                    pattern, text, md
                )

    def test_masks_are_reusable(self):
        masks = myers_masks("kettle")
        assert myers_distance_masks(masks, "kettle", None) == 0
        assert myers_distance_masks(masks, "settle", None) == 1
        assert myers_distance_masks(
            masks, "cattle", None
        ) == levenshtein_distance_reference("kettle", "cattle")


class TestScorePairBatch:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_oracle(self, kernel_mode, seed):
        rng = random.Random(6000 + seed)
        for _ in range(20):
            texts = _random_texts(rng, rng.randrange(2, 14))
            spec = TrianglePairs(len(texts))
            threshold = rng.choice(THRESHOLDS)
            scores, _hits, _misses = score_pair_batch(texts, spec, threshold)
            for k, (i, j) in enumerate(spec.iter_pairs()):
                expected = levenshtein_similarity_bounded(
                    texts[i], texts[j], threshold
                )
                assert float(scores[k]) == expected, (texts[i], texts[j], threshold)

    @pytest.mark.parametrize("seed", range(2))
    def test_matches_reference_dp(self, kernel_mode, seed):
        """Straight to the classic DP, not just the scalar dispatch."""
        rng = random.Random(7000 + seed)
        texts = _random_texts(rng, 12)
        threshold = 0.8
        spec = TrianglePairs(len(texts))
        scores, _, _ = score_pair_batch(texts, spec, threshold)
        for k, (i, j) in enumerate(spec.iter_pairs()):
            a, b = texts[i], texts[j]
            longest = max(len(a), len(b))
            if longest == 0:
                expected = 1.0
            else:
                distance = levenshtein_distance_reference(a, b)
                similarity = 1.0 - distance / longest
                expected = similarity if similarity >= threshold else 0.0
                if distance > int((1.0 - threshold) * longest):
                    expected = 0.0
            assert float(scores[k]) == expected, (a, b)

    def test_cross_and_span_specs(self, kernel_mode):
        rng = random.Random(42)
        texts = _random_texts(rng, 10)
        for spec in (
            CrossPairs(4, 10),
            SpanPairs([(2, 0, 2), (7, 1, 6), (9, 0, 9)]),
        ):
            scores, _, _ = score_pair_batch(texts, spec, 0.8)
            for k, (i, j) in enumerate(spec.iter_pairs()):
                assert float(scores[k]) == levenshtein_similarity_bounded(
                    texts[i], texts[j], 0.8
                )

    def test_matching_positions(self, kernel_mode):
        texts = ["kettle", "kettle", "kettlex", "other"]
        spec = TrianglePairs(4)
        scores, _, _ = score_pair_batch(texts, spec, 0.8)
        positions = matching_positions(scores, 0.8)
        expected = [
            k
            for k, (i, j) in enumerate(spec.iter_pairs())
            if levenshtein_similarity_bounded(texts[i], texts[j], 0.8) >= 0.8
        ]
        assert positions == expected

    def test_empty_batch(self, kernel_mode):
        scores, hits, misses = score_pair_batch([], TrianglePairs(0), 0.8)
        assert len(scores) == 0 and hits == 0 and misses == 0


def _scalar_oracle(matcher, prepared, spec):
    """The scalar reduce loop: per-pair match_prepared in spec order."""
    out = []
    for i, j in spec.iter_pairs():
        pair = matcher.match_prepared(prepared[i], prepared[j])
        if pair is not None:
            out.append(pair)
    return out


class TestMatchBatchEquivalence:
    def _entities(self, rng, n):
        return [
            Entity(f"e{k}", {"title": text})
            for k, text in enumerate(_random_texts(rng, n))
        ]

    @pytest.mark.parametrize("memoize", [4096, 0])
    @pytest.mark.parametrize("seed", range(3))
    def test_same_pairs_and_counters(self, kernel_mode, memoize, seed):
        rng = random.Random(8000 + seed)
        for spec_factory in (
            lambda n: TrianglePairs(n),
            lambda n: CrossPairs(n // 2, n),
        ):
            entities = self._entities(rng, rng.randrange(4, 12))
            spec = spec_factory(len(entities))
            scalar = ThresholdMatcher("title", 0.8, memoize=memoize)
            batched = ThresholdMatcher("title", 0.8, memoize=memoize)
            ps = [scalar.prepare(e) for e in entities]
            pb = [batched.prepare(e) for e in entities]
            expected = _scalar_oracle(scalar, ps, spec)
            got = batched.match_batch(pb, spec)
            assert [(p.id1, p.id2, p.similarity) for p in got] == [
                (p.id1, p.id2, p.similarity) for p in expected
            ]
            assert batched.comparisons == scalar.comparisons
            assert batched.matches_found == scalar.matches_found
            assert batched.cache_hits == scalar.cache_hits
            assert batched.cache_misses == scalar.cache_misses

    @pytest.mark.parametrize("memoize", [1, 2, 3])
    def test_eviction_pressure_counters_and_cache(self, kernel_mode, memoize):
        """ISSUE 10 regression: a group with more distinct surviving
        pairs than ``memoize`` must advance hit/miss counters *and*
        leave the LRU cache — contents and recency order — exactly as
        the scalar loop does, or later groups diverge."""
        entities = [
            Entity(f"e{k}", {"title": title})
            for k, title in enumerate(
                ["kettle", "kettles", "kettle", "settle", "cattle",
                 "kettle", "kettlex"]
            )
        ]
        spec = TrianglePairs(len(entities))
        scalar = ThresholdMatcher("title", 0.8, memoize=memoize)
        batched = ThresholdMatcher("title", 0.8, memoize=memoize)
        ps = [scalar.prepare(e) for e in entities]
        pb = [batched.prepare(e) for e in entities]
        expected = _scalar_oracle(scalar, ps, spec)
        got = batched.match_batch(pb, spec)
        assert [(p.id1, p.id2, p.similarity) for p in got] == [
            (p.id1, p.id2, p.similarity) for p in expected
        ]
        assert (batched.cache_hits, batched.cache_misses) == (
            scalar.cache_hits,
            scalar.cache_misses,
        )
        assert list(batched._cache.items()) == list(scalar._cache.items())

    @pytest.mark.parametrize("memoize", [1, 2, 3, 4096])
    @pytest.mark.parametrize("seed", range(3))
    def test_eviction_pressure_across_groups(self, kernel_mode, memoize, seed):
        """Residual cache state must keep scalar and batch counters in
        lockstep across a *sequence* of groups sharing one matcher."""
        rng = random.Random(9500 + seed)
        scalar = ThresholdMatcher("title", 0.8, memoize=memoize)
        batched = ThresholdMatcher("title", 0.8, memoize=memoize)
        for _ in range(5):
            entities = self._entities(rng, rng.randrange(3, 9))
            spec = TrianglePairs(len(entities))
            ps = [scalar.prepare(e) for e in entities]
            pb = [batched.prepare(e) for e in entities]
            expected = _scalar_oracle(scalar, ps, spec)
            got = batched.match_batch(pb, spec)
            assert [(p.id1, p.id2, p.similarity) for p in got] == [
                (p.id1, p.id2, p.similarity) for p in expected
            ]
            assert (
                batched.comparisons,
                batched.matches_found,
                batched.cache_hits,
                batched.cache_misses,
            ) == (
                scalar.comparisons,
                scalar.matches_found,
                scalar.cache_hits,
                scalar.cache_misses,
            )
            assert list(batched._cache.items()) == list(scalar._cache.items())

    def test_base_matcher_batches_via_match_prepared(self):
        """Custom matchers get the identity batching: per-pair calls in
        spec order, so overridden similarity()/counters behave exactly
        as under the scalar loop."""

        class EqualTitles(Matcher):
            def similarity(self, a, b):
                return 1.0 if a.get("title") == b.get("title") else 0.0

            def is_match(self, score):
                return score >= 1.0

        entities = [
            Entity("a", {"title": "x"}),
            Entity("b", {"title": "x"}),
            Entity("c", {"title": "y"}),
        ]
        matcher = EqualTitles()
        prepared = [matcher.prepare(e) for e in entities]
        got = matcher.match_batch(prepared, TrianglePairs(3))
        assert [(p.id1, p.id2) for p in got] == [("R:a", "R:b")]
        assert matcher.comparisons == 3

    def test_threshold_matcher_with_similarity_fn_uses_identity_path(self):
        """A custom similarity_fn disables prepared texts; match_batch
        must fall back to the per-pair path, not the kernel."""
        matcher = ThresholdMatcher(
            "title", 0.5, similarity_fn=lambda a, b: 0.75
        )
        entities = [Entity("a", {"title": "p"}), Entity("b", {"title": "q"})]
        prepared = [matcher.prepare(e) for e in entities]
        got = matcher.match_batch(prepared, TrianglePairs(2))
        assert [(p.id1, p.id2, p.similarity) for p in got] == [
            ("R:a", "R:b", 0.75)
        ]
