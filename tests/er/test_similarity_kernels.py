"""Property tests: the fast Levenshtein kernels agree with the reference DP.

`levenshtein_distance` dispatches between Myers' bit-parallel kernel
(shorter side ≤ 64 chars) and the banded DP (both sides longer); both
must be indistinguishable from the classic two-row reference — exact
distances, and identical ``max_distance`` early-exit semantics — on
arbitrary unicode inputs.  ``similarity_at_least`` must agree with the
unbounded similarity compared against the threshold.
"""

from __future__ import annotations

import random

import pytest

from repro.er.batch_kernel import active_numpy
from repro.er.similarity import (
    _banded_distance,
    _myers_distance,
    levenshtein_distance,
    levenshtein_distance_reference,
    levenshtein_similarity,
    levenshtein_similarity_bounded,
    levenshtein_similarity_bounded_reference,
    myers_distance_batch,
    myers_mask_table,
    similarity_at_least,
)

#: Mixes ASCII, accented latin, CJK and an astral-plane emoji, so the
#: kernels are exercised on multi-byte code points and characters
#: outside the Basic Multilingual Plane.
ALPHABET = "abcdeé中文ß😀"

THRESHOLDS = [0.0, 0.25, 0.5, 0.8, 0.9, 1.0]


def _random_pair(rng: random.Random, max_len: int) -> tuple[str, str]:
    a = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(max_len)))
    if rng.random() < 0.3:
        # Mutated copy: realistic near-duplicates, not just random noise.
        chars = list(a)
        for _ in range(rng.randrange(4)):
            if not chars:
                break
            op = rng.randrange(3)
            pos = rng.randrange(len(chars))
            if op == 0:
                chars[pos] = rng.choice(ALPHABET)
            elif op == 1:
                del chars[pos]
            else:
                chars.insert(pos, rng.choice(ALPHABET))
        b = "".join(chars)
    else:
        b = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(max_len)))
    return a, b


class TestKernelsAgreeWithReference:
    @pytest.mark.parametrize("seed", range(4))
    def test_unbounded_exact_short(self, seed):
        rng = random.Random(1000 + seed)
        for _ in range(400):
            a, b = _random_pair(rng, 50)
            assert levenshtein_distance(a, b) == levenshtein_distance_reference(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_unbounded_exact_long(self, seed):
        """Both sides > 64 chars: the banded doubling path."""
        rng = random.Random(2000 + seed)
        for _ in range(60):
            a = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(65, 150)))
            b = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(65, 150)))
            assert levenshtein_distance(a, b) == levenshtein_distance_reference(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_agrees(self, seed):
        """With max_distance both kernels agree on the exact value when
        within the bound and on exceeding it otherwise."""
        rng = random.Random(3000 + seed)
        for _ in range(400):
            a, b = _random_pair(rng, 90)
            md = rng.randrange(0, 15)
            ref = levenshtein_distance_reference(a, b, max_distance=md)
            got = levenshtein_distance(a, b, max_distance=md)
            assert (got > md) == (ref > md), (a, b, md)
            if ref <= md:
                assert got == ref, (a, b, md)

    def test_boundary_lengths(self):
        """Lengths straddling the 64-char word size, the kernel switch."""
        for n in (63, 64, 65):
            for m in (63, 64, 65, 130):
                a = "ab" * (n // 2) + "a" * (n % 2)
                b = "ba" * (m // 2) + "b" * (m % 2)
                assert levenshtein_distance(a, b) == levenshtein_distance_reference(a, b)

    def test_max_distance_edges(self):
        assert levenshtein_distance("abc", "abd", max_distance=0) == 1
        assert levenshtein_distance("abc", "abc", max_distance=0) == 0
        assert levenshtein_distance("", "abc", max_distance=2) == 3
        assert levenshtein_distance("", "abc", max_distance=3) == 3
        # A 70-char gap with a tight bound: pure length filter, no DP.
        assert levenshtein_distance("x" * 80, "x" * 10, max_distance=5) == 6
        # Long strings, bound exactly at the true distance.
        a, b = "y" * 70, "y" * 65 + "z" * 5
        true = levenshtein_distance_reference(a, b)
        assert levenshtein_distance(a, b, max_distance=true) == true
        assert levenshtein_distance(a, b, max_distance=true - 1) == true

    def test_empty_and_trivial(self):
        assert levenshtein_distance("", "") == 0
        assert levenshtein_distance("a", "") == 1
        assert levenshtein_distance("", "a") == 1
        assert levenshtein_distance("😀", "😀") == 0
        assert levenshtein_distance("😀", "e") == 1


class TestKernelInternals:
    def test_myers_is_exact(self):
        rng = random.Random(7)
        for _ in range(300):
            b = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(1, 65)))
            a = "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(0, 120)))
            assert _myers_distance(b, a, None) == levenshtein_distance_reference(a, b)

    def test_banded_within_bound_is_exact(self):
        rng = random.Random(8)
        for _ in range(200):
            la = rng.randrange(1, 90)
            lb = rng.randrange(1, la + 1)
            a = "".join(rng.choice(ALPHABET) for _ in range(la))
            b = "".join(rng.choice(ALPHABET) for _ in range(lb))
            true = levenshtein_distance_reference(a, b)
            bound = max(true, la - lb)
            assert _banded_distance(a, b, bound) == true
            if true > 0 and true - 1 >= la - lb:
                assert _banded_distance(a, b, true - 1) == true  # == bound+1


needs_numpy = pytest.mark.skipif(
    active_numpy() is None, reason="numpy not installed"
)


@needs_numpy
class TestMyersDistanceBatch:
    """Every lane of the vectorized recurrence equals the scalar Myers
    kernel — and through it the reference DP — including the early-exit
    semantics of per-lane ``max_distance`` budgets."""

    def _np(self):
        return active_numpy()

    @pytest.mark.parametrize("seed", range(4))
    def test_lanes_match_scalar_myers(self, seed):
        rng = random.Random(11000 + seed)
        patterns, texts, budgets = [], [], []
        for _ in range(300):
            m = rng.choice([1, 1, 2, 3, 5, 8, 13, 21, 40, 63, 64])
            n = rng.choice([0, 1, 2, 3, 5, 8, 13, 21, 40, 64, 90])
            patterns.append("".join(rng.choice(ALPHABET) for _ in range(m)))
            texts.append("".join(rng.choice(ALPHABET) for _ in range(n)))
            budgets.append(rng.choice([0, 1, 2, 5, 10, 10**6, max(m, n)]))
        got = myers_distance_batch(self._np(), patterns, texts, budgets)
        for k in range(len(patterns)):
            want = _myers_distance(patterns[k], texts[k], budgets[k])
            assert int(got[k]) == want, (patterns[k], texts[k], budgets[k])

    def test_unbounded_lanes_match_reference_dp(self):
        rng = random.Random(12000)
        patterns = [
            "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(1, 65)))
            for _ in range(200)
        ]
        texts = [
            "".join(rng.choice(ALPHABET) for _ in range(rng.randrange(0, 100)))
            for _ in range(200)
        ]
        # A budget ≥ len(text) can never trigger the early exit, so the
        # lane computes the exact distance — the reference contract.
        budgets = [max(len(p), len(t)) for p, t in zip(patterns, texts)]
        got = myers_distance_batch(self._np(), patterns, texts, budgets)
        for k in range(len(patterns)):
            want = levenshtein_distance_reference(patterns[k], texts[k])
            assert int(got[k]) == want

    def test_boundary_pattern_lengths(self):
        """m = 64 exercises the full-width column mask (the shift-by-64
        trap) and the top-bit probe at bit 63."""
        patterns, texts, budgets = [], [], []
        for m in (1, 2, 63, 64):
            for n in (0, 1, 63, 64, 65, 100):
                patterns.append(("ab" * 50)[:m])
                texts.append(("ba" * 60)[:n])
                budgets.append(10**6)
        got = myers_distance_batch(self._np(), patterns, texts, budgets)
        for k in range(len(patterns)):
            want = levenshtein_distance_reference(patterns[k], texts[k])
            assert int(got[k]) == want, (len(patterns[k]), len(texts[k]))

    def test_empty_batch_and_empty_texts(self):
        np = self._np()
        assert myers_distance_batch(np, [], [], []).shape == (0,)
        got = myers_distance_batch(np, ["abc", "é😀"], ["", ""], [5, 5])
        assert got.tolist() == [3, 2]

    def test_max_distance_zero(self):
        got = myers_distance_batch(
            self._np(),
            ["abc", "abc", "abcd"],
            ["abc", "abd", "abc"],
            [0, 0, 0],
        )
        assert int(got[0]) == 0
        assert int(got[1]) > 0
        assert int(got[2]) > 0

    def test_non_bmp_lanes(self):
        """Astral-plane code points must round-trip the utf-32 packing
        and the combined (pattern_id, code) equality table."""
        got = myers_distance_batch(
            self._np(),
            ["😀😀a", "😀", "中文ß"],
            ["😀a", "😀😀", "中文"],
            [10, 10, 10],
        )
        assert got.tolist() == [
            levenshtein_distance_reference("😀😀a", "😀a"),
            levenshtein_distance_reference("😀", "😀😀"),
            levenshtein_distance_reference("中文ß", "中文"),
        ]

    def test_mask_table_matches_scalar_packing(self):
        codes, masks = myers_mask_table("abca")
        assert codes == sorted(codes)
        table = dict(zip(codes, masks))
        assert table[ord("a")] == 0b1001
        assert table[ord("b")] == 0b0010
        assert table[ord("c")] == 0b0100


class TestSimilarityAtLeast:
    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_unbounded_similarity(self, seed):
        rng = random.Random(4000 + seed)
        for _ in range(400):
            a, b = _random_pair(rng, 80)
            t = rng.choice(THRESHOLDS)
            assert similarity_at_least(a, b, t) == (
                levenshtein_similarity(a, b) >= t
            ), (a, b, t)

    def test_edges(self):
        assert similarity_at_least("", "", 1.0)
        assert similarity_at_least("abc", "abc", 1.0)
        assert not similarity_at_least("abc", "abd", 1.0)
        assert similarity_at_least("abc", "xyz", 0.0)
        assert similarity_at_least("", "abc", 0.0)
        assert not similarity_at_least("", "abc", 0.5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            similarity_at_least("a", "b", 1.5)


class TestBoundedSimilarityEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference_path(self, seed):
        """The matcher's scoring function is bit-identical across kernels."""
        rng = random.Random(5000 + seed)
        for _ in range(300):
            a, b = _random_pair(rng, 80)
            t = rng.choice(THRESHOLDS)
            assert levenshtein_similarity_bounded(
                a, b, t
            ) == levenshtein_similarity_bounded_reference(a, b, t), (a, b, t)
