"""Entity model: immutability, identity, bulk construction."""

from __future__ import annotations

import pytest

from repro.er.entity import Entity, make_entities


class TestEntity:
    def test_attribute_access(self):
        e = Entity("p1", {"title": "sony tv", "price": 99})
        assert e["title"] == "sony tv"
        assert e.get("price") == 99
        assert e.get("missing") is None
        assert e.get("missing", 0) == 0

    def test_qualified_id(self):
        assert Entity("p1", {}, "S").qualified_id == "S:p1"
        assert Entity("p1", {}).qualified_id == "R:p1"

    def test_with_source(self):
        e = Entity("p1", {"a": 1})
        s = e.with_source("S")
        assert s.source == "S"
        assert s.entity_id == "p1"
        assert dict(s.attributes) == {"a": 1}
        assert e.source == "R"  # original untouched

    def test_hashable(self):
        e1 = Entity("p1", {"a": 1})
        e2 = Entity("p1", {"a": 1})
        assert e1 == e2
        assert hash(e1) == hash(e2)
        assert len({e1, e2}) == 1

    def test_attributes_are_read_only(self):
        e = Entity("p1", {"a": 1})
        with pytest.raises(TypeError):
            e.attributes["a"] = 2  # type: ignore[index]

    def test_frozen_dataclass(self):
        e = Entity("p1", {})
        with pytest.raises(AttributeError):
            e.entity_id = "p2"  # type: ignore[misc]

    def test_source_attribute_order_irrelevant_for_hash(self):
        e1 = Entity("p1", {"a": 1, "b": 2})
        e2 = Entity("p1", {"b": 2, "a": 1})
        assert e1 == e2
        assert hash(e1) == hash(e2)


class TestMakeEntities:
    def test_generated_ids(self):
        entities = make_entities([{"t": 1}, {"t": 2}])
        assert [e.entity_id for e in entities] == ["e0", "e1"]

    def test_id_attribute(self):
        entities = make_entities([{"sku": 7, "t": 1}], id_attribute="sku")
        assert entities[0].entity_id == "7"

    def test_explicit_tuples(self):
        entities = make_entities([("x1", {"t": 1})])
        assert entities[0].entity_id == "x1"

    def test_source_applied(self):
        entities = make_entities([{"t": 1}], source="S")
        assert entities[0].source == "S"
