"""Multi-attribute matchers."""

from __future__ import annotations

import pytest

from repro.er.comparators import (
    AttributeRule,
    ConjunctiveMatcher,
    WeightedMatcher,
    exact_rule,
    numeric_rule,
    string_rule,
)
from repro.er.entity import Entity


def product(eid, title, price=None, category=None):
    return Entity(eid, {"title": title, "price": price, "category": category})


class TestAttributeRule:
    def test_string_rule(self):
        rule = string_rule("title")
        assert rule.score(product("a", "same"), product("b", "same")) == 1.0
        assert rule.score(product("a", "aaa"), product("b", "bbb")) == 0.0

    def test_numeric_rule(self):
        rule = numeric_rule("price", scale=100)
        assert rule.score(product("a", "t", 50), product("b", "t", 100)) == pytest.approx(0.5)

    def test_exact_rule(self):
        rule = exact_rule("category")
        assert rule.score(product("a", "t", category="tv"), product("b", "t", category="tv")) == 1.0
        assert rule.score(product("a", "t", category="tv"), product("b", "t", category="hifi")) == 0.0

    def test_missing_score(self):
        rule = AttributeRule("price", lambda a, b: 1.0, missing_score=0.5)
        assert rule.score(product("a", "t"), product("b", "t", 10)) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            AttributeRule("x", lambda a, b: 1.0, weight=0)
        with pytest.raises(ValueError):
            AttributeRule("x", lambda a, b: 1.0, missing_score=2.0)


class TestWeightedMatcher:
    def test_weighted_combination(self):
        matcher = WeightedMatcher(
            [string_rule("title", weight=3.0), numeric_rule("price", scale=100, weight=1.0)],
            threshold=0.7,
        )
        e1 = product("a", "sony camera", 100)
        e2 = product("b", "sony camera", 180)
        # title 1.0 * 3 + price 0.2 * 1 => 3.2 / 4 = 0.8.
        assert matcher.similarity(e1, e2) == pytest.approx(0.8)
        assert matcher.match(e1, e2) is not None

    def test_counts(self):
        matcher = WeightedMatcher([string_rule("title")], threshold=0.9)
        matcher.match(product("a", "x"), product("b", "y"))
        assert matcher.comparisons == 1
        assert matcher.matches_found == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedMatcher([])
        with pytest.raises(ValueError):
            WeightedMatcher([string_rule("t")], threshold=1.5)

    def test_in_workflow(self):
        from repro.core.workflow import ERWorkflow
        from repro.er.blocking import PrefixBlocking

        entities = [
            product("a", "sony camera kit", 100),
            product("b", "sony camera kit", 105),
            product("c", "sony camcorder pro", 900),
        ]
        matcher = WeightedMatcher(
            [string_rule("title", 2.0), numeric_rule("price", scale=200)],
            threshold=0.85,
        )
        workflow = ERWorkflow(
            "blocksplit", PrefixBlocking("title"), matcher,
            num_map_tasks=1, num_reduce_tasks=2,
        )
        result = workflow.run(entities)
        assert result.matches.pair_ids == {("R:a", "R:b")}


class TestConjunctiveMatcher:
    def test_all_rules_must_pass(self):
        matcher = ConjunctiveMatcher(
            [string_rule("title"), exact_rule("category")],
            default_threshold=0.8,
            thresholds={"category": 1.0},
        )
        same = matcher.match(
            product("a", "sony tv", category="tv"),
            product("b", "sony tv", category="tv"),
        )
        assert same is not None
        category_differs = matcher.match(
            product("a", "sony tv", category="tv"),
            product("b", "sony tv", category="hifi"),
        )
        assert category_differs is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ConjunctiveMatcher([])
