"""Blocking functions: prefix, attribute, constant, composite, multi-pass."""

from __future__ import annotations

import pytest

from repro.er.blocking import (
    CONSTANT_BLOCK_KEY,
    AttributeBlocking,
    CallableBlocking,
    CompositeBlocking,
    ConstantBlocking,
    MultiPassBlocking,
    PrefixBlocking,
    normalize_string,
)
from repro.er.entity import Entity


def product(title, **extra):
    return Entity("e", {"title": title, **extra})


class TestNormalize:
    def test_lowercase_and_whitespace(self):
        assert normalize_string("  Sony   VAIO ") == "sony vaio"

    def test_accent_stripping(self):
        assert normalize_string("Köpcke était") == "kopcke etait"


class TestPrefixBlocking:
    def test_first_three_letters(self):
        # The paper's default blocking key for both datasets.
        blocking = PrefixBlocking("title", 3)
        assert blocking.key_for(product("Panasonic Lumix")) == "pan"

    def test_shorter_value_keeps_full_string(self):
        assert PrefixBlocking("title", 3).key_for(product("tv")) == "tv"

    def test_missing_attribute_is_none(self):
        assert PrefixBlocking("title").key_for(Entity("e", {})) is None

    def test_empty_value_is_none(self):
        assert PrefixBlocking("title").key_for(product("   ")) is None

    def test_case_insensitive(self):
        blocking = PrefixBlocking("title")
        assert blocking.key_for(product("SONY tv")) == blocking.key_for(product("sony TV"))

    def test_length_validated(self):
        with pytest.raises(ValueError):
            PrefixBlocking("title", 0)

    def test_partition_entities(self):
        blocking = PrefixBlocking("title")
        blocks = blocking.partition_entities(
            [product("sony a"), product("sony b"), product("canon c")]
        )
        assert {k: len(v) for k, v in blocks.items()} == {"son": 2, "can": 1}


class TestOtherBlocking:
    def test_attribute_blocking(self):
        blocking = AttributeBlocking("manufacturer")
        assert blocking.key_for(product("x", manufacturer="Sony Corp")) == "sony corp"

    def test_attribute_blocking_unnormalized(self):
        blocking = AttributeBlocking("manufacturer", normalize=False)
        assert blocking.key_for(product("x", manufacturer="Sony Corp")) == "Sony Corp"

    def test_constant_blocking(self):
        blocking = ConstantBlocking()
        assert blocking.key_for(product("anything")) == CONSTANT_BLOCK_KEY

    def test_callable_blocking(self):
        blocking = CallableBlocking(lambda e: e.get("title", "")[:1])
        assert blocking.key_for(product("xyz")) == "x"

    def test_composite_blocking(self):
        blocking = CompositeBlocking(
            [AttributeBlocking("manufacturer"), PrefixBlocking("title", 1)]
        )
        key = blocking.key_for(product("alpha", manufacturer="sony"))
        assert key == ("sony", "a")

    def test_composite_none_propagates(self):
        blocking = CompositeBlocking([AttributeBlocking("missing")])
        assert blocking.key_for(product("alpha")) is None

    def test_composite_requires_parts(self):
        with pytest.raises(ValueError):
            CompositeBlocking([])


class TestMultiPass:
    def test_multiple_keys_tagged_by_pass(self):
        multi = MultiPassBlocking(
            [PrefixBlocking("title", 3), AttributeBlocking("manufacturer")]
        )
        keys = multi.keys_for(product("alpha beta", manufacturer="sony"))
        assert keys == [(0, "alp"), (1, "sony")]

    def test_missing_pass_skipped(self):
        multi = MultiPassBlocking(
            [PrefixBlocking("title", 3), AttributeBlocking("missing")]
        )
        assert multi.keys_for(product("alpha")) == [(0, "alp")]

    def test_requires_passes(self):
        with pytest.raises(ValueError):
            MultiPassBlocking([])
