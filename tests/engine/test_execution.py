"""The execution-handle API: submit → observe → stream → cancel.

The load-bearing guarantee is equivalence: for every strategy ×
executing backend × with/without a memory budget, ``submit().result()``
is byte-identical to ``run()``, and the streamed ``iter_matches()``
sequence is exactly the matching job's reduce output (ids *and*
scores), in deterministic task order.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.datasets.generators import generate_products
from repro.engine import AsyncBackend, AsyncRuntime, ERPipeline, PipelineCancelled
from repro.er.blocking import PrefixBlocking
from repro.er.matching import AlwaysMatcher, Matcher, ThresholdMatcher
from repro.mapreduce.events import EventKind

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
DUAL_STRATEGIES = ["blocksplit", "pairrange"]
EXECUTING_BACKENDS = {
    "serial": ("serial", {}),
    "parallel": ("parallel", {"max_workers": 3, "executor": "thread"}),
    "async": ("async", {"max_concurrency": 3}),
}
BUDGETS = [None, 24]


def _pipeline(strategy, backend="serial", *, memory_budget=None, **backend_options):
    name, defaults = EXECUTING_BACKENDS.get(backend, (backend, {}))
    options = {**defaults, **backend_options}
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=5,
        memory_budget=memory_budget,
    ).with_backend(name, **options)


def _match_tuples(matches):
    return [(pair.id1, pair.id2, pair.similarity) for pair in matches]


def _job2_output_tuples(result):
    return _match_tuples(record.value for record in result.job2.output)


def _fingerprint(result):
    return (
        result.strategy,
        _match_tuples(result.matches),
        result.reduce_comparisons(),
        result.job2.counters.as_dict(),
        None if result.job1 is None else result.job1.counters.as_dict(),
        tuple(task.counters.as_dict() for task in result.job2.reduce_tasks),
    )


class TestRunSubmitEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", list(EXECUTING_BACKENDS))
    @pytest.mark.parametrize("memory_budget", BUDGETS)
    def test_submit_result_equals_run(self, strategy, backend, memory_budget):
        entities = generate_products(180, seed=21)
        ran = _pipeline(strategy, backend, memory_budget=memory_budget).run(entities)
        execution = _pipeline(
            strategy, backend, memory_budget=memory_budget
        ).submit(entities)
        streamed = list(execution.iter_matches())
        submitted = execution.result()
        assert _fingerprint(submitted) == _fingerprint(ran)
        # The stream is exactly the matching job's reduce output — ids,
        # scores, and order (reduce-task order, emission order within).
        assert _match_tuples(streamed) == _job2_output_tuples(submitted)
        assert _match_tuples(streamed) == _job2_output_tuples(ran)
        assert len(ran.matches) > 0

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    @pytest.mark.parametrize("backend", list(EXECUTING_BACKENDS))
    def test_two_source_submit_equals_run(self, strategy, backend):
        r = generate_products(90, seed=22)
        s = generate_products(90, seed=23)
        ran = _pipeline(strategy, backend).run(r, s)
        execution = _pipeline(strategy, backend).submit(r, s)
        streamed = list(execution.iter_matches())
        assert _fingerprint(execution.result()) == _fingerprint(ran)
        assert _match_tuples(streamed) == _job2_output_tuples(ran)

    def test_iter_matches_replays_after_completion(self):
        entities = generate_products(150, seed=24)
        execution = _pipeline("blocksplit").submit(entities)
        execution.result()
        first = list(execution.iter_matches())
        second = list(execution.iter_matches())
        assert first == second and len(first) > 0

    def test_planned_backend_streams_nothing(self):
        entities = generate_products(150, seed=25)
        execution = _pipeline("pairrange", "planned").submit(entities)
        assert list(execution.iter_matches()) == []
        result = execution.result()
        assert result.matches is None and result.plan is not None
        assert execution.state == "succeeded"


class TestProgressAndEvents:
    def test_progress_snapshot_after_completion(self):
        entities = generate_products(180, seed=26)
        execution = _pipeline("blocksplit").submit(entities)
        result = execution.result()
        progress = execution.progress()
        assert progress.state == "succeeded"
        assert [stage.stage for stage in progress.stages] == ["bdm", "matching"]
        for stage in progress.stages:
            assert stage.finished
            assert stage.map_tasks_done == stage.map_tasks_total == 3
            assert stage.reduce_tasks_done == stage.reduce_tasks_total == 5
        assert progress.comparisons == result.total_comparisons()
        assert progress.matches == len(result.matches)
        assert progress.tasks_done == progress.tasks_total == 16
        assert progress.current_stage == "matching"

    def test_basic_strategy_has_single_stage(self):
        execution = _pipeline("basic").submit(generate_products(120, seed=27))
        execution.result()
        assert [s.stage for s in execution.progress().stages] == ["matching"]

    def test_event_stream_is_deterministic(self):
        entities = generate_products(150, seed=28)

        def trace(pipeline):
            events = []
            pipeline.submit(
                entities,
                on_event=lambda e: events.append(
                    (e.kind, e.stage, e.job, e.phase, e.task_index)
                ),
            ).result()
            return events

        serial = trace(_pipeline("pairrange"))
        again = trace(_pipeline("pairrange"))
        pooled = trace(_pipeline("pairrange", "parallel"))
        # Same backend → identical full event stream.
        assert serial == again
        # Across backends the started/finished *interleaving* may differ
        # (pools submit ahead), but each kind's own order is pinned:
        # started in submission order, finished in task-index order.
        for kind in (EventKind.TASK_STARTED, EventKind.TASK_FINISHED):
            assert [e for e in pooled if e[0] == kind] == [
                e for e in serial if e[0] == kind
            ]
        kinds = {e[0] for e in serial}
        assert kinds == {
            EventKind.JOB_STARTED,
            EventKind.JOB_FINISHED,
            EventKind.PHASE_STARTED,
            EventKind.PHASE_FINISHED,
            EventKind.TASK_STARTED,
            EventKind.TASK_FINISHED,
        }
        reduce_finishes = [
            e for e in serial
            if e[0] == EventKind.TASK_FINISHED and e[3] == "reduce"
        ]
        # 5 reduce tasks per job, two jobs, in task-index order per job.
        assert [e[4] for e in reduce_finishes] == [0, 1, 2, 3, 4] * 2

    def test_reduce_events_carry_comparison_counts(self):
        entities = generate_products(180, seed=29)
        per_task = []

        def on_event(event):
            if (
                event.kind == EventKind.TASK_FINISHED
                and event.phase == "reduce"
                and event.stage == "matching"
            ):
                per_task.append(event.data["comparisons"])

        result = (
            _pipeline("blocksplit").submit(entities, on_event=on_event).result()
        )
        assert per_task == result.reduce_comparisons()


class TestCancellation:
    def _gated_submit(self, pipeline, entities):
        """Submit with the driver held at the first matching map task."""
        reached = threading.Event()
        gate = threading.Event()

        def on_event(event):
            if (
                event.stage == "matching"
                and event.kind == EventKind.TASK_STARTED
            ):
                reached.set()
                gate.wait(timeout=30)

        execution = pipeline.submit(entities, on_event=on_event)
        assert reached.wait(timeout=30)
        return execution, gate

    @pytest.mark.parametrize("backend", list(EXECUTING_BACKENDS))
    def test_cancel_mid_run(self, backend):
        entities = generate_products(250, seed=30)
        execution, gate = self._gated_submit(
            _pipeline("blocksplit", backend), entities
        )
        assert execution.cancel() is True
        gate.set()
        with pytest.raises(PipelineCancelled):
            execution.result()
        assert execution.state == "cancelled"
        assert execution.cancelled
        with pytest.raises(PipelineCancelled):
            list(execution.iter_matches())
        # The BDM stage ran to completion; matching never finished.
        stages = {s.stage: s for s in execution.progress().stages}
        assert stages["bdm"].finished
        assert not stages["matching"].finished

    def test_cancel_after_completion_is_noop(self):
        execution = _pipeline("basic").submit(generate_products(100, seed=31))
        result = execution.result()
        assert execution.cancel() is False
        assert execution.state == "succeeded"
        assert execution.result() is result


class TestFailurePropagation:
    class ExplodingMatcher(Matcher):
        def similarity(self, e1, e2):
            raise RuntimeError("matcher exploded")

        def is_match(self, similarity):
            return False

    def test_error_reaches_result_and_stream(self):
        pipeline = ERPipeline(
            "blocksplit",
            PrefixBlocking("title"),
            self.ExplodingMatcher(),
            num_map_tasks=2,
            num_reduce_tasks=3,
        )
        execution = pipeline.submit(generate_products(80, seed=32))
        with pytest.raises(RuntimeError, match="matcher exploded"):
            execution.result()
        assert execution.state == "failed"
        with pytest.raises(RuntimeError, match="matcher exploded"):
            list(execution.iter_matches())

    def test_run_still_raises_synchronously_for_bad_requests(self):
        with pytest.raises(ValueError, match="two-source matching"):
            _pipeline("basic").run(
                generate_products(10, seed=33), generate_products(10, seed=34)
            )


class TestMatcherSnapshots:
    def test_back_to_back_runs_report_per_run_counts(self):
        entities = generate_products(150, seed=35)
        pipeline = _pipeline("blocksplit")
        first = pipeline.submit(entities)
        first_result = first.result()
        second = pipeline.submit(entities)
        second_result = second.result()
        # Per-run deltas, no manual reset_counters() needed...
        assert first.matcher_stats().comparisons == first_result.total_comparisons()
        assert second.matcher_stats().comparisons == second_result.total_comparisons()
        assert first.matcher_stats().matches_found == len(first_result.matches)
        # ...while the matcher itself keeps the documented accumulate
        # behaviour across runs.
        assert pipeline.matcher.comparisons == (
            first_result.total_comparisons() + second_result.total_comparisons()
        )

    def test_cache_stats_are_snapshotted_per_run(self):
        # Regression: the verdict-memo counters (cache_hits/misses)
        # must be part of the submit-time snapshot like the comparison
        # counters — otherwise a matcher reused across runs reports
        # cache numbers leaked from the previous run.
        entities = generate_products(150, seed=38)
        pipeline = _pipeline("blocksplit")
        first = pipeline.submit(entities)
        first.result()
        second = pipeline.submit(entities)
        second.result()
        matcher = pipeline.matcher
        first_stats, second_stats = first.matcher_stats(), second.matcher_stats()
        # The same data passes through twice, so the kernel runs in the
        # first run and the memo answers in the second.
        assert first_stats.cache_misses > 0
        assert second_stats.cache_hits > 0
        # Per-run deltas partition the cumulative matcher counters...
        assert (
            first_stats.cache_hits + second_stats.cache_hits
            == matcher.cache_hits
        )
        assert (
            first_stats.cache_misses + second_stats.cache_misses
            == matcher.cache_misses
        )
        # ...so the second run's numbers are its own, not the total.
        assert second_stats.cache_misses < matcher.cache_misses

    def test_cacheless_matcher_reports_zero_cache_stats(self):
        # Matchers without a verdict memo (anything but
        # ThresholdMatcher) simply read as zero — not as an error.
        execution = ERPipeline(
            "blocksplit",
            PrefixBlocking("title"),
            AlwaysMatcher(),
            num_map_tasks=2,
            num_reduce_tasks=3,
        ).submit(generate_products(80, seed=39))
        execution.result()
        stats = execution.matcher_stats()
        assert stats.cache_hits == stats.cache_misses == 0
        assert stats.comparisons > 0

    def test_process_pool_keeps_driver_matcher_untouched(self):
        entities = generate_products(120, seed=36)
        pipeline = _pipeline("blocksplit", "parallel", executor="process", max_workers=2)
        execution = pipeline.submit(entities)
        result = execution.result()
        # Worker-side mutations never return: job counters are the
        # authoritative per-run numbers there.
        assert execution.matcher_stats().comparisons == 0
        assert result.total_comparisons() > 0


class TestAsyncSurface:
    def test_submit_async_and_aiter(self):
        entities = generate_products(150, seed=37)
        reference = _pipeline("pairrange").run(entities)

        async def main():
            pipeline = _pipeline("pairrange", "async")
            execution = await pipeline.submit_async(entities)
            streamed = [pair async for pair in execution.aiter_matches()]
            result = await execution.result_async()
            return streamed, result

        streamed, result = asyncio.run(main())
        assert _fingerprint(result) == _fingerprint(reference)
        assert _match_tuples(streamed) == _job2_output_tuples(reference)

    def test_async_backend_registered(self):
        from repro.engine import BACKENDS, get_backend

        assert BACKENDS["async"] is AsyncBackend
        backend = get_backend("async", max_concurrency=2)
        assert backend.max_concurrency == 2

    def test_async_runtime_rejects_bad_concurrency(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            AsyncRuntime(max_concurrency=0)
