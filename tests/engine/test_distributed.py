"""The distributed backend: worker processes must be invisible.

The load-bearing guarantee is cross-backend equivalence: for every
strategy × source-arity × with/without a memory budget, the distributed
backend's ``PipelineResult`` — matches (ids *and* scores), job-level
and per-task counters, the persisted JSON document — is byte-identical
to the serial reference, and the whole execution-handle surface
(streaming, progress, cancellation, failure propagation) behaves
exactly as it does in-process.

Fault behaviour (injected crashes and hangs) lives in
``tests/engine/test_fault_injection.py``.
"""

from __future__ import annotations

import threading
from pathlib import Path

import pytest

from repro.datasets.generators import generate_products
from repro.engine import (
    BACKENDS,
    DistributedBackend,
    DistributedExecutionError,
    DistributedRuntime,
    ERPipeline,
    PipelineCancelled,
    get_backend,
    result_to_dict,
)
from repro.er.blocking import PrefixBlocking
from repro.er.matching import Matcher, ThresholdMatcher
from repro.mapreduce.events import EventKind

REPO_ROOT = Path(__file__).resolve().parents[2]

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
DUAL_STRATEGIES = ["blocksplit", "pairrange"]
BUDGETS = [None, 24]

#: Two workers everywhere: enough for real out-of-order completion,
#: cheap enough to spawn per test on a 1-CPU runner.
WORKERS = 2


def _pipeline(strategy, backend="serial", *, memory_budget=None, **options):
    if backend == "distributed":
        options.setdefault("num_workers", WORKERS)
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=5,
        memory_budget=memory_budget,
    ).with_backend(backend, **options)


def _match_tuples(matches):
    return [(pair.id1, pair.id2, pair.similarity) for pair in matches]


def _job2_output_tuples(result):
    return _match_tuples(record.value for record in result.job2.output)


def _fingerprint(result):
    return (
        result.strategy,
        _match_tuples(result.matches),
        result.reduce_comparisons(),
        result.job2.counters.as_dict(),
        None if result.job1 is None else result.job1.counters.as_dict(),
        tuple(task.counters.as_dict() for task in result.job2.reduce_tasks),
        None if result.job1 is None else tuple(
            task.counters.as_dict() for task in result.job1.reduce_tasks
        ),
    )


class TestSerialEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("memory_budget", BUDGETS)
    def test_byte_identical_to_serial(self, strategy, memory_budget):
        entities = generate_products(180, seed=41)
        serial = _pipeline(strategy, memory_budget=memory_budget).run(entities)
        distributed = _pipeline(
            strategy, "distributed", memory_budget=memory_budget
        ).run(entities)
        assert _fingerprint(distributed) == _fingerprint(serial)
        assert len(serial.matches) > 0

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    def test_two_source_byte_identical_to_serial(self, strategy):
        r = generate_products(90, seed=42)
        s = generate_products(90, seed=43)
        serial = _pipeline(strategy).run(r, s)
        distributed = _pipeline(strategy, "distributed").run(r, s)
        assert _fingerprint(distributed) == _fingerprint(serial)
        assert len(serial.matches) > 0

    def test_persisted_json_identical_to_serial(self):
        # The acceptance criterion, literally: the persisted result
        # document differs from serial in nothing but the backend label.
        entities = generate_products(180, seed=44)
        serial = result_to_dict(_pipeline("blocksplit").run(entities))
        distributed = result_to_dict(
            _pipeline("blocksplit", "distributed").run(entities)
        )
        assert distributed.pop("backend") == "distributed"
        assert serial.pop("backend") == "serial"
        assert distributed == serial

    def test_many_tasks_through_few_workers(self):
        # More reduce tasks than workers: the scheduler's requeue-free
        # steady state (pull → dispatch → merge) under real contention.
        entities = generate_products(200, seed=45)
        serial = ERPipeline(
            "pairrange", PrefixBlocking("title"),
            ThresholdMatcher("title", 0.8),
            num_map_tasks=5, num_reduce_tasks=11,
        ).run(entities)
        distributed = ERPipeline(
            "pairrange", PrefixBlocking("title"),
            ThresholdMatcher("title", 0.8),
            num_map_tasks=5, num_reduce_tasks=11,
        ).with_backend("distributed", num_workers=WORKERS).run(entities)
        assert _fingerprint(distributed) == _fingerprint(serial)


class TestExecutionHandle:
    def test_streamed_matches_equal_job2_output(self):
        entities = generate_products(180, seed=46)
        execution = _pipeline("blocksplit", "distributed").submit(entities)
        streamed = list(execution.iter_matches())
        result = execution.result()
        assert _match_tuples(streamed) == _job2_output_tuples(result)
        assert len(streamed) > 0

    def test_progress_snapshot_after_completion(self):
        entities = generate_products(180, seed=47)
        execution = _pipeline("blocksplit", "distributed").submit(entities)
        result = execution.result()
        progress = execution.progress()
        assert progress.state == "succeeded"
        assert [stage.stage for stage in progress.stages] == ["bdm", "matching"]
        for stage in progress.stages:
            assert stage.finished
            assert stage.map_tasks_done == stage.map_tasks_total == 3
            assert stage.reduce_tasks_done == stage.reduce_tasks_total == 5
        assert progress.comparisons == result.total_comparisons()
        assert progress.matches == len(result.matches)

    def test_event_stream_matches_serial(self):
        entities = generate_products(150, seed=48)

        def trace(pipeline):
            events = []
            pipeline.submit(
                entities,
                on_event=lambda e: events.append(
                    (e.kind, e.stage, e.job, e.phase, e.task_index)
                ),
            ).result()
            return events

        serial = trace(_pipeline("pairrange"))
        distributed = trace(_pipeline("pairrange", "distributed"))
        # Started events fire at submission, finished events in
        # task-index order — so each kind's own sequence is identical
        # to serial even though the interleaving may differ.
        for kind in (EventKind.TASK_STARTED, EventKind.TASK_FINISHED):
            assert [e for e in distributed if e[0] == kind] == [
                e for e in serial if e[0] == kind
            ]

    def test_cancel_mid_run(self):
        entities = generate_products(250, seed=49)
        reached = threading.Event()
        gate = threading.Event()

        def on_event(event):
            if event.stage == "matching" and event.kind == EventKind.TASK_STARTED:
                reached.set()
                gate.wait(timeout=30)

        execution = _pipeline("blocksplit", "distributed").submit(
            entities, on_event=on_event
        )
        assert reached.wait(timeout=30)
        assert execution.cancel() is True
        gate.set()
        with pytest.raises(PipelineCancelled):
            execution.result()
        assert execution.state == "cancelled"
        stages = {s.stage: s for s in execution.progress().stages}
        assert stages["bdm"].finished
        assert not stages["matching"].finished


class ExplodingMatcher(Matcher):
    """Module-level so worker processes can unpickle it (see the
    PYTHONPATH monkeypatch in the test)."""

    def similarity(self, e1, e2):
        raise RuntimeError("matcher exploded remotely")

    def is_match(self, similarity):
        return False


class TestFailurePropagation:
    def test_remote_task_exception_propagates(self, monkeypatch):
        # Workers must be able to import this test module to unpickle
        # the matcher; the runtime prepends src/ to whatever PYTHONPATH
        # it inherits, so pointing it at the repo root is enough.
        monkeypatch.setenv("PYTHONPATH", str(REPO_ROOT))
        pipeline = ERPipeline(
            "blocksplit",
            PrefixBlocking("title"),
            ExplodingMatcher(),
            num_map_tasks=2,
            num_reduce_tasks=3,
            backend=get_backend("distributed", num_workers=WORKERS),
        )
        execution = pipeline.submit(generate_products(80, seed=50))
        with pytest.raises(RuntimeError, match="matcher exploded remotely"):
            execution.result()
        assert execution.state == "failed"

    def test_unpicklable_job_fails_with_clear_error(self):
        pipeline = ERPipeline(
            "basic",
            PrefixBlocking("title"),
            # A lambda similarity function cannot be pickled, so the
            # job can never be shipped to a worker process.
            ThresholdMatcher("title", 0.8, similarity_fn=lambda a, b: 0.0),
            num_map_tasks=2,
            num_reduce_tasks=3,
            backend=get_backend("distributed", num_workers=WORKERS),
        )
        with pytest.raises(DistributedExecutionError, match="cannot be pickled"):
            pipeline.run(generate_products(40, seed=51))


class TestConfiguration:
    def test_backend_registered(self):
        assert BACKENDS["distributed"] is DistributedBackend
        backend = get_backend("distributed", num_workers=3, task_timeout=9.0)
        assert backend.num_workers == 3
        assert backend.task_timeout == 9.0

    def test_runtime_rejects_bad_options(self):
        with pytest.raises(ValueError, match="num_workers"):
            DistributedRuntime(num_workers=0)
        with pytest.raises(ValueError, match="task_timeout"):
            DistributedRuntime(task_timeout=0)
        with pytest.raises(ValueError, match="max_task_retries"):
            DistributedRuntime(max_task_retries=-1)
        with pytest.raises(ValueError, match="heartbeat_interval"):
            DistributedRuntime(heartbeat_interval=0)
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            DistributedRuntime(heartbeat_timeout=0)

    def test_close_without_use_is_safe(self):
        runtime = DistributedRuntime(num_workers=2)
        runtime.close()
        runtime.close()
