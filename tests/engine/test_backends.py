"""Backend equivalence: serial and parallel execution are indistinguishable.

The parallel runtime ships the same task units to a pool and merges in
task-index order, so for every strategy — one- and two-source — the
matches, per-task outputs, and every counter must be identical to the
serial reference, and repeated runs must be deterministic.
"""

from __future__ import annotations

import pytest

from repro.datasets.generators import generate_products
from repro.engine import ERPipeline, ParallelBackend, SerialBackend
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher

from ..conftest import random_keyed_entities

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
DUAL_STRATEGIES = ["blocksplit", "pairrange"]


def _pipeline(strategy, **kwargs):
    kwargs.setdefault("num_map_tasks", 3)
    kwargs.setdefault("num_reduce_tasks", 5)
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        **kwargs,
    )


def _job_fingerprint(job_result):
    """Everything observable about a finished job, for equality checks."""
    return (
        job_result.job_name,
        tuple(tuple(task.output) for task in job_result.map_tasks),
        tuple(tuple(task.output) for task in job_result.reduce_tasks),
        tuple(task.counters.as_dict() for task in job_result.map_tasks),
        tuple(task.counters.as_dict() for task in job_result.reduce_tasks),
        job_result.counters.as_dict(),
    )


def _fingerprint(result):
    return (
        result.strategy,
        result.matches.pair_ids,
        None if result.job1 is None else _job_fingerprint(result.job1),
        _job_fingerprint(result.job2),
    )


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_one_source_identical(self, strategy, executor):
        entities = generate_products(250, seed=41)
        serial = _pipeline(strategy).run(entities)
        parallel = (
            _pipeline(strategy)
            .with_backend("parallel", max_workers=4, executor=executor)
            .run(entities)
        )
        assert _fingerprint(serial) == _fingerprint(parallel)
        assert len(serial.matches) > 0

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_two_source_identical(self, strategy, executor):
        r_entities = generate_products(150, seed=42)
        s_entities = generate_products(150, seed=43)
        serial = _pipeline(strategy, num_map_tasks=4).run(r_entities, s_entities)
        parallel = (
            _pipeline(strategy, num_map_tasks=4)
            .with_backend("parallel", max_workers=4, executor=executor)
            .run(r_entities, s_entities)
        )
        assert _fingerprint(serial) == _fingerprint(parallel)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_parallel_deterministic_across_runs(self, strategy):
        entities = generate_products(200, seed=44)
        backend = ParallelBackend(max_workers=4)
        first = _pipeline(strategy, backend=backend).run(entities)
        second = _pipeline(strategy, backend=backend).run(entities)
        assert _fingerprint(first) == _fingerprint(second)

    def test_unpicklable_job_falls_back_to_threads(self, blocking):
        # `blocking` wraps a lambda — unpicklable, so "auto" must pick
        # the thread executor and still match the serial reference.
        entities = random_keyed_entities(60, 5, seed=45)
        serial = ERPipeline(
            "blocksplit", blocking, ThresholdMatcher("title", 0.8),
            num_map_tasks=2, num_reduce_tasks=3,
        ).run(entities)
        parallel = ERPipeline(
            "blocksplit", blocking, ThresholdMatcher("title", 0.8),
            num_map_tasks=2, num_reduce_tasks=3,
            backend=ParallelBackend(max_workers=4, executor="auto"),
        ).run(entities)
        assert _fingerprint(serial) == _fingerprint(parallel)

    def test_single_worker_degenerates_to_serial(self):
        entities = generate_products(120, seed=46)
        serial = _pipeline("pairrange").run(entities)
        one_worker = (
            _pipeline("pairrange")
            .with_backend("parallel", max_workers=1)
            .run(entities)
        )
        assert _fingerprint(serial) == _fingerprint(one_worker)


class TestBackendSelection:
    def test_with_backend_returns_configured_copy(self):
        base = _pipeline("blocksplit")
        fast = base.with_backend("parallel", max_workers=2)
        assert base.backend.name == "serial"
        assert fast.backend.name == "parallel"
        assert fast.strategy is base.strategy
        assert fast.matcher is base.matcher

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            _pipeline("blocksplit", backend="hadoop")

    def test_backend_instance_accepted(self):
        result = _pipeline("basic", backend=SerialBackend()).run(
            generate_products(80, seed=47)
        )
        assert result.backend == "serial"

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            ParallelBackend(executor="fibers").make_runtime()

    def test_result_records_backend_name(self):
        entities = generate_products(80, seed=48)
        assert _pipeline("basic").run(entities).backend == "serial"
        assert (
            _pipeline("basic")
            .with_backend("parallel", executor="thread")
            .run(entities)
            .backend
            == "parallel"
        )
