"""Crash-mid-ingest: the persisted corpus state is atomic.

The durability contract of :func:`repro.engine.incremental.ingest`:
whatever happens during the delta run — a worker process dying
mid-protocol, a retry budget exhausting, the very first ingest of an
empty directory failing — the on-disk state is either **untouched** or
**fully advanced**, never torn.  Saving is write-tmp-then-rename with
``state.json`` as the single commit point, and the save only happens
after the run fully succeeded.

Faults are genuine process deaths (``os._exit`` mid-protocol) armed
through the :mod:`repro.worker` environment hooks, exactly as in
``test_fault_injection.py`` — not mocks.  And because a retried ingest
re-runs the same delta against the same unadvanced state, convergence
is byte-for-byte: the recovered state equals the one an uninterrupted
serial run would have produced.
"""

from __future__ import annotations

import pytest

from repro.engine import DistributedExecutionError, ERPipeline
from repro.engine.incremental import ingest
from repro.engine.persistence import MATCH_LOG_FILE, STATE_FILE, load_state
from repro.er.blocking import AttributeBlocking
from repro.er.matching import ThresholdMatcher
from repro.worker import ENV_FAULT, ENV_FAULT_WORKERS

from ..conftest import random_keyed_entities

WORKERS = 2


def _pipeline(backend="serial", **options):
    if backend == "distributed":
        options.setdefault("num_workers", WORKERS)
    return ERPipeline(
        "blocksplit",
        AttributeBlocking("key"),
        ThresholdMatcher("title", 0.6),
        num_map_tasks=3,
        num_reduce_tasks=4,
    ).with_backend(backend, **options)


def _arm(monkeypatch, fault, workers="0"):
    monkeypatch.setenv(ENV_FAULT, fault)
    monkeypatch.setenv(ENV_FAULT_WORKERS, workers)


def _disarm(monkeypatch):
    monkeypatch.delenv(ENV_FAULT, raising=False)
    monkeypatch.delenv(ENV_FAULT_WORKERS, raising=False)


def _snapshot(state_dir):
    """Byte-level content of the state directory."""
    if not state_dir.exists():
        return None
    return {
        path.name: path.read_bytes()
        for path in sorted(state_dir.iterdir())
    }


def _reference_states(entities, split, tmp_path):
    """The states an uninterrupted serial run of the same two ingests
    produces (the convergence target)."""
    serial = _pipeline()
    ref_dir = tmp_path / "reference"
    ingest(serial, entities[:split], ref_dir)
    after_first = _snapshot(ref_dir)
    ingest(serial, entities[split:], ref_dir)
    return after_first, _snapshot(ref_dir)


class TestCrashLeavesStateUntouched:
    # Worker 0's 1st task dies in the delta's BDM job, its 4th in the
    # matching job: the state must survive a crash in either stage.
    @pytest.mark.parametrize("crash_at", [1, 4])
    def test_failed_ingest_changes_nothing_on_disk(
        self, monkeypatch, tmp_path, crash_at
    ):
        entities = random_keyed_entities(70, 5, seed=611)
        after_first, converged = _reference_states(entities, 45, tmp_path)
        state_dir = tmp_path / "corpus"
        ingest(_pipeline(), entities[:45], state_dir)
        assert _snapshot(state_dir) == after_first
        # Retries exhausted mid-delta: the distributed run fails...
        _arm(monkeypatch, f"crash:{crash_at}")
        with pytest.raises(DistributedExecutionError):
            ingest(
                _pipeline("distributed", max_task_retries=0),
                entities[45:],
                state_dir,
            )
        # ...and the persisted state is byte-identical to before: no
        # partial matches.log append, no torn state.json, no tmp files.
        assert _snapshot(state_dir) == after_first
        # The retried ingest (workers healthy again) converges to the
        # exact state an uninterrupted run would have written.
        _disarm(monkeypatch)
        ingest(_pipeline("distributed"), entities[45:], state_dir)
        assert _snapshot(state_dir) == converged

    def test_failed_first_ingest_creates_no_state(
        self, monkeypatch, tmp_path
    ):
        entities = random_keyed_entities(60, 4, seed=612)
        state_dir = tmp_path / "corpus"
        _arm(monkeypatch, "crash:1")
        with pytest.raises(DistributedExecutionError):
            ingest(
                _pipeline("distributed", max_task_retries=0),
                entities,
                state_dir,
            )
        assert not (state_dir / STATE_FILE).exists()
        assert not (state_dir / MATCH_LOG_FILE).exists()
        _disarm(monkeypatch)
        _, state = ingest(_pipeline("distributed"), entities, state_dir)
        ingest(_pipeline(), entities, tmp_path / "ref")
        reference = load_state(tmp_path / "ref")
        assert [
            (p.id1, p.id2, p.similarity) for p in state.matches
        ] == [(p.id1, p.id2, p.similarity) for p in reference.matches]
        assert state.comparisons == reference.comparisons


class TestCrashAbsorbedByRetries:
    @pytest.mark.parametrize("crash_at", [1, 4])
    def test_requeued_ingest_advances_exactly_once(
        self, monkeypatch, tmp_path, crash_at
    ):
        entities = random_keyed_entities(70, 5, seed=613)
        _, converged = _reference_states(entities, 45, tmp_path)
        state_dir = tmp_path / "corpus"
        ingest(_pipeline(), entities[:45], state_dir)
        # The default retry budget absorbs the crash: the ingest
        # succeeds and the state advances to the exact serial bytes —
        # the requeued task neither lost nor double-counted anything.
        _arm(monkeypatch, f"crash:{crash_at}")
        result, state = ingest(
            _pipeline("distributed"), entities[45:], state_dir
        )
        assert _snapshot(state_dir) == converged
        assert state.num_ingests == 2
        loaded = load_state(state_dir)
        assert loaded.comparisons == state.comparisons
        assert result.total_comparisons() > 0
