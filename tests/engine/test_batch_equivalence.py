"""Batched matching == scalar loops, proven over the whole matrix.

The batch kernel (``PipelineRequest.batch_kernel``, default on) must be
*unobservable*: for every strategy, executing backend, record-source
type (including memory-mapped columnar shards), with and without a
shuffle memory budget, for one-source, two-source and incremental
(delta) runs, and on both the numpy and the pure-stdlib kernel path,
the matches (ids *and* scores), all per-task outputs, and every counter
must equal what the scalar per-pair reduce loops produce.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro.er.batch_kernel as bk
from repro.core.strategy import STRATEGIES
from repro.datasets.generators import generate_products
from repro.datasets.loaders import save_entities_csv
from repro.engine import ERPipeline
from repro.engine.incremental import CorpusState
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.io import (
    ColumnarShardSource,
    CsvShardSource,
    GeneratorSource,
    InMemorySource,
    shard_bounds,
    write_columnar,
)
from repro.mapreduce.types import make_partitions

from ..test_hotpath_equivalence import _fingerprint

ALL_STRATEGIES = sorted(STRATEGIES)
DUAL_STRATEGIES = [
    name for name in ALL_STRATEGIES if STRATEGIES[name]().requires_bdm
]
NUM_ENTITIES = 150
NUM_SHARDS = 3
NUM_REDUCE = 5
THRESHOLD = 0.8
BACKENDS = {
    "serial": {},
    "parallel": {"max_workers": 2, "executor": "thread"},
    "distributed": {"num_workers": 2},
}


def _pipeline(strategy, *, batch, backend="serial", memory_budget=None):
    options = BACKENDS.get(backend, {})
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", THRESHOLD),
        num_map_tasks=NUM_SHARDS,
        num_reduce_tasks=NUM_REDUCE,
        memory_budget=memory_budget,
        batch_kernel=batch,
    ).with_backend(backend, **options)


def _run(strategy, *, batch, backend="serial", memory_budget=None,
         source=None, entities=None, dual=False):
    pipeline = _pipeline(
        strategy, batch=batch, backend=backend, memory_budget=memory_budget
    )
    if dual:
        half = len(entities) // 2
        return pipeline.run(entities[:half], entities[half:])
    return pipeline.run(source if source is not None else entities)


@pytest.fixture(scope="module")
def entities():
    return generate_products(NUM_ENTITIES, seed=97)


@pytest.fixture(scope="module")
def csv_path(entities, tmp_path_factory):
    path = tmp_path_factory.mktemp("batchmatrix") / "entities.csv"
    save_entities_csv(entities, path)
    return path


@pytest.fixture(scope="module")
def columnar_dir(entities, tmp_path_factory):
    out = tmp_path_factory.mktemp("batchmatrix") / "cols"
    return write_columnar(InMemorySource(entities, num_shards=NUM_SHARDS), out)


class TestBackendBudgetMatrix:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    @pytest.mark.parametrize("memory_budget", [None, 64])
    def test_local_backends(self, entities, strategy, backend, memory_budget):
        batched = _run(strategy, batch=True, backend=backend,
                       memory_budget=memory_budget, entities=entities)
        scalar = _run(strategy, batch=False, backend=backend,
                      memory_budget=memory_budget, entities=entities)
        assert _fingerprint(batched) == _fingerprint(scalar)
        assert batched.matches.pair_ids  # non-degenerate workload

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_distributed_backend(self, entities, strategy):
        """The flag rides inside the pickled job to worker processes."""
        batched = _run(strategy, batch=True, backend="distributed",
                       entities=entities)
        scalar = _run(strategy, batch=False, backend="distributed",
                      entities=entities)
        assert _fingerprint(batched) == _fingerprint(scalar)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_planned_backend_ignores_flag(self, entities, strategy):
        on = _run(strategy, batch=True, backend="planned", entities=entities)
        off = _run(strategy, batch=False, backend="planned", entities=entities)
        assert on.plan == off.plan
        assert on.reduce_comparisons() == off.reduce_comparisons()


class TestRecordSourceMatrix:
    def _sources(self, entities, csv_path, columnar_dir):
        bounds = shard_bounds(len(entities), NUM_SHARDS)
        return {
            "in-memory": lambda: InMemorySource(entities, num_shards=NUM_SHARDS),
            "csv-shards": lambda: CsvShardSource(csv_path, num_shards=NUM_SHARDS),
            "columnar": lambda: ColumnarShardSource(columnar_dir),
            "generator": lambda: GeneratorSource(
                [(lambda lo=lo, hi=hi: iter(entities[lo:hi])) for lo, hi in bounds]
            ),
        }

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize(
        "source_kind", ["in-memory", "csv-shards", "columnar", "generator"]
    )
    def test_all_sources(self, entities, csv_path, columnar_dir, strategy,
                         source_kind):
        make = self._sources(entities, csv_path, columnar_dir)[source_kind]
        batched = _run(strategy, batch=True, source=make(), entities=entities)
        scalar = _run(strategy, batch=False, source=make(), entities=entities)
        assert _fingerprint(batched) == _fingerprint(scalar)

    def test_columnar_equals_csv_run(self, entities, csv_path, columnar_dir):
        """Same shard count ⇒ a columnar run is byte-identical to CSV."""
        via_columnar = _run("blocksplit", batch=True,
                            source=ColumnarShardSource(columnar_dir),
                            entities=entities)
        via_csv = _run("blocksplit", batch=True,
                       source=CsvShardSource(csv_path, num_shards=NUM_SHARDS),
                       entities=entities)
        assert _fingerprint(via_columnar) == _fingerprint(via_csv)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_columnar_with_budget(self, entities, columnar_dir, strategy):
        batched = _run(strategy, batch=True, memory_budget=48,
                       source=ColumnarShardSource(columnar_dir),
                       entities=entities)
        scalar = _run(strategy, batch=False, memory_budget=48,
                      source=ColumnarShardSource(columnar_dir),
                      entities=entities)
        assert _fingerprint(batched) == _fingerprint(scalar)


class TestTwoSourceAndDelta:
    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    @pytest.mark.parametrize("memory_budget", [None, 64])
    def test_two_source(self, entities, strategy, memory_budget):
        batched = _run(strategy, batch=True, memory_budget=memory_budget,
                       entities=entities, dual=True)
        scalar = _run(strategy, batch=False, memory_budget=memory_budget,
                      entities=entities, dual=True)
        assert _fingerprint(batched) == _fingerprint(scalar)
        assert batched.matches.pair_ids

    def _delta_result(self, entities, strategy, *, batch, backend="serial"):
        old, new = entities[:100], entities[100:]
        pipeline = _pipeline(strategy, batch=batch, backend=backend)
        old_partitions = make_partitions(old, NUM_SHARDS)
        state = CorpusState.empty().advanced(
            pipeline.run(old_partitions), old_partitions, pipeline.blocking
        )
        return pipeline.run_delta(make_partitions(new, NUM_SHARDS), state)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_delta(self, entities, strategy):
        batched = self._delta_result(entities, strategy, batch=True)
        scalar = self._delta_result(entities, strategy, batch=False)
        assert _fingerprint(batched) == _fingerprint(scalar)

    def test_delta_distributed(self, entities):
        batched = self._delta_result(
            entities, "blocksplit", batch=True, backend="distributed"
        )
        scalar = self._delta_result(
            entities, "blocksplit", batch=False, backend="distributed"
        )
        assert _fingerprint(batched) == _fingerprint(scalar)


class TestEvictionPressure:
    """ISSUE 10 regression, pipeline level: with a memo cache smaller
    than a group's distinct surviving pairs, the batch path must replay
    the scalar LRU discipline — identical hit/miss counters and
    identical residual cache across groups, hence identical
    fingerprints."""

    def _run_small_memo(self, entities, *, batch, memoize):
        pipeline = ERPipeline(
            "blocksplit",
            PrefixBlocking("title"),
            ThresholdMatcher("title", THRESHOLD, memoize=memoize),
            num_map_tasks=NUM_SHARDS,
            num_reduce_tasks=NUM_REDUCE,
            batch_kernel=batch,
        )
        return pipeline.run(entities)

    @pytest.mark.parametrize("memoize", [1, 2, 7])
    def test_small_memo_matches_scalar(self, entities, memoize):
        batched = self._run_small_memo(entities, batch=True, memoize=memoize)
        scalar = self._run_small_memo(entities, batch=False, memoize=memoize)
        assert _fingerprint(batched) == _fingerprint(scalar)
        assert batched.matches.pair_ids

    @pytest.mark.parametrize("memoize", [2, 7])
    def test_small_memo_stdlib_path(self, entities, memoize, monkeypatch):
        monkeypatch.setattr(bk, "_numpy", None)
        batched = self._run_small_memo(entities, batch=True, memoize=memoize)
        scalar = self._run_small_memo(entities, batch=False, memoize=memoize)
        assert _fingerprint(batched) == _fingerprint(scalar)


class TestForcedStdlibEnv:
    """REPRO_ER_FORCE_STDLIB=1 at import time must yield the same
    matches as the in-process numpy run — checked through a real
    subprocess, the way a numpy-less deployment would see it."""

    SCRIPT = """
from repro.datasets.generators import generate_products
from repro.engine import ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher

entities = generate_products(150, seed=97)
pipeline = ERPipeline(
    "blocksplit",
    PrefixBlocking("title"),
    ThresholdMatcher("title", 0.8),
    num_map_tasks=3,
    num_reduce_tasks=5,
    batch_kernel=True,
)
result = pipeline.run(entities)
for pair in sorted(result.matches.pair_ids):
    print(pair)
print("comparisons", result.total_comparisons())
print("matches", len(result.matches.pair_ids))
"""

    def _run(self, force_stdlib):
        env = dict(os.environ)
        env.pop("REPRO_ER_FORCE_STDLIB", None)
        env["PYTHONHASHSEED"] = "0"
        if force_stdlib:
            env["REPRO_ER_FORCE_STDLIB"] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout

    def test_forced_stdlib_equals_default(self):
        assert self._run(True) == self._run(False)


class TestStdlibFallback:
    """The numpy-less kernel path (serial/parallel only: worker
    processes re-import the module and would resolve numpy again)."""

    @pytest.fixture(autouse=True)
    def _force_stdlib(self, monkeypatch):
        monkeypatch.setattr(bk, "_numpy", None)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    def test_stdlib_matches_scalar(self, entities, strategy, backend):
        batched = _run(strategy, batch=True, backend=backend,
                       entities=entities)
        scalar = _run(strategy, batch=False, backend=backend,
                      entities=entities)
        assert _fingerprint(batched) == _fingerprint(scalar)

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    def test_stdlib_two_source(self, entities, strategy):
        batched = _run(strategy, batch=True, entities=entities, dual=True)
        scalar = _run(strategy, batch=False, entities=entities, dual=True)
        assert _fingerprint(batched) == _fingerprint(scalar)
