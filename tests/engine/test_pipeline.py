"""The ERPipeline facade: unified one-/two-source path, planned backend,
registries, and the deprecated ERWorkflow shim."""

from __future__ import annotations

import pytest

from repro.cluster.simulation import ClusterSpec
from repro.core.strategy import (
    LoadBalancingStrategy,
    STRATEGIES,
    get_strategy,
    register_strategy,
)
from repro.datasets.generators import generate_products
from repro.engine import ERPipeline, PipelineResult
from repro.engine.backend import BACKENDS, get_backend
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher


def _pipeline(strategy, **kwargs):
    kwargs.setdefault("num_map_tasks", 3)
    kwargs.setdefault("num_reduce_tasks", 5)
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        **kwargs,
    )


class TestUnifiedRun:
    def test_one_source_via_single_entry_point(self):
        result = _pipeline("blocksplit").run(generate_products(200, seed=51))
        assert result.executed
        assert len(result.matches) > 0
        assert result.total_comparisons() == result.bdm.pairs()

    def test_two_source_via_single_entry_point(self):
        r = generate_products(120, seed=52)
        s = generate_products(120, seed=53)
        result = _pipeline("pairrange", num_map_tasks=4).run(r, s)
        assert result.executed
        # Every match crosses sources.
        for pair in result.matches:
            assert pair.id1.startswith("R:")
            assert pair.id2.startswith("S:")

    def test_two_source_basic_rejected(self):
        with pytest.raises(ValueError, match="two-source matching requires"):
            _pipeline("basic").run(
                generate_products(20, seed=54), generate_products(20, seed=55)
            )

    def test_basic_routed_through_strategy_build_job(self):
        """The Basic strategy no longer bypasses strategy.build_job: the
        blocking function reaches the job via the strategy interface."""
        strategy = get_strategy("basic")
        blocking = PrefixBlocking("title")
        job = strategy.build_job(
            None, ThresholdMatcher(), 3, blocking=blocking
        )
        assert job.blocking is blocking
        result = _pipeline("basic").run(generate_products(150, seed=56))
        assert result.job1 is None and result.bdm is None
        assert len(result.matches) > 0


class TestPlannedBackend:
    def test_plan_matches_execution(self):
        entities = generate_products(250, seed=57)
        executed = _pipeline("blocksplit").run(entities)
        planned = _pipeline("blocksplit").with_backend("planned").run(entities)
        assert not planned.executed
        assert planned.matches is None
        assert planned.reduce_comparisons() == executed.reduce_comparisons()
        assert planned.map_output_kv() == executed.map_output_kv()
        assert planned.timeline is not None
        assert planned.execution_time > 0

    def test_plan_matches_execution_two_source(self):
        r = generate_products(120, seed=58)
        s = generate_products(120, seed=59)
        executed = _pipeline("pairrange", num_map_tasks=4).run(r, s)
        planned = (
            _pipeline("pairrange", num_map_tasks=4)
            .with_backend("planned")
            .run(r, s)
        )
        assert planned.reduce_comparisons() == executed.reduce_comparisons()
        assert planned.bdm.pairs() == executed.bdm.pairs()

    def test_executed_results_always_carry_plan(self):
        for strategy in ("basic", "blocksplit", "pairrange"):
            result = _pipeline(strategy).run(generate_products(150, seed=60))
            assert result.plan is not None
            assert result.plan.strategy == strategy
            assert sum(result.plan.reduce_comparisons) == result.total_comparisons()

    def test_cluster_attaches_timeline_to_executed_run(self):
        result = (
            _pipeline("blocksplit")
            .with_cluster(ClusterSpec(num_nodes=2))
            .run(generate_products(150, seed=61))
        )
        assert result.executed
        assert result.timeline is not None
        assert result.execution_time > 0
        assert len(result.timeline.jobs) == 2  # BDM job + matching job


class TestRegistries:
    def test_backend_registry(self):
        assert {"serial", "parallel", "planned"} <= set(BACKENDS)
        for name in ("serial", "parallel", "planned"):
            assert get_backend(name).name == name

    def test_register_strategy_decorator(self):
        @register_strategy
        class ProbeStrategy(STRATEGIES["blocksplit"]):
            name = "probe-strategy"

        try:
            assert get_strategy("probe-strategy").name == "probe-strategy"
            result = _pipeline("probe-strategy").run(
                generate_products(100, seed=62)
            )
            reference = _pipeline("blocksplit").run(
                generate_products(100, seed=62)
            )
            assert result.matches == reference.matches
        finally:
            del STRATEGIES["probe-strategy"]

    def test_duplicate_strategy_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_strategy
            class Clash(STRATEGIES["basic"]):
                name = "blocksplit"

    def test_strategy_instances_and_options(self):
        instance = STRATEGIES["pairrange"]()
        assert get_strategy(instance) is instance
        with pytest.raises(TypeError, match="existing"):
            get_strategy(instance, bogus=1)
        assert get_strategy(STRATEGIES["basic"]).name == "basic"


class TestWorkflowShim:
    def test_erworkflow_warns_and_delegates(self):
        from repro.core.workflow import ERWorkflow, ERWorkflowResult

        entities = generate_products(150, seed=63)
        with pytest.deprecated_call():
            workflow = ERWorkflow(
                "blocksplit",
                PrefixBlocking("title"),
                num_map_tasks=3,
                num_reduce_tasks=5,
            )
        result = workflow.run(entities)
        assert isinstance(result, PipelineResult)
        assert ERWorkflowResult is PipelineResult
        reference = _pipeline("blocksplit").run(entities)
        assert result.matches == reference.matches
