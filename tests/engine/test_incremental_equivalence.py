"""Incremental ER == full recompute, proven over the whole matrix.

The headline invariant of the incremental path: for any corpus split
``A ∪ B``, running ``full(A)`` and then ingesting ``B`` as a delta
against the persisted state yields *exactly* the match set of
``full(A ∪ B)`` — for every strategy, every executing backend, with
and without a shuffle memory budget, at every split point — while the
delta run performs **strictly fewer** comparisons than the full
recompute (only new-vs-old and new-vs-new pairs per block; old-vs-old
never re-compares).  The comparison counters are exact receipts:
``base + delta == full`` per ``T(n) − T(o)`` block arithmetic.

Edge cases get their own pins: an empty delta, a delta landing only in
brand-new blocks, a single-record delta, and long chains of successive
ingests.  The distributed backend must additionally be byte-identical
to the serial reference on a delta run — same matches in the same
order, same per-task counters.
"""

from __future__ import annotations

import pytest

from repro.core.bdm import analytic_bdm
from repro.engine import ERPipeline
from repro.engine.incremental import CorpusState, ingest
from repro.engine.persistence import load_state
from repro.er.blocking import AttributeBlocking
from repro.er.matching import ThresholdMatcher
from repro.mapreduce.types import make_partitions

from ..conftest import blocked_pairs, make_entity, random_keyed_entities

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
BACKENDS = {
    "serial": {},
    "parallel": {"max_workers": 2, "executor": "thread"},
    "distributed": {"num_workers": 2},
}
MAP_TASKS = 3


def _pipeline(strategy, backend="serial", memory_budget=None):
    options = BACKENDS.get(backend, {})
    # AttributeBlocking (not the conftest lambda blocking): the
    # distributed backend pickles the blocking function to workers.
    return ERPipeline(
        strategy,
        AttributeBlocking("key"),
        ThresholdMatcher("title", 0.6),
        num_map_tasks=MAP_TASKS,
        num_reduce_tasks=4,
        memory_budget=memory_budget,
    ).with_backend(backend, **options)


def _match_set(result):
    return {(p.id1, p.id2, p.similarity) for p in result.matches}


def _state_after(pipeline, entities):
    """The corpus state a full run of ``entities`` seeds (the on-disk
    ``dedup --save-state`` flow, without the disk)."""
    partitions = make_partitions(list(entities), MAP_TASKS)
    if not entities:
        return CorpusState.empty()
    result = pipeline.run(partitions)
    return CorpusState.empty().advanced(result, partitions, pipeline.blocking)


class TestIncrementalEqualsFull:
    """The full strategy × backend × ±memory-budget matrix, one split."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("memory_budget", [None, 32])
    def test_matches_and_counters(self, strategy, backend, memory_budget):
        entities = random_keyed_entities(90, 6, seed=211)
        old, new = entities[:60], entities[60:]
        serial = _pipeline(strategy, memory_budget=memory_budget)
        full = serial.run(entities)
        base = serial.run(old)
        state = _state_after(serial, old)
        delta = _pipeline(strategy, backend, memory_budget).run_delta(
            new, state
        )
        # The delta's matches are disjoint from the base run's (every
        # delta pair involves a new entity) and together they are the
        # full recompute, exactly — ids and similarity scores.
        assert _match_set(base).isdisjoint(_match_set(delta))
        assert _match_set(base) | _match_set(delta) == _match_set(full)
        # Strictly fewer comparisons than recomputing, and the counter
        # arithmetic is exact: T(o) + (T(n) − T(o)) == T(n) per block.
        assert delta.total_comparisons() < full.total_comparisons()
        assert (
            base.total_comparisons() + delta.total_comparisons()
            == full.total_comparisons()
        )

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_distributed_delta_is_byte_identical_to_serial(self, strategy):
        entities = random_keyed_entities(80, 5, seed=212)
        old, new = entities[:50], entities[50:]
        state = _state_after(_pipeline(strategy), old)
        reference = _pipeline(strategy).run_delta(new, state)
        survived = _pipeline(strategy, "distributed").run_delta(new, state)
        assert [
            (p.id1, p.id2, p.similarity) for p in survived.matches
        ] == [(p.id1, p.id2, p.similarity) for p in reference.matches]
        assert (
            survived.reduce_comparisons() == reference.reduce_comparisons()
        )
        assert (
            survived.job2.counters.as_dict()
            == reference.job2.counters.as_dict()
        )


class TestSplitPoints:
    """Random corpora, every kind of split — including the degenerate
    ends (empty base, empty delta)."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize(
        "seed,num_entities,num_keys,split",
        [
            (301, 70, 5, 0),    # empty base: the delta IS the corpus
            (302, 70, 5, 1),    # base of one record
            (303, 70, 5, 35),
            (304, 70, 5, 69),   # single-record delta
            (305, 70, 5, 70),   # empty delta
            (306, 120, 9, 40),
            (307, 50, 2, 25),   # few huge blocks (heavy splitting)
            (308, 60, 30, 30),  # many tiny blocks
        ],
    )
    def test_split_equivalence(self, strategy, seed, num_entities, num_keys, split):
        entities = random_keyed_entities(num_entities, num_keys, seed=seed)
        old, new = entities[:split], entities[split:]
        pipeline = _pipeline(strategy)
        full = pipeline.run(entities)
        state = _state_after(pipeline, old)
        base_matches = set(
            (p.id1, p.id2, p.similarity) for p in state.matches
        )
        delta = pipeline.run_delta(new, state)
        assert base_matches | _match_set(delta) == _match_set(full)
        assert (
            state.comparisons + delta.total_comparisons()
            == full.total_comparisons()
        )

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_empty_delta_compares_nothing(self, strategy):
        entities = random_keyed_entities(50, 4, seed=309)
        pipeline = _pipeline(strategy)
        state = _state_after(pipeline, entities)
        delta = pipeline.run_delta([], state)
        assert delta.total_comparisons() == 0
        assert list(delta.matches) == []

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_delta_landing_only_in_new_blocks(self, strategy):
        # No new-vs-old pairs exist: the delta work is exactly a full
        # run of the new records alone, and the old corpus adds zero.
        old = [make_entity(f"o{i}", f"old{i % 3}") for i in range(30)]
        new = [make_entity(f"n{i}", f"new{i % 2}") for i in range(16)]
        pipeline = _pipeline(strategy)
        state = _state_after(pipeline, old)
        delta = pipeline.run_delta(new, state)
        alone = pipeline.run(new)
        assert _match_set(delta) == _match_set(alone)
        assert delta.total_comparisons() == alone.total_comparisons()
        assert _match_set(delta) | set(
            (p.id1, p.id2, p.similarity) for p in state.matches
        ) == _match_set(pipeline.run(old + new))

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_successive_deltas_converge_to_full(self, strategy):
        entities = random_keyed_entities(100, 7, seed=310)
        pipeline = _pipeline(strategy)
        full = pipeline.run(entities)
        state = CorpusState.empty()
        comparisons = []
        for lo, hi in [(0, 25), (25, 30), (30, 75), (75, 100)]:
            batch = entities[lo:hi]
            partitions = make_partitions(batch, MAP_TASKS)
            result = pipeline.submit_delta(partitions, state).result()
            state = state.advanced(result, partitions, pipeline.blocking)
            comparisons.append(result.total_comparisons())
        assert state.num_ingests == 4
        assert set(
            (p.id1, p.id2, p.similarity) for p in state.matches
        ) == _match_set(full)
        assert state.comparisons == sum(comparisons)
        assert state.comparisons == full.total_comparisons()
        # The cumulative pair coverage is the blocked reference set.
        assert {
            (p.id1, p.id2) for p in state.matches
        } <= blocked_pairs(entities, pipeline.blocking)


class TestIngestOnDisk:
    """The durable loop: ``ingest()`` against a state directory."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_ingest_round_trips_and_converges(self, strategy, tmp_path):
        entities = random_keyed_entities(80, 6, seed=411)
        pipeline = _pipeline(strategy)
        full = pipeline.run(entities)
        state_dir = tmp_path / "corpus"
        _, s1 = ingest(pipeline, entities[:50], state_dir)
        result2, s2 = ingest(pipeline, entities[50:], state_dir)
        loaded = load_state(state_dir)
        assert loaded.num_ingests == 2
        assert loaded.num_entities == s2.num_entities
        assert set(
            (p.id1, p.id2, p.similarity) for p in loaded.matches
        ) == _match_set(full)
        assert loaded.comparisons == full.total_comparisons()
        assert result2.total_comparisons() < full.total_comparisons()
        # The reloaded state keeps ingesting: a third batch against the
        # disk state equals the recompute of the tripled corpus.
        extra = [
            make_entity(f"x{i}", f"k{i % 6}") for i in range(20)
        ]
        _, s3 = ingest(pipeline, extra, state_dir)
        assert set(
            (p.id1, p.id2, p.similarity) for p in s3.matches
        ) == _match_set(pipeline.run(entities + extra))

    def test_ingest_with_distributed_backend(self, tmp_path):
        entities = random_keyed_entities(60, 5, seed=413)
        serial = _pipeline("blocksplit")
        distributed = _pipeline("blocksplit", "distributed")
        ingest(serial, entities[:40], tmp_path / "a")
        ingest(serial, entities[40:], tmp_path / "a")
        ingest(distributed, entities[:40], tmp_path / "b")
        ingest(distributed, entities[40:], tmp_path / "b")
        a, b = load_state(tmp_path / "a"), load_state(tmp_path / "b")
        assert [
            (p.id1, p.id2, p.similarity) for p in a.matches
        ] == [(p.id1, p.id2, p.similarity) for p in b.matches]
        assert a.comparisons == b.comparisons


class TestPlannedDelta:
    """The planned backend plans the same delta the executors run."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_plan_matches_executed_counters(self, strategy):
        entities = random_keyed_entities(70, 5, seed=511)
        old, new = entities[:45], entities[45:]
        state = _state_after(_pipeline(strategy), old)
        executed = _pipeline(strategy).run_delta(new, state)
        planned = _pipeline(strategy, "planned").run_delta(new, state)
        assert planned.matches is None
        assert planned.plan is not None
        assert list(planned.plan.reduce_comparisons) == list(
            executed.reduce_comparisons()
        )
        assert planned.bdm.pairs() == executed.bdm.pairs()
        # The merged matrix covers the whole corpus as of this ingest.
        full_bdm = analytic_bdm(
            make_partitions(entities, MAP_TASKS), AttributeBlocking("key")
        )
        assert planned.bdm.pairs() == full_bdm.pairs()
