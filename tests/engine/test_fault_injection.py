"""Fault injection: the distributed backend under real worker failures.

Workers are armed through the :mod:`repro.worker` environment hooks —
``REPRO_WORKER_FAULT=crash:N|hang:N`` plus
``REPRO_WORKER_FAULT_WORKERS`` — so the faults are genuine process
deaths (``os._exit`` mid-protocol) and genuine hangs (a task unit that
never returns while heartbeats keep flowing), not mocks.

What must hold:

* a crashed worker's task is requeued to a survivor and the final
  result — matches, job-level and per-task counters — is byte-identical
  to the serial reference: nothing lost, nothing double-counted;
* the retry budget is honored: with ``max_task_retries=0`` the first
  loss fails the job with a clean :class:`DistributedExecutionError`;
* a hung worker heartbeats forever, so only the per-task timeout can
  catch it — and does, after which the job completes identically;
* losing *every* worker fails the job cleanly instead of deadlocking.
"""

from __future__ import annotations

import pytest

from repro.datasets.generators import generate_products
from repro.engine import DistributedExecutionError, ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.worker import ENV_FAULT, ENV_FAULT_WORKERS, FaultInjector

WORKERS = 2


def _pipeline(strategy="blocksplit", backend="serial", **options):
    if backend == "distributed":
        options.setdefault("num_workers", WORKERS)
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=5,
    ).with_backend(backend, **options)


def _fingerprint(result):
    return (
        [(pair.id1, pair.id2, pair.similarity) for pair in result.matches],
        result.reduce_comparisons(),
        result.job2.counters.as_dict(),
        None if result.job1 is None else result.job1.counters.as_dict(),
        tuple(task.counters.as_dict() for task in result.job2.reduce_tasks),
    )


def _arm(monkeypatch, fault, workers="0"):
    monkeypatch.setenv(ENV_FAULT, fault)
    monkeypatch.setenv(ENV_FAULT_WORKERS, workers)


class TestCrashRequeue:
    # Worker 0's 2nd task lands in the BDM job, its 6th in the matching
    # job — the requeue path is exercised in both workflow stages.
    @pytest.mark.parametrize("crash_at", [2, 6])
    def test_requeue_loses_and_duplicates_nothing(self, monkeypatch, crash_at):
        entities = generate_products(180, seed=71)
        reference = _fingerprint(_pipeline().run(entities))
        _arm(monkeypatch, f"crash:{crash_at}")
        survived = _pipeline(backend="distributed").run(entities)
        assert _fingerprint(survived) == reference

    def test_streamed_matches_survive_a_crash_exactly_once(self, monkeypatch):
        entities = generate_products(180, seed=72)
        reference = _pipeline().run(entities)
        _arm(monkeypatch, "crash:4")
        execution = _pipeline(backend="distributed").submit(entities)
        streamed = [(p.id1, p.id2, p.similarity) for p in execution.iter_matches()]
        execution.result()
        # Exactly the serial matching job's reduce output: no pair
        # dropped with the dead worker, none emitted twice by a retry.
        assert streamed == [
            (r.value.id1, r.value.id2, r.value.similarity)
            for r in reference.job2.output
        ]
        assert len(streamed) == len(set(streamed)) > 0

    def test_losing_every_worker_fails_cleanly(self, monkeypatch):
        entities = generate_products(120, seed=73)
        _arm(monkeypatch, "crash:1", workers="all")
        with pytest.raises(
            DistributedExecutionError,
            match="no workers survive|all workers were lost",
        ):
            _pipeline(backend="distributed").run(entities)


class TestRetryBudget:
    def test_retry_bound_is_honored(self, monkeypatch):
        entities = generate_products(120, seed=74)
        _arm(monkeypatch, "crash:1")
        with pytest.raises(
            DistributedExecutionError,
            match=r"exhausted its retry budget \(max_task_retries=0\)",
        ) as info:
            _pipeline(backend="distributed", max_task_retries=0).run(entities)
        assert "failed 1 time(s)" in str(info.value)

    def test_default_budget_absorbs_a_single_crash(self, monkeypatch):
        entities = generate_products(120, seed=75)
        reference = _fingerprint(_pipeline().run(entities))
        _arm(monkeypatch, "crash:1")
        survived = _pipeline(backend="distributed").run(entities)
        assert _fingerprint(survived) == reference


class TestHungWorker:
    def test_hang_trips_the_task_timeout_and_requeues(self, monkeypatch):
        entities = generate_products(180, seed=76)
        reference = _fingerprint(_pipeline().run(entities))
        # The hung worker keeps heartbeating (heartbeat_timeout would
        # never fire); only the per-task deadline can unstick the job.
        _arm(monkeypatch, "hang:3")
        survived = _pipeline(
            backend="distributed", task_timeout=1.5
        ).run(entities)
        assert _fingerprint(survived) == reference

    def test_hang_plus_exhausted_budget_fails_cleanly(self, monkeypatch):
        entities = generate_products(120, seed=77)
        _arm(monkeypatch, "hang:2")
        with pytest.raises(
            DistributedExecutionError, match="exceeded task_timeout"
        ):
            _pipeline(
                backend="distributed", task_timeout=1.0, max_task_retries=0
            ).run(entities)


class TestWorkerRespawn:
    """Worker replacement under ``max_worker_respawns`` (the service
    pool's healing knob, surfaced on the distributed backend)."""

    def test_losing_every_initial_worker_heals_within_budget(self, monkeypatch):
        entities = generate_products(180, seed=78)
        reference = _fingerprint(_pipeline().run(entities))
        # Both original workers die at their first task.  Replacements
        # get fresh indices (>= the initial pool size), so the "0,1"
        # selection never re-arms them: the job must finish on the
        # respawned pool, byte-identical to serial.
        _arm(monkeypatch, "crash:1", workers="0,1")
        survived = _pipeline(
            backend="distributed", max_worker_respawns=4
        ).run(entities)
        assert _fingerprint(survived) == reference

    def test_exhausted_respawn_budget_fails_cleanly(self, monkeypatch):
        entities = generate_products(120, seed=79)
        # Every worker — respawned ones included — crashes immediately;
        # once the budget is gone the pool is empty and the job must
        # fail with a clean error instead of deadlocking.
        _arm(monkeypatch, "crash:1", workers="all")
        with pytest.raises(
            DistributedExecutionError,
            match="no workers survive|all workers were lost|"
                  "exhausted its retry budget",
        ):
            _pipeline(
                backend="distributed", max_worker_respawns=2
            ).run(entities)

    def test_negative_budget_rejected(self):
        entities = generate_products(20, seed=80)
        with pytest.raises(ValueError, match="max_worker_respawns"):
            _pipeline(backend="distributed", max_worker_respawns=-1).run(
                entities
            )


class TestFaultInjectorHook:
    """The env-hook parser itself (driven in-process, no sockets)."""

    def test_unarmed_by_default(self):
        assert FaultInjector(0, env={}).mode is None

    def test_armed_for_selected_worker_only(self):
        env = {ENV_FAULT: "crash:3", ENV_FAULT_WORKERS: "1,2"}
        assert FaultInjector(0, env=env).mode is None
        assert FaultInjector(1, env=env).mode == "crash"
        assert FaultInjector(2, env=env).at_task == 3

    def test_all_selects_every_worker(self):
        env = {ENV_FAULT: "hang:1", ENV_FAULT_WORKERS: "all"}
        for index in range(4):
            assert FaultInjector(index, env=env).mode == "hang"

    def test_default_selection_is_worker_zero(self):
        env = {ENV_FAULT: "crash:1"}
        assert FaultInjector(0, env=env).mode == "crash"
        assert FaultInjector(1, env=env).mode is None

    @pytest.mark.parametrize("spec", ["boom", "crash", "crash:0", "crash:x", "x:1"])
    def test_bad_specs_are_rejected_loudly(self, spec):
        with pytest.raises(SystemExit):
            FaultInjector(0, env={ENV_FAULT: spec})

    def test_bad_worker_selection_rejected(self):
        with pytest.raises(SystemExit):
            FaultInjector(
                0, env={ENV_FAULT: "crash:1", ENV_FAULT_WORKERS: "zero"}
            )

    def test_untripped_task_numbers_pass_through(self):
        injector = FaultInjector(0, env={ENV_FAULT: "crash:5"})
        for task_number in (1, 2, 3, 4, 6):
            injector.maybe_trip(task_number)  # must not exit
