"""Result persistence: save → load round trips, exactly.

The acceptance bar: for every strategy and backend, a result
round-tripped through ``save``/``load`` yields byte-identical matches
(ids *and* scores) and counters to the original — and the persisted
file alone is enough to replan analysis sweeps (`sweep_from_result`).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import bdm_from_result, sweep_from_result
from repro.cluster.simulation import ClusterSpec
from repro.core.bdm import BlockDistributionMatrix
from repro.core.two_source import DualSourceBDM
from repro.datasets.generators import generate_products
from repro.engine import ERPipeline, PipelineResult
from repro.engine.incremental import CorpusState, ingest
from repro.engine.persistence import (
    MATCH_LOG_FILE,
    PersistenceError,
    RESULT_FORMAT,
    RESULT_VERSION,
    STATE_FILE,
    STATE_FORMAT,
    STATE_VERSION,
    load_state,
    result_from_dict,
    result_to_dict,
    save_state,
    state_from_dict,
    state_to_dict,
)
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
BACKENDS = {
    "serial": {},
    "parallel": {"max_workers": 2, "executor": "thread"},
    "async": {"max_concurrency": 2},
    "planned": {},
}


def _pipeline(strategy, backend="serial", **kwargs):
    options = BACKENDS.get(backend, {})
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=4,
        **kwargs,
    ).with_backend(backend, **options)


def _match_tuples(matches):
    if matches is None:
        return None
    return [(pair.id1, pair.id2, pair.similarity) for pair in matches]


def _assert_equivalent(loaded, original):
    assert loaded.strategy == original.strategy
    assert loaded.backend == original.backend
    assert _match_tuples(loaded.matches) == _match_tuples(original.matches)
    assert loaded.reduce_comparisons() == original.reduce_comparisons()
    assert loaded.total_comparisons() == original.total_comparisons()
    assert loaded.map_output_kv() == original.map_output_kv()
    for name in ("job1", "job2"):
        loaded_job = getattr(loaded, name)
        original_job = getattr(original, name)
        if original_job is None:
            assert loaded_job is None
            continue
        assert loaded_job.counters == original_job.counters
        assert [t.counters.as_dict() for t in loaded_job.reduce_tasks] == [
            t.counters.as_dict() for t in original_job.reduce_tasks
        ]
        assert [t.input_records for t in loaded_job.map_tasks] == [
            t.input_records for t in original_job.map_tasks
        ]
    assert loaded.plan == original.plan
    assert loaded.bdm_plan == original.bdm_plan
    if original.bdm is None:
        assert loaded.bdm is None
    else:
        assert loaded.bdm.block_keys == original.bdm.block_keys
        assert loaded.bdm.pairs() == original.bdm.pairs()
    if original.timeline is None:
        assert loaded.timeline is None
    else:
        assert loaded.timeline == original.timeline


class TestRoundTrip:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_every_strategy_and_backend(self, strategy, backend, tmp_path):
        entities = generate_products(160, seed=51)
        original = _pipeline(strategy, backend).run(entities)
        path = original.save(tmp_path / "result.json")
        _assert_equivalent(PipelineResult.load(path), original)

    def test_two_source_result(self, tmp_path):
        r = generate_products(80, seed=52)
        s = generate_products(80, seed=53)
        original = _pipeline("blocksplit").run(r, s)
        loaded = PipelineResult.load(original.save(tmp_path / "dual.json"))
        _assert_equivalent(loaded, original)
        assert isinstance(loaded.bdm, DualSourceBDM)
        assert loaded.bdm.partition_sources == original.bdm.partition_sources

    def test_simulated_timeline_round_trips(self, tmp_path):
        original = _pipeline(
            "pairrange", cluster=ClusterSpec(num_nodes=4)
        ).run(generate_products(140, seed=54))
        assert original.timeline is not None
        loaded = PipelineResult.load(original.save(tmp_path / "timed.json"))
        assert loaded.timeline == original.timeline
        assert loaded.execution_time == original.execution_time

    def test_memory_budget_result_round_trips(self, tmp_path):
        original = _pipeline("blocksplit", memory_budget=16).run(
            generate_products(160, seed=55)
        )
        loaded = PipelineResult.load(original.save(tmp_path / "budget.json"))
        _assert_equivalent(loaded, original)

    def test_dict_round_trip_is_json_stable(self):
        original = _pipeline("blocksplit").run(generate_products(120, seed=56))
        data = result_to_dict(original)
        rewired = json.loads(json.dumps(data))
        _assert_equivalent(result_from_dict(rewired), original)

    def test_non_string_block_keys_round_trip(self):
        bdm = BlockDistributionMatrix(
            [("a", 1), 7, 2.5, "plain", None, True],
            [[2, 1], [3, 0], [1, 1], [0, 2], [1, 0], [0, 1]],
        )
        result = PipelineResult(
            strategy="blocksplit", backend="serial",
            matches=None, bdm=bdm, job1=None, job2=None,
        )
        loaded = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert loaded.bdm.block_keys == bdm.block_keys
        assert [type(k) for k in loaded.bdm.block_keys] == [
            type(k) for k in bdm.block_keys
        ]


class TestFormatGuards:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(PersistenceError, match="not a"):
            PipelineResult.load(path)

    def test_rejects_unknown_version(self, tmp_path):
        original = _pipeline("basic").run(generate_products(60, seed=57))
        data = result_to_dict(original)
        data["version"] = RESULT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError, match="version"):
            PipelineResult.load(path)

    def test_rejects_truncated_body(self, tmp_path):
        # Right header, missing body: still a PersistenceError, never a
        # bare KeyError leaking out of load().
        path = tmp_path / "truncated.json"
        path.write_text(
            json.dumps({"format": RESULT_FORMAT, "version": RESULT_VERSION})
        )
        with pytest.raises(PersistenceError, match="malformed"):
            PipelineResult.load(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "noise.json"
        path.write_text("definitely not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            PipelineResult.load(path)

    def test_header_fields_present(self):
        data = result_to_dict(
            _pipeline("basic").run(generate_products(60, seed=58))
        )
        assert data["format"] == RESULT_FORMAT
        assert data["version"] == RESULT_VERSION


class TestLoadErrorMessages:
    """Load failures must *explain themselves* — the message names the
    file or the offending header field, not just the error type."""

    def test_truncated_file_names_the_file(self, tmp_path):
        # A download cut off mid-document: valid prefix, no closing
        # brace.  The message carries the path so a user with many
        # result files knows which one is broken.
        original = _pipeline("basic").run(generate_products(60, seed=63))
        path = original.save(tmp_path / "cut.json")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert "not valid JSON" in message
        assert "cut.json" in message

    def test_wrong_format_reports_what_it_found(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "acme.results", "version": 1}))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert f"not a {RESULT_FORMAT} document" in message
        assert "format='acme.results'" in message

    def test_future_version_reports_both_versions(self, tmp_path):
        original = _pipeline("basic").run(generate_products(60, seed=64))
        data = result_to_dict(original)
        data["version"] = RESULT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert (
            f"unsupported {RESULT_FORMAT} version {RESULT_VERSION + 1}"
            in message
        )
        assert f"this build reads version {RESULT_VERSION}" in message

    def test_non_object_document_reports_its_type(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        assert "expected a JSON object, got list" in str(info.value)

    def test_broken_body_reports_version_and_cause(self, tmp_path):
        # Right header, hand-edited body: the message pins the format
        # version it tried to read and the underlying decode failure.
        original = _pipeline("basic").run(generate_products(60, seed=65))
        data = result_to_dict(original)
        del data["matches"]
        path = tmp_path / "edited.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert f"malformed {RESULT_FORMAT} v{RESULT_VERSION} document" in message
        assert "KeyError('matches')" in message


class TestSweepFromResult:
    def test_sweep_from_file_matches_sweep_from_object(self, tmp_path):
        original = _pipeline("blocksplit").run(generate_products(200, seed=59))
        path = original.save(tmp_path / "result.json")
        from_file = sweep_from_result(
            ["blocksplit", "pairrange"], [4, 8], path, num_nodes=4
        )
        from_object = sweep_from_result(
            ["blocksplit", "pairrange"], [4, 8], original, num_nodes=4
        )
        assert sorted(from_file) == [4, 8]
        for r in from_file:
            for name in from_file[r]:
                assert (
                    from_file[r][name].execution_time
                    == from_object[r][name].execution_time
                )
                assert from_file[r][name].total_pairs == original.bdm.pairs()

    def test_bdm_from_result_requires_a_bdm(self):
        basic = _pipeline("basic").run(generate_products(60, seed=60))
        assert basic.bdm is None
        with pytest.raises(ValueError, match="carries no BDM"):
            bdm_from_result(basic)

    def test_bdm_from_result_rejects_dual(self):
        dual = _pipeline("blocksplit").run(
            generate_products(60, seed=61), generate_products(60, seed=62)
        )
        with pytest.raises(ValueError, match="two-source"):
            bdm_from_result(dual)

    def test_no_bdm_error_message_is_stable(self):
        # Pinned verbatim: callers (and the CLI's 'simulate
        # --from-result' error path) rely on this exact explanation.
        basic = _pipeline("basic").run(generate_products(60, seed=66))
        with pytest.raises(ValueError) as info:
            bdm_from_result(basic)
        assert str(info.value) == (
            "result (strategy 'basic') carries no BDM — only BDM-based "
            "runs (blocksplit/pairrange) can seed sweeps"
        )

    def test_dual_error_message_is_stable(self):
        dual = _pipeline("pairrange").run(
            generate_products(50, seed=67), generate_products(50, seed=68)
        )
        with pytest.raises(ValueError) as info:
            bdm_from_result(dual)
        assert str(info.value) == (
            "two-source results cannot seed the one-source sweep planners"
        )

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_incremental_results_seed_sweeps(self, strategy, tmp_path):
        # A delta run always persists the *merged* BDM (old corpus
        # columns + the delta's), so incremental results replan the
        # whole corpus — for every strategy, including basic, whose
        # full runs carry no BDM at all.
        entities = generate_products(140, seed=69)
        pipeline = _pipeline(strategy)
        ingest(pipeline, entities[:90], tmp_path / "state")
        delta, _ = ingest(pipeline, entities[90:], tmp_path / "state")
        full = _pipeline("blocksplit").run(entities)
        assert bdm_from_result(delta).pairs() == full.bdm.pairs()
        path = delta.save(tmp_path / "delta.json")
        sweep = sweep_from_result(
            ["blocksplit", "pairrange"], [4, 8], path, num_nodes=4
        )
        assert sorted(sweep) == [4, 8]
        for r in sweep:
            for name in sweep[r]:
                assert sweep[r][name].total_pairs == full.bdm.pairs()


def _state_on_disk(tmp_path, *, splits=((0, 70), (70, 110))):
    """A two-ingest corpus state saved to disk; returns its directory."""
    entities = generate_products(110, seed=81)
    pipeline = _pipeline("blocksplit")
    directory = tmp_path / "corpus"
    for lo, hi in splits:
        ingest(pipeline, entities[lo:hi], directory)
    return directory


class TestStateRoundTrip:
    def test_save_load_round_trips_exactly(self, tmp_path):
        directory = _state_on_disk(tmp_path)
        state = load_state(directory)
        assert state.num_ingests == 2
        # A reload of a resave is byte-stable and equal field by field.
        save_state(state, tmp_path / "copy")
        again = load_state(tmp_path / "copy")
        assert state_to_dict(again) == state_to_dict(state)
        assert [
            (p.id1, p.id2, p.similarity) for p in again.matches
        ] == [(p.id1, p.id2, p.similarity) for p in state.matches]
        assert again.comparisons == state.comparisons
        assert (tmp_path / "copy" / STATE_FILE).read_bytes() == (
            directory / STATE_FILE
        ).read_bytes()

    def test_dict_round_trip_is_json_stable(self, tmp_path):
        state = load_state(_state_on_disk(tmp_path))
        data = json.loads(json.dumps(state_to_dict(state)))
        rebuilt = state_from_dict(data, state.match_log)
        assert state_to_dict(rebuilt) == state_to_dict(state)

    def test_uncommitted_trailing_log_lines_are_dropped(self, tmp_path):
        # A crash between the matches.log write and the state.json
        # commit leaves an extra trailing log line; loading ignores it.
        directory = _state_on_disk(tmp_path)
        before = load_state(directory)
        with (directory / MATCH_LOG_FILE).open("a") as handle:
            handle.write('[["ghost1","ghost2",1.0]]\n')
        after = load_state(directory)
        assert after.num_ingests == before.num_ingests
        assert [
            (p.id1, p.id2) for p in after.matches
        ] == [(p.id1, p.id2) for p in before.matches]

    def test_save_leaves_no_tmp_files(self, tmp_path):
        directory = _state_on_disk(tmp_path)
        assert sorted(p.name for p in directory.iterdir()) == [
            MATCH_LOG_FILE,
            STATE_FILE,
        ]


class TestStateLoadErrorMessages:
    """Corpus-state load failures must explain themselves, exactly as
    result-file failures do (same format/version/malformed grammar)."""

    def test_wrong_format_reports_what_it_found(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / STATE_FILE).write_text(
            json.dumps({"format": "acme.state", "version": 1})
        )
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        message = str(info.value)
        assert f"not a {STATE_FORMAT} document" in message
        assert "format='acme.state'" in message

    def test_future_version_reports_both_versions(self, tmp_path):
        # The version-bump drill: a state written by a newer build
        # names both the file's version and the one this build reads.
        directory = _state_on_disk(tmp_path)
        data = json.loads((directory / STATE_FILE).read_text())
        data["version"] = STATE_VERSION + 1
        (directory / STATE_FILE).write_text(json.dumps(data))
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        message = str(info.value)
        assert (
            f"unsupported {STATE_FORMAT} version {STATE_VERSION + 1}"
            in message
        )
        assert f"this build reads version {STATE_VERSION}" in message

    def test_non_object_document_reports_its_type(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / STATE_FILE).write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        assert "expected a JSON object, got list" in str(info.value)

    def test_truncated_state_file_names_the_file(self, tmp_path):
        directory = _state_on_disk(tmp_path)
        payload = (directory / STATE_FILE).read_bytes()
        (directory / STATE_FILE).write_bytes(payload[: len(payload) // 2])
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        message = str(info.value)
        assert "not valid JSON" in message
        assert STATE_FILE in message

    def test_corrupt_log_line_names_file_and_line(self, tmp_path):
        directory = _state_on_disk(tmp_path)
        with (directory / MATCH_LOG_FILE).open("a") as handle:
            handle.write("not json at all\n")
        log_lines = sum(
            1 for _ in (directory / MATCH_LOG_FILE).open()
        )
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        message = str(info.value)
        assert "not valid JSON" in message
        assert f"{MATCH_LOG_FILE}:{log_lines}" in message

    def test_missing_log_entries_are_malformed(self, tmp_path):
        # state.json promises two ingests; a truncated matches.log
        # cannot satisfy it — that is corruption, not a crash artifact.
        directory = _state_on_disk(tmp_path)
        (directory / MATCH_LOG_FILE).write_text("")
        with pytest.raises(PersistenceError) as info:
            load_state(directory)
        message = str(info.value)
        assert f"malformed {STATE_FORMAT} v{STATE_VERSION} document" in message
        assert "match log has 0 ingests, state expects 2" in message

    def test_mismatched_log_entry_count_is_malformed(self, tmp_path):
        directory = _state_on_disk(tmp_path)
        state = load_state(directory)
        truncated = state.match_log[0][:-1]
        with pytest.raises(PersistenceError) as info:
            state_from_dict(
                state_to_dict(state), (truncated,) + state.match_log[1:]
            )
        message = str(info.value)
        assert f"malformed {STATE_FORMAT} v{STATE_VERSION} document" in message
        assert (
            f"ingest 0 logged {len(truncated)} matches, state expects "
            f"{len(state.match_log[0])}" in message
        )

    def test_planned_result_cannot_advance_state(self):
        planned = _pipeline("pairrange", "planned").run(
            generate_products(60, seed=82)
        )
        with pytest.raises(ValueError, match="planned runs do not execute"):
            CorpusState.empty().advanced(planned, (), PrefixBlocking("title"))
