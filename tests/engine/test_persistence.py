"""Result persistence: save → load round trips, exactly.

The acceptance bar: for every strategy and backend, a result
round-tripped through ``save``/``load`` yields byte-identical matches
(ids *and* scores) and counters to the original — and the persisted
file alone is enough to replan analysis sweeps (`sweep_from_result`).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import bdm_from_result, sweep_from_result
from repro.cluster.simulation import ClusterSpec
from repro.core.bdm import BlockDistributionMatrix
from repro.core.two_source import DualSourceBDM
from repro.datasets.generators import generate_products
from repro.engine import ERPipeline, PipelineResult
from repro.engine.persistence import (
    PersistenceError,
    RESULT_FORMAT,
    RESULT_VERSION,
    result_from_dict,
    result_to_dict,
)
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher

ALL_STRATEGIES = ["basic", "blocksplit", "pairrange"]
BACKENDS = {
    "serial": {},
    "parallel": {"max_workers": 2, "executor": "thread"},
    "async": {"max_concurrency": 2},
    "planned": {},
}


def _pipeline(strategy, backend="serial", **kwargs):
    options = BACKENDS.get(backend, {})
    return ERPipeline(
        strategy,
        PrefixBlocking("title"),
        ThresholdMatcher("title", 0.8),
        num_map_tasks=3,
        num_reduce_tasks=4,
        **kwargs,
    ).with_backend(backend, **options)


def _match_tuples(matches):
    if matches is None:
        return None
    return [(pair.id1, pair.id2, pair.similarity) for pair in matches]


def _assert_equivalent(loaded, original):
    assert loaded.strategy == original.strategy
    assert loaded.backend == original.backend
    assert _match_tuples(loaded.matches) == _match_tuples(original.matches)
    assert loaded.reduce_comparisons() == original.reduce_comparisons()
    assert loaded.total_comparisons() == original.total_comparisons()
    assert loaded.map_output_kv() == original.map_output_kv()
    for name in ("job1", "job2"):
        loaded_job = getattr(loaded, name)
        original_job = getattr(original, name)
        if original_job is None:
            assert loaded_job is None
            continue
        assert loaded_job.counters == original_job.counters
        assert [t.counters.as_dict() for t in loaded_job.reduce_tasks] == [
            t.counters.as_dict() for t in original_job.reduce_tasks
        ]
        assert [t.input_records for t in loaded_job.map_tasks] == [
            t.input_records for t in original_job.map_tasks
        ]
    assert loaded.plan == original.plan
    assert loaded.bdm_plan == original.bdm_plan
    if original.bdm is None:
        assert loaded.bdm is None
    else:
        assert loaded.bdm.block_keys == original.bdm.block_keys
        assert loaded.bdm.pairs() == original.bdm.pairs()
    if original.timeline is None:
        assert loaded.timeline is None
    else:
        assert loaded.timeline == original.timeline


class TestRoundTrip:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", list(BACKENDS))
    def test_every_strategy_and_backend(self, strategy, backend, tmp_path):
        entities = generate_products(160, seed=51)
        original = _pipeline(strategy, backend).run(entities)
        path = original.save(tmp_path / "result.json")
        _assert_equivalent(PipelineResult.load(path), original)

    def test_two_source_result(self, tmp_path):
        r = generate_products(80, seed=52)
        s = generate_products(80, seed=53)
        original = _pipeline("blocksplit").run(r, s)
        loaded = PipelineResult.load(original.save(tmp_path / "dual.json"))
        _assert_equivalent(loaded, original)
        assert isinstance(loaded.bdm, DualSourceBDM)
        assert loaded.bdm.partition_sources == original.bdm.partition_sources

    def test_simulated_timeline_round_trips(self, tmp_path):
        original = _pipeline(
            "pairrange", cluster=ClusterSpec(num_nodes=4)
        ).run(generate_products(140, seed=54))
        assert original.timeline is not None
        loaded = PipelineResult.load(original.save(tmp_path / "timed.json"))
        assert loaded.timeline == original.timeline
        assert loaded.execution_time == original.execution_time

    def test_memory_budget_result_round_trips(self, tmp_path):
        original = _pipeline("blocksplit", memory_budget=16).run(
            generate_products(160, seed=55)
        )
        loaded = PipelineResult.load(original.save(tmp_path / "budget.json"))
        _assert_equivalent(loaded, original)

    def test_dict_round_trip_is_json_stable(self):
        original = _pipeline("blocksplit").run(generate_products(120, seed=56))
        data = result_to_dict(original)
        rewired = json.loads(json.dumps(data))
        _assert_equivalent(result_from_dict(rewired), original)

    def test_non_string_block_keys_round_trip(self):
        bdm = BlockDistributionMatrix(
            [("a", 1), 7, 2.5, "plain", None, True],
            [[2, 1], [3, 0], [1, 1], [0, 2], [1, 0], [0, 1]],
        )
        result = PipelineResult(
            strategy="blocksplit", backend="serial",
            matches=None, bdm=bdm, job1=None, job2=None,
        )
        loaded = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert loaded.bdm.block_keys == bdm.block_keys
        assert [type(k) for k in loaded.bdm.block_keys] == [
            type(k) for k in bdm.block_keys
        ]


class TestFormatGuards:
    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(PersistenceError, match="not a"):
            PipelineResult.load(path)

    def test_rejects_unknown_version(self, tmp_path):
        original = _pipeline("basic").run(generate_products(60, seed=57))
        data = result_to_dict(original)
        data["version"] = RESULT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError, match="version"):
            PipelineResult.load(path)

    def test_rejects_truncated_body(self, tmp_path):
        # Right header, missing body: still a PersistenceError, never a
        # bare KeyError leaking out of load().
        path = tmp_path / "truncated.json"
        path.write_text(
            json.dumps({"format": RESULT_FORMAT, "version": RESULT_VERSION})
        )
        with pytest.raises(PersistenceError, match="malformed"):
            PipelineResult.load(path)

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "noise.json"
        path.write_text("definitely not json")
        with pytest.raises(PersistenceError, match="not valid JSON"):
            PipelineResult.load(path)

    def test_header_fields_present(self):
        data = result_to_dict(
            _pipeline("basic").run(generate_products(60, seed=58))
        )
        assert data["format"] == RESULT_FORMAT
        assert data["version"] == RESULT_VERSION


class TestLoadErrorMessages:
    """Load failures must *explain themselves* — the message names the
    file or the offending header field, not just the error type."""

    def test_truncated_file_names_the_file(self, tmp_path):
        # A download cut off mid-document: valid prefix, no closing
        # brace.  The message carries the path so a user with many
        # result files knows which one is broken.
        original = _pipeline("basic").run(generate_products(60, seed=63))
        path = original.save(tmp_path / "cut.json")
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert "not valid JSON" in message
        assert "cut.json" in message

    def test_wrong_format_reports_what_it_found(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "acme.results", "version": 1}))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert f"not a {RESULT_FORMAT} document" in message
        assert "format='acme.results'" in message

    def test_future_version_reports_both_versions(self, tmp_path):
        original = _pipeline("basic").run(generate_products(60, seed=64))
        data = result_to_dict(original)
        data["version"] = RESULT_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert (
            f"unsupported {RESULT_FORMAT} version {RESULT_VERSION + 1}"
            in message
        )
        assert f"this build reads version {RESULT_VERSION}" in message

    def test_non_object_document_reports_its_type(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        assert "expected a JSON object, got list" in str(info.value)

    def test_broken_body_reports_version_and_cause(self, tmp_path):
        # Right header, hand-edited body: the message pins the format
        # version it tried to read and the underlying decode failure.
        original = _pipeline("basic").run(generate_products(60, seed=65))
        data = result_to_dict(original)
        del data["matches"]
        path = tmp_path / "edited.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PersistenceError) as info:
            PipelineResult.load(path)
        message = str(info.value)
        assert f"malformed {RESULT_FORMAT} v{RESULT_VERSION} document" in message
        assert "KeyError('matches')" in message


class TestSweepFromResult:
    def test_sweep_from_file_matches_sweep_from_object(self, tmp_path):
        original = _pipeline("blocksplit").run(generate_products(200, seed=59))
        path = original.save(tmp_path / "result.json")
        from_file = sweep_from_result(
            ["blocksplit", "pairrange"], [4, 8], path, num_nodes=4
        )
        from_object = sweep_from_result(
            ["blocksplit", "pairrange"], [4, 8], original, num_nodes=4
        )
        assert sorted(from_file) == [4, 8]
        for r in from_file:
            for name in from_file[r]:
                assert (
                    from_file[r][name].execution_time
                    == from_object[r][name].execution_time
                )
                assert from_file[r][name].total_pairs == original.bdm.pairs()

    def test_bdm_from_result_requires_a_bdm(self):
        basic = _pipeline("basic").run(generate_products(60, seed=60))
        assert basic.bdm is None
        with pytest.raises(ValueError, match="carries no BDM"):
            bdm_from_result(basic)

    def test_bdm_from_result_rejects_dual(self):
        dual = _pipeline("blocksplit").run(
            generate_products(60, seed=61), generate_products(60, seed=62)
        )
        with pytest.raises(ValueError, match="two-source"):
            bdm_from_result(dual)
