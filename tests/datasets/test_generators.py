"""Synthetic DS1/DS2 generators: determinism, blocking fidelity, duplicates."""

from __future__ import annotations

import pytest

from repro.datasets.generators import (
    DS1_PROFILE,
    DS2_PROFILE,
    DatasetProfile,
    ProductGenerator,
    PublicationGenerator,
    generate_products,
    generate_publications,
)
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher


class TestProfiles:
    def test_validation(self):
        with pytest.raises(ValueError):
            DatasetProfile("x", 0, 1, 1.0)
        with pytest.raises(ValueError):
            DatasetProfile("x", 10, 0, 1.0)
        with pytest.raises(ValueError):
            DatasetProfile("x", 10, 5, 1.0, duplicate_rate=1.0)

    def test_scaled(self):
        small = DS1_PROFILE.scaled(0.01)
        assert small.num_entities == 1_140
        assert small.zipf_exponent == DS1_PROFILE.zipf_exponent
        with pytest.raises(ValueError):
            DS1_PROFILE.scaled(0)

    def test_ds_profiles_match_paper_scale(self):
        assert DS1_PROFILE.num_entities == 114_000
        assert DS2_PROFILE.num_entities == 1_400_000


class TestProductGenerator:
    def _small(self, seed=42):
        return ProductGenerator(
            DatasetProfile("t", 800, 30, 1.2, seed=seed)
        )

    def test_deterministic(self):
        a = self._small().generate()
        b = self._small().generate()
        assert a == b

    def test_different_seed_differs(self):
        a = self._small(seed=1).generate()
        b = self._small(seed=2).generate()
        assert a != b

    def test_entity_count(self):
        assert len(self._small().generate()) == 800

    def test_prefix_blocks_match_declared_sizes(self):
        generator = self._small()
        entities = generator.generate()
        blocking = PrefixBlocking("title", 3)
        blocks = blocking.partition_entities(entities)
        observed = sorted((len(v) for v in blocks.values()), reverse=True)
        declared = sorted(generator.block_sizes(), reverse=True)
        assert observed == declared

    def test_attributes_present(self):
        entity = self._small().generate()[0]
        assert entity.get("title")
        assert entity.get("manufacturer")
        assert isinstance(entity.get("price"), float)

    def test_duplicates_are_findable(self):
        profile = DatasetProfile("t", 600, 20, 1.2, duplicate_rate=0.3, seed=7)
        entities = ProductGenerator(profile).generate()
        blocking = PrefixBlocking("title", 3)
        matcher = ThresholdMatcher()
        matches = 0
        for block in blocking.partition_entities(entities).values():
            for i, e1 in enumerate(block):
                for e2 in block[i + 1:]:
                    if matcher.match(e1, e2) is not None:
                        matches += 1
        assert matches > 0

    def test_shuffled_output_order(self):
        # Output order must not be sorted by blocking key (Figure 11's
        # "unsorted" default).
        entities = self._small().generate()
        keys = [PrefixBlocking("title").key_for(e) for e in entities]
        assert keys != sorted(keys, key=repr)


class TestPublicationGenerator:
    def test_attributes(self):
        profile = DatasetProfile("p", 200, 10, 1.6, seed=3)
        entity = PublicationGenerator(profile).generate()[0]
        assert entity.get("title")
        assert entity.get("authors")
        assert entity.get("venue")
        assert 1990 <= entity.get("year") <= 2011


class TestConvenienceFunctions:
    def test_generate_products(self):
        entities = generate_products(150, seed=9)
        assert len(entities) == 150
        ids = {e.entity_id for e in entities}
        assert len(ids) == 150

    def test_generate_publications(self):
        entities = generate_publications(150, seed=9)
        assert len(entities) == 150
