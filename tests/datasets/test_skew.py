"""Block-size distributions: apportioning, exponential skew, Zipf."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.skew import (
    apportion,
    exponential_block_sizes,
    largest_block_share,
    pair_count,
    zipf_block_sizes,
)


class TestApportion:
    def test_exact_sum(self):
        assert sum(apportion([1, 2, 3], 100)) == 100

    def test_proportionality(self):
        sizes = apportion([1, 1, 2], 400)
        assert sizes == [100, 100, 200]

    def test_zero_total(self):
        assert apportion([1, 2], 0) == [0, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            apportion([], 10)
        with pytest.raises(ValueError):
            apportion([-1, 2], 10)
        with pytest.raises(ValueError):
            apportion([0, 0], 10)
        with pytest.raises(ValueError):
            apportion([1], -1)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20)
        .filter(lambda ws: sum(ws) > 0),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_sum_and_fairness(self, weights, total):
        sizes = apportion(weights, total)
        assert sum(sizes) == total
        assert all(s >= 0 for s in sizes)
        # Largest-remainder: each size within 1 of its exact quota.
        weight_sum = sum(weights)
        for w, s in zip(weights, sizes):
            quota = w * total / weight_sum
            assert abs(s - quota) < 1 + 1e-9


class TestExponential:
    def test_skew_zero_is_uniform(self):
        sizes = exponential_block_sizes(1000, 100, 0.0)
        assert max(sizes) - min(sizes) <= 1

    def test_paper_example(self):
        # "two blocks with 25 entities each lead to 600 pairs; split
        #  45 vs 5 the number of pairs equals already 1,000."
        assert pair_count([25, 25]) == 600
        assert pair_count([45, 5]) == 1_000

    def test_higher_skew_more_pairs(self):
        pairs = [
            pair_count(exponential_block_sizes(10_000, 100, s))
            for s in (0.0, 0.2, 0.4, 0.8, 1.0)
        ]
        assert pairs == sorted(pairs)

    def test_size_ratio_follows_exponential(self):
        sizes = exponential_block_sizes(100_000, 10, 0.5)
        assert sizes[0] / sizes[1] == pytest.approx(math.exp(0.5), rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_block_sizes(10, 0)
        with pytest.raises(ValueError):
            exponential_block_sizes(10, 10, -1.0)


class TestZipf:
    def test_monotone_decreasing(self):
        sizes = zipf_block_sizes(10_000, 50, 1.2)
        assert sizes == sorted(sizes, reverse=True)

    def test_ds1_headline_statistics(self):
        # The calibration target: largest block > 70 % of pairs while
        # holding well under a quarter of the entities.
        sizes = zipf_block_sizes(114_000, 2_800, 1.2)
        entity_share, pair_share = largest_block_share(sizes)
        assert 0.15 < entity_share < 0.25
        assert pair_share > 0.70

    def test_exponent_zero_is_uniform(self):
        sizes = zipf_block_sizes(1000, 10, 0.0)
        assert max(sizes) - min(sizes) <= 1


class TestShares:
    def test_largest_block_share(self):
        entity_share, pair_share = largest_block_share([8, 2])
        assert entity_share == pytest.approx(0.8)
        assert pair_share == pytest.approx(28 / 29)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            largest_block_share([])

    def test_no_pairs(self):
        assert largest_block_share([1, 1]) == (0.5, 0.0)
