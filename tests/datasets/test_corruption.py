"""Duplicate injection with ground truth."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.corruption import (
    CorruptionConfig,
    abbreviate_token,
    corrupt_dataset,
    drop_character,
    drop_token,
    insert_character,
    swap_tokens,
    transpose,
    typo,
)
from repro.datasets.generators import generate_products
from repro.er.blocking import PrefixBlocking
from repro.er.similarity import levenshtein_distance


class TestCorruptors:
    def _rng(self):
        return random.Random(1)

    def test_typo_single_substitution(self):
        out = typo("abcdef", self._rng())
        assert len(out) == 6
        assert sum(a != b for a, b in zip(out, "abcdef")) <= 1

    def test_transpose_keeps_characters(self):
        out = transpose("abcdef", self._rng())
        assert sorted(out) == sorted("abcdef")

    def test_drop_character(self):
        assert len(drop_character("abcdef", self._rng())) == 5

    def test_insert_character(self):
        assert len(insert_character("abcdef", self._rng())) == 7

    def test_swap_tokens(self):
        out = swap_tokens("alpha beta gamma", self._rng())
        assert sorted(out.split()) == ["alpha", "beta", "gamma"]

    def test_abbreviate_token(self):
        out = abbreviate_token("alpha beta", self._rng())
        assert "." in out

    def test_drop_token(self):
        out = drop_token("alpha beta gamma", self._rng())
        assert len(out.split()) == 2

    def test_degenerate_inputs_pass_through(self):
        rng = self._rng()
        assert typo("", rng) == ""
        assert transpose("a", rng) == "a"
        assert drop_character("a", rng) == "a"
        assert swap_tokens("single", rng) == "single"
        assert drop_token("single", rng) == "single"


class TestCorruptDataset:
    def test_gold_pairs_match_copies(self):
        clean = generate_products(200, seed=1)
        corrupted = corrupt_dataset(
            clean, CorruptionConfig(duplicate_fraction=0.25, seed=5)
        )
        assert corrupted.num_duplicates == 50
        assert len(corrupted.entities) == 250
        for a, b in corrupted.gold_pairs:
            assert b.split(":")[1] == f"dup-{a.split(':')[1]}" or a.split(":")[
                1
            ] == f"dup-{b.split(':')[1]}"

    def test_protected_prefix_keeps_block(self):
        clean = generate_products(150, seed=2)
        corrupted = corrupt_dataset(
            clean, CorruptionConfig(duplicate_fraction=0.3, protect_prefix=3, seed=6)
        )
        blocking = PrefixBlocking("title", 3)
        by_id = {e.qualified_id: e for e in corrupted.entities}
        for a, b in corrupted.gold_pairs:
            assert blocking.key_for(by_id[a]) == blocking.key_for(by_id[b])

    def test_copies_stay_similar(self):
        from repro.datasets.corruption import drop_character, insert_character, typo

        clean = generate_products(100, seed=3)
        char_level = ((typo, 1.0), (insert_character, 1.0), (drop_character, 1.0))
        corrupted = corrupt_dataset(
            clean,
            CorruptionConfig(
                duplicate_fraction=0.5, max_edits=1, seed=7, corruptors=char_level
            ),
        )
        by_id = {e.qualified_id: e for e in corrupted.entities}
        for a, b in corrupted.gold_pairs:
            distance = levenshtein_distance(
                str(by_id[a].get("title")), str(by_id[b].get("title"))
            )
            assert 0 <= distance <= 1  # one character-level operator

    def test_missing_value_rate(self):
        clean = generate_products(100, seed=4)
        corrupted = corrupt_dataset(
            clean,
            CorruptionConfig(duplicate_fraction=0.5, missing_value_rate=1.0, seed=8),
        )
        dups = [e for e in corrupted.entities if e.entity_id.startswith("dup-")]
        assert dups
        for entity in dups:
            assert entity.get("price") is None
            assert entity.get("manufacturer") is None
            assert entity.get("title") is not None  # corrupted, not dropped

    def test_deterministic(self):
        clean = generate_products(80, seed=5)
        a = corrupt_dataset(clean, CorruptionConfig(seed=11))
        b = corrupt_dataset(clean, CorruptionConfig(seed=11))
        assert a.entities == b.entities
        assert a.gold_pairs == b.gold_pairs

    def test_validation(self):
        with pytest.raises(ValueError):
            CorruptionConfig(duplicate_fraction=1.5)
        with pytest.raises(ValueError):
            CorruptionConfig(max_edits=0)
        with pytest.raises(ValueError):
            CorruptionConfig(corruptors=())

    @given(
        fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_sizes_always_consistent(self, fraction, seed):
        clean = generate_products(60, seed=9)
        corrupted = corrupt_dataset(
            clean, CorruptionConfig(duplicate_fraction=fraction, seed=seed)
        )
        expected_copies = int(round(60 * fraction))
        assert len(corrupted.entities) == 60 + expected_copies
        assert corrupted.num_duplicates == expected_copies
