"""CSV round-trip for entity datasets."""

from __future__ import annotations

import pytest

from repro.datasets.generators import generate_products
from repro.datasets.loaders import (
    iter_entity_batches,
    load_entities_csv,
    save_entities_csv,
)
from repro.er.entity import Entity


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        entities = generate_products(50, seed=4)
        path = tmp_path / "products.csv"
        save_entities_csv(entities, path)
        loaded = load_entities_csv(path)
        assert len(loaded) == 50
        for original, restored in zip(entities, loaded):
            assert restored.entity_id == original.entity_id
            assert restored.source == original.source
            assert restored.get("title") == original.get("title")

    def test_none_attribute_round_trips(self, tmp_path):
        entities = [
            Entity("a", {"title": "x", "price": None}),
            Entity("b", {"title": None, "price": "9"}),
        ]
        path = tmp_path / "e.csv"
        save_entities_csv(entities, path)
        loaded = load_entities_csv(path)
        assert loaded[0].get("price") is None
        assert loaded[1].get("title") is None

    def test_source_override(self, tmp_path):
        entities = [Entity("a", {"t": "1"})]
        path = tmp_path / "e.csv"
        save_entities_csv(entities, path)
        loaded = load_entities_csv(path, source="S")
        assert loaded[0].source == "S"

    def test_union_of_attributes(self, tmp_path):
        entities = [Entity("a", {"x": "1"}), Entity("b", {"y": "2"})]
        path = tmp_path / "e.csv"
        save_entities_csv(entities, path)
        loaded = load_entities_csv(path)
        assert loaded[0].get("y") is None
        assert loaded[1].get("x") is None


class TestValidation:
    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_entities_csv([], tmp_path / "e.csv")

    def test_reserved_column_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_entities_csv([Entity("a", {"_id": "x"})], tmp_path / "e.csv")

    def test_missing_id_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("title\nfoo\n")
        with pytest.raises(ValueError, match="_id"):
            load_entities_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_entities_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("_id,_source,title\na,R,x,EXTRA\n")
        with pytest.raises(ValueError, match="columns"):
            load_entities_csv(path)


class TestBatches:
    def test_batching(self):
        entities = [Entity(str(i), {}) for i in range(7)]
        batches = list(iter_entity_batches(entities, 3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            list(iter_entity_batches([], 0))
