"""Input ordering and the analytic block-over-partition distributors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.partitioning import (
    distribute_block_sizes,
    order_entities,
    partition_entities,
)
from repro.er.entity import Entity


def titled(i, title):
    return Entity(f"e{i}", {"title": title})


class TestOrderEntities:
    def _entities(self):
        return [titled(0, "zebra"), titled(1, "apple"), titled(2, "mango")]

    def test_input_order_preserved(self):
        assert order_entities(self._entities(), "input") == self._entities()

    def test_sorted_by_title(self):
        ordered = order_entities(self._entities(), "sorted")
        assert [e["title"] for e in ordered] == ["apple", "mango", "zebra"]

    def test_shuffled_is_seeded(self):
        a = order_entities(self._entities(), "shuffled", seed=1)
        b = order_entities(self._entities(), "shuffled", seed=1)
        assert a == b

    def test_custom_sort_key(self):
        ordered = order_entities(
            self._entities(), "sorted", sort_key=lambda e: e.entity_id
        )
        assert [e.entity_id for e in ordered] == ["e0", "e1", "e2"]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            order_entities(self._entities(), "random")

    def test_partition_entities_roundtrip(self):
        parts = partition_entities(self._entities(), 2, "sorted")
        assert [len(p) for p in parts] == [2, 1]


class TestDistributeSorted:
    def test_blocks_stay_contiguous(self):
        matrix = distribute_block_sizes([4, 4], 2, order="sorted")
        assert matrix == [[4, 0], [0, 4]]

    def test_large_block_spans_partitions(self):
        matrix = distribute_block_sizes([10], 3, order="sorted")
        assert matrix == [[4, 3, 3]]

    def test_each_block_touches_few_partitions(self):
        # With b >> m, a sorted layout puts most blocks in 1-2 partitions.
        sizes = [10] * 50
        matrix = distribute_block_sizes(sizes, 5, order="sorted")
        touched = [sum(1 for c in row if c > 0) for row in matrix]
        assert max(touched) <= 2

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_marginals_preserved(self, sizes, m):
        matrix = distribute_block_sizes(sizes, m, order="sorted")
        assert [sum(row) for row in matrix] == sizes
        total = sum(sizes)
        column_sums = [sum(matrix[k][p] for k in range(len(sizes))) for p in range(m)]
        assert sum(column_sums) == total
        assert max(column_sums) - min(column_sums) <= 1 if total >= m else True


class TestDistributeShuffled:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_marginals_preserved(self, sizes, m, seed):
        matrix = distribute_block_sizes(sizes, m, order="shuffled", seed=seed)
        assert [sum(row) for row in matrix] == sizes
        total = sum(sizes)
        base, extra = divmod(total, m)
        column_sums = [sum(matrix[k][p] for k in range(len(sizes))) for p in range(m)]
        expected = [base + (1 if p < extra else 0) for p in range(m)]
        assert column_sums == expected

    def test_deterministic_per_seed(self):
        a = distribute_block_sizes([30, 20, 10], 4, seed=5)
        b = distribute_block_sizes([30, 20, 10], 4, seed=5)
        assert a == b

    def test_big_blocks_spread_over_partitions(self):
        matrix = distribute_block_sizes([10_000, 5_000], 10, seed=1)
        # A shuffled layout spreads each big block over every partition.
        assert all(c > 0 for c in matrix[0])
        assert all(c > 0 for c in matrix[1])
        # Roughly proportional spread: each partition holds ~1000 of block 0.
        assert max(matrix[0]) < 2 * min(matrix[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            distribute_block_sizes([1], 0)
        with pytest.raises(ValueError):
            distribute_block_sizes([-1], 2)
        with pytest.raises(ValueError):
            distribute_block_sizes([1], 2, order="bogus")
