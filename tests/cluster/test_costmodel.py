"""Cost model: task costs, length scaling, heterogeneity factors."""

from __future__ import annotations

import pytest

from repro.cluster.costmodel import CostModel, lognormal_speed_factors


class TestCostModel:
    def test_map_task_cost_components(self):
        model = CostModel(
            map_task_startup=1.0,
            map_cost_per_record=0.1,
            map_cost_per_output_kv=0.01,
        )
        assert model.map_task_cost(10, 100) == pytest.approx(1.0 + 1.0 + 1.0)

    def test_reduce_task_cost_components(self):
        model = CostModel(
            reduce_task_startup=1.0,
            shuffle_cost_per_kv=0.05,
            reduce_cost_per_input_kv=0.05,
            comparison_cost=0.001,
        )
        assert model.reduce_task_cost(10, 1000) == pytest.approx(1.0 + 1.0 + 1.0)

    def test_comparison_cost_scales_quadratically_with_length(self):
        model = CostModel(comparison_cost=1.0, reference_comparison_length=10)
        assert model.comparison_cost_for_length(20) == pytest.approx(4.0)
        assert model.comparison_cost_for_length(None) == 1.0

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            CostModel().comparison_cost_for_length(0)

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            CostModel(comparison_cost=-1.0)

    def test_scaled_preserves_fixed_overheads(self):
        model = CostModel()
        fast = model.scaled(0.5)
        assert fast.job_setup_time == model.job_setup_time
        assert fast.comparison_cost == pytest.approx(model.comparison_cost * 0.5)
        with pytest.raises(ValueError):
            model.scaled(0)

    def test_bdm_job_calibration_anchor(self):
        """Job 1 on DS1 (m=20, r=100, 10 nodes) lands near the paper's 35 s."""
        from repro.analysis import bdm_for_block_sizes
        from repro.cluster.simulation import ClusterSimulator, ClusterSpec
        from repro.core.planning import plan_bdm_job
        from repro.core.workflow import simulate_planned_workflow
        from repro.core.planning import plan_blocksplit
        from repro.datasets import zipf_block_sizes

        sizes = zipf_block_sizes(114_000, 2_800, 1.2)
        bdm = bdm_for_block_sizes(sizes, 20, seed=13)
        plan = plan_blocksplit(bdm, 100)
        bdm_plan = plan_bdm_job(bdm, 100)
        timeline = simulate_planned_workflow(
            plan, ClusterSpec(10), bdm_plan=bdm_plan
        )
        job1 = timeline.jobs[0].execution_time
        assert 25 <= job1 <= 45


class TestSpeedFactors:
    def test_sigma_zero_is_homogeneous(self):
        assert lognormal_speed_factors(5, 0.0) == [1.0] * 5

    def test_deterministic_per_seed(self):
        assert lognormal_speed_factors(8, 0.3, seed=1) == lognormal_speed_factors(
            8, 0.3, seed=1
        )
        assert lognormal_speed_factors(8, 0.3, seed=1) != lognormal_speed_factors(
            8, 0.3, seed=2
        )

    def test_all_positive(self):
        assert all(f > 0 for f in lognormal_speed_factors(100, 0.5))

    def test_median_near_one(self):
        factors = sorted(lognormal_speed_factors(1001, 0.3))
        assert 0.7 < factors[500] < 1.4

    def test_validation(self):
        with pytest.raises(ValueError):
            lognormal_speed_factors(0, 0.1)
        with pytest.raises(ValueError):
            lognormal_speed_factors(5, -0.1)
