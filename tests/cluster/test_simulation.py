"""Cluster simulator: FIFO scheduling, barriers, bounds, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import CostModel
from repro.cluster.simulation import (
    ClusterSimulator,
    ClusterSpec,
    TaskSpec,
    map_task_specs,
    reduce_task_specs,
)
from repro.cluster.timeline import makespan_lower_bound


def tasks(*costs):
    return [TaskSpec(f"t{i}", c) for i, c in enumerate(costs)]


class TestClusterSpec:
    def test_slot_totals(self):
        spec = ClusterSpec(num_nodes=3, map_slots_per_node=2, reduce_slots_per_node=4)
        assert spec.total_map_slots == 6
        assert spec.total_reduce_slots == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=2, node_speeds=(1.0,))
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=1, node_speeds=(0.0,))

    def test_speed_defaults_to_one(self):
        assert ClusterSpec(num_nodes=2).speed(1) == 1.0
        assert ClusterSpec(num_nodes=2, node_speeds=(1.0, 2.0)).speed(1) == 2.0


class TestPhaseScheduling:
    def test_single_slot_serialises(self):
        sim = ClusterSimulator(ClusterSpec(num_nodes=1, reduce_slots_per_node=1))
        phase = sim.simulate_phase("reduce", tasks(3, 2, 1), slots_per_node=1)
        assert phase.makespan == pytest.approx(6.0)
        assert phase.utilisation == pytest.approx(1.0)

    def test_parallel_slots(self):
        sim = ClusterSimulator(ClusterSpec(num_nodes=2, reduce_slots_per_node=1))
        phase = sim.simulate_phase("reduce", tasks(3, 3), slots_per_node=1)
        assert phase.makespan == pytest.approx(3.0)

    def test_fifo_order_not_lpt(self):
        # FIFO in task order: (1, 10, 1) on two slots -> slot0 runs 1
        # then 1, slot1 runs 10 -> makespan 10; LPT would also be 10
        # here, so use (10, 1, 10): FIFO -> slot0: 10, slot1: 1+10=11.
        sim = ClusterSimulator(ClusterSpec(num_nodes=1, reduce_slots_per_node=2))
        phase = sim.simulate_phase("reduce", tasks(10, 1, 10), slots_per_node=2)
        assert phase.makespan == pytest.approx(11.0)

    def test_straggler_dominates(self):
        sim = ClusterSimulator(ClusterSpec(num_nodes=5, reduce_slots_per_node=2))
        phase = sim.simulate_phase("reduce", tasks(100, *([1] * 20)), slots_per_node=2)
        assert phase.makespan == pytest.approx(100.0)
        assert phase.critical_task().name == "t0"

    def test_node_speed_scales_duration(self):
        fast = ClusterSpec(num_nodes=1, node_speeds=(2.0,))
        sim = ClusterSimulator(fast)
        phase = sim.simulate_phase("reduce", tasks(10), slots_per_node=1)
        assert phase.makespan == pytest.approx(5.0)

    def test_deterministic(self):
        sim = ClusterSimulator(ClusterSpec(num_nodes=3))
        t = tasks(5, 3, 8, 1, 9, 2, 7)
        p1 = sim.simulate_phase("reduce", t, slots_per_node=2)
        p2 = sim.simulate_phase("reduce", t, slots_per_node=2)
        assert p1 == p2

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_makespan_bounds(self, costs, nodes, slots):
        sim = ClusterSimulator(ClusterSpec(num_nodes=nodes))
        phase = sim.simulate_phase(
            "reduce", tasks(*costs), slots_per_node=slots
        )
        lower = makespan_lower_bound(costs, nodes * slots)
        assert phase.makespan >= lower - 1e-9
        # Greedy list scheduling never exceeds 2x the lower bound.
        assert phase.makespan <= 2 * lower + 1e-9
        assert phase.total_work == pytest.approx(sum(costs))


class TestJobSimulation:
    def test_reduce_waits_for_map_barrier(self):
        sim = ClusterSimulator(
            ClusterSpec(num_nodes=1), CostModel(job_setup_time=5.0)
        )
        job = sim.simulate_job("j", tasks(10, 1), tasks(2))
        assert job.map_phase.start == pytest.approx(5.0)
        assert job.reduce_phase.start == pytest.approx(job.map_phase.end)
        assert job.execution_time == pytest.approx(5.0 + 10.0 + 2.0)

    def test_workflow_chains_jobs(self):
        sim = ClusterSimulator(ClusterSpec(num_nodes=1), CostModel(job_setup_time=1.0))
        timeline = sim.simulate_workflow(
            [("a", tasks(2), tasks(3)), ("b", tasks(1), tasks(1))]
        )
        assert timeline.execution_time == pytest.approx((1 + 2 + 3) + (1 + 1 + 1))
        assert timeline.job("a").job_name == "a"
        with pytest.raises(KeyError):
            timeline.job("missing")


class TestTaskSpecBuilders:
    def test_map_task_specs(self):
        model = CostModel(map_task_startup=1, map_cost_per_record=1, map_cost_per_output_kv=0)
        specs = map_task_specs(model, [2, 3], [0, 0])
        assert [s.cost for s in specs] == [3, 4]

    def test_length_mismatch_rejected(self):
        model = CostModel()
        with pytest.raises(ValueError):
            map_task_specs(model, [1], [1, 2])
        with pytest.raises(ValueError):
            reduce_task_specs(model, [1], [1, 2])

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("t", -1.0)

    def test_comparison_noise_is_deterministic_and_median_one(self):
        model = CostModel()
        base = reduce_task_specs(model, [0] * 50, [10_000] * 50)
        noisy1 = reduce_task_specs(
            model, [0] * 50, [10_000] * 50, comparison_noise_sigma=0.3
        )
        noisy2 = reduce_task_specs(
            model, [0] * 50, [10_000] * 50, comparison_noise_sigma=0.3
        )
        assert [t.cost for t in noisy1] == [t.cost for t in noisy2]
        assert [t.cost for t in noisy1] != [t.cost for t in base]
        # Total work stays in the same ballpark (median-1 noise).
        assert sum(t.cost for t in noisy1) == pytest.approx(
            sum(t.cost for t in base), rel=0.5
        )

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            reduce_task_specs(CostModel(), [1], [1], comparison_noise_sigma=-0.1)
