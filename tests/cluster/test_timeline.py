"""Timelines: makespan, utilisation, speedup helpers."""

from __future__ import annotations

import pytest

from repro.cluster.timeline import (
    JobTimeline,
    PhaseTimeline,
    TaskExecution,
    makespan_lower_bound,
    speedup_series,
)


def execution(name, start, end, node=0, slot=0):
    return TaskExecution(name=name, node=node, slot=slot, start=start, end=end)


class TestTaskExecution:
    def test_duration(self):
        assert execution("t", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            execution("t", 2.0, 1.0)


class TestPhaseTimeline:
    def _phase(self):
        return PhaseTimeline(
            phase="reduce",
            start=0.0,
            executions=(
                execution("a", 0, 4, node=0),
                execution("b", 0, 2, node=1),
                execution("c", 2, 3, node=1),
            ),
            num_slots=2,
        )

    def test_makespan(self):
        assert self._phase().makespan == pytest.approx(4.0)

    def test_total_work(self):
        assert self._phase().total_work == pytest.approx(4 + 2 + 1)

    def test_utilisation(self):
        assert self._phase().utilisation == pytest.approx(7 / 8)

    def test_critical_task(self):
        assert self._phase().critical_task().name == "a"

    def test_empty_phase(self):
        phase = PhaseTimeline(phase="map", start=3.0, executions=(), num_slots=2)
        assert phase.makespan == 0.0
        assert phase.critical_task() is None
        assert phase.utilisation == 1.0

    def test_per_slot_busy_time(self):
        busy = self._phase().per_slot_busy_time()
        assert busy == {(0, 0): 4.0, (1, 0): 3.0}


class TestJobTimeline:
    def test_execution_time(self):
        job = JobTimeline(
            job_name="j",
            setup_time=2.0,
            map_phase=PhaseTimeline("map", 2.0, (execution("m", 2, 5),), 1),
            reduce_phase=PhaseTimeline("reduce", 5.0, (execution("r", 5, 9),), 1),
        )
        assert job.execution_time == pytest.approx(2 + 3 + 4)
        assert job.reduce_straggler.name == "r"


class TestHelpers:
    def test_speedup_series(self):
        assert speedup_series([10.0, 5.0, 2.5]) == [1.0, 2.0, 4.0]

    def test_speedup_empty(self):
        assert speedup_series([]) == []

    def test_speedup_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            speedup_series([0.0, 1.0])

    def test_lower_bound(self):
        assert makespan_lower_bound([4, 4, 4], 2) == pytest.approx(6.0)
        assert makespan_lower_bound([10, 1], 4) == pytest.approx(10.0)
        assert makespan_lower_bound([], 2) == 0.0
        with pytest.raises(ValueError):
            makespan_lower_bound([1], 0)
