"""The public API surface: imports resolve, __all__ is accurate,
the README quick-start works."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.mapreduce",
    "repro.cluster",
    "repro.er",
    "repro.core",
    "repro.datasets",
    "repro.analysis",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__")
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    import repro

    assert repro.__version__


def test_readme_quickstart():
    from repro import ERWorkflow, PrefixBlocking, generate_products

    entities = generate_products(400, seed=1)
    workflow = ERWorkflow(
        "blocksplit",
        PrefixBlocking("title"),
        num_map_tasks=4,
        num_reduce_tasks=8,
    )
    result = workflow.run(entities)
    assert len(result.matches) > 0


def test_strategy_registry_complete():
    from repro import STRATEGIES, get_strategy

    assert set(STRATEGIES) == {"basic", "blocksplit", "pairrange"}
    for name in STRATEGIES:
        assert get_strategy(name).name == name
