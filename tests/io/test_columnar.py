"""The columnar shard format: round-trips, layout errors, pickling.

The contract is CSV-parity: packing any source and reading it back
through :class:`ColumnarShardSource` yields exactly the entities the
CSV round-trip would yield — same null semantics ("" ⇄ ``None`` for
attributes), same shard boundaries, same order.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.datasets.generators import generate_products
from repro.datasets.loaders import save_entities_csv
from repro.er.entity import Entity
from repro.io import (
    ColumnarShardSource,
    CsvShardSource,
    InMemorySource,
    write_columnar,
)
from repro.io.columnar import MANIFEST_NAME


@pytest.fixture
def entities():
    return [
        Entity("a1", {"title": "hello world", "year": "2001"}),
        Entity("a2", {"title": "", "year": None}),
        Entity("a3", {"title": "naïve café ∑ 😀", "extra": "late column"}, "S"),
        Entity("a4", {"title": None}),
        Entity("a5", {"title": "x" * 80, "year": "1999"}),
    ]


class TestRoundTrip:
    def test_matches_csv_semantics(self, tmp_path, entities):
        """Pack → load ≡ CSV save → load, entity for entity."""
        csv_path = tmp_path / "d.csv"
        save_entities_csv(entities, csv_path)
        via_csv = list(CsvShardSource(csv_path, num_shards=2).iter_records())

        out = write_columnar(InMemorySource(entities, num_shards=2), tmp_path / "cols")
        source = ColumnarShardSource(out)
        assert list(source.iter_records()) == via_csv
        assert source.shard_sizes() == (3, 2)

    def test_shard_boundaries_preserved(self, tmp_path, entities):
        packed = InMemorySource(entities, num_shards=3)
        out = write_columnar(packed, tmp_path / "cols")
        source = ColumnarShardSource(out)
        assert source.num_shards == 3
        assert source.shard_sizes() == packed.shard_sizes()
        ids = [[e.entity_id for e in source.iter_shard(i)] for i in range(3)]
        assert ids == [["a1", "a2"], ["a3", "a4"], ["a5"]]

    def test_entity_list_is_one_shard(self, tmp_path, entities):
        out = write_columnar(entities, tmp_path / "cols")
        source = ColumnarShardSource(out)
        assert source.num_shards == 1
        assert [e.entity_id for e in source.iter_records()] == [
            e.entity_id for e in entities
        ]

    def test_generated_dataset(self, tmp_path):
        products = generate_products(300, seed=5)
        out = write_columnar(InMemorySource(products, num_shards=4), tmp_path / "c")
        loaded = list(ColumnarShardSource(out).iter_records())
        assert [e.entity_id for e in loaded] == [e.entity_id for e in products]
        assert all(
            loaded[i].get("title") == products[i].get("title")
            for i in range(len(products))
        )

    def test_source_tag_override(self, tmp_path, entities):
        out = write_columnar(entities, tmp_path / "cols")
        loaded = list(ColumnarShardSource(out, source="S").iter_records())
        assert all(e.source == "S" for e in loaded)

    def test_repeated_passes_are_identical(self, tmp_path, entities):
        out = write_columnar(entities, tmp_path / "cols")
        source = ColumnarShardSource(out)
        assert list(source.iter_records()) == list(source.iter_records())

    def test_close_then_reuse_reopens(self, tmp_path, entities):
        out = write_columnar(entities, tmp_path / "cols")
        source = ColumnarShardSource(out)
        first = list(source.iter_records())
        source.close()
        assert list(source.iter_records()) == first


class TestPickling:
    def test_pickles_after_maps_open(self, tmp_path, entities):
        """Serve ships sources inside pickled requests; the open maps
        must be dropped and lazily re-created on the other side."""
        out = write_columnar(entities, tmp_path / "cols")
        source = ColumnarShardSource(out)
        before = list(source.iter_records())  # force the mmaps open
        clone = pickle.loads(pickle.dumps(source))
        assert list(clone.iter_records()) == before


class TestWriteErrors:
    def test_refuses_overwrite(self, tmp_path, entities):
        out = write_columnar(entities, tmp_path / "cols")
        with pytest.raises(ValueError, match="already holds a columnar dataset"):
            write_columnar(entities, out)

    def test_rejects_empty_dataset(self, tmp_path):
        with pytest.raises(ValueError, match="empty dataset"):
            write_columnar([], tmp_path / "cols")

    def test_rejects_reserved_attribute_names(self, tmp_path):
        bad = [Entity("x", {"_id": "boom"})]
        with pytest.raises(ValueError, match="reserved"):
            write_columnar(bad, tmp_path / "cols")


class TestReadErrors:
    def _packed(self, tmp_path, entities):
        return write_columnar(entities, tmp_path / "cols")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="not a columnar dataset"):
            ColumnarShardSource(tmp_path)

    def test_invalid_manifest_json(self, tmp_path, entities):
        out = self._packed(tmp_path, entities)
        (out / MANIFEST_NAME).write_text("{nope")
        with pytest.raises(ValueError, match="invalid manifest"):
            ColumnarShardSource(out)

    def test_wrong_format_tag(self, tmp_path, entities):
        out = self._packed(tmp_path, entities)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["format"] = "parquet"
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="not a repro-er/columnar manifest"):
            ColumnarShardSource(out)

    def test_future_version_rejected(self, tmp_path, entities):
        out = self._packed(tmp_path, entities)
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        manifest["version"] = 2
        (out / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer than supported version 1"):
            ColumnarShardSource(out)

    def test_truncated_column_file(self, tmp_path, entities):
        out = self._packed(tmp_path, entities)
        column = out / "0.col"
        column.write_bytes(column.read_bytes()[:-3])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            list(ColumnarShardSource(out).iter_records())

    def test_missing_column_file(self, tmp_path, entities):
        out = self._packed(tmp_path, entities)
        (out / "1.col").unlink()
        with pytest.raises(ValueError, match="missing column file"):
            list(ColumnarShardSource(out).iter_records())
