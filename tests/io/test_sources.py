"""The streaming input layer: source equivalence and statistics.

The contract under test is the acceptance bar of the io subsystem:
whatever the input representation — in-memory list, CSV shards, or
generators — and whatever the shuffle buffering — unbounded or a tiny
spill budget — every registered strategy must produce byte-identical
matches and counters to the in-memory serial reference path.
"""

from __future__ import annotations

import pytest

from repro.core.bdm import analytic_bdm
from repro.core.statistics import bdm_statistics, bdm_statistics_from_counts
from repro.core.strategy import STRATEGIES
from repro.datasets.generators import generate_products
from repro.datasets.loaders import save_entities_csv
from repro.engine import ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.io import (
    CsvShardSource,
    GeneratorSource,
    InMemorySource,
    RecordSource,
    shard_bounds,
)
from repro.mapreduce.types import make_partitions

NUM_ENTITIES = 260
NUM_SHARDS = 4
BLOCKING = PrefixBlocking("title")


@pytest.fixture(scope="module")
def entities():
    return generate_products(NUM_ENTITIES, seed=71)


@pytest.fixture(scope="module")
def csv_path(entities, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "entities.csv"
    save_entities_csv(entities, path)
    return path


def _pipeline(strategy, **kwargs):
    return ERPipeline(
        strategy,
        BLOCKING,
        ThresholdMatcher("title", 0.8),
        num_map_tasks=NUM_SHARDS,
        num_reduce_tasks=5,
        **kwargs,
    )


def _sources(entities, csv_path) -> dict[str, RecordSource]:
    bounds = shard_bounds(len(entities), NUM_SHARDS)
    return {
        "in-memory": InMemorySource(entities, num_shards=NUM_SHARDS),
        "csv-shards": CsvShardSource(csv_path, num_shards=NUM_SHARDS),
        "generator": GeneratorSource(
            [
                (lambda lo=lo, hi=hi: iter(entities[lo:hi]))
                for lo, hi in bounds
            ]
        ),
    }


class TestShardBounds:
    def test_matches_make_partitions(self, entities):
        bounds = shard_bounds(len(entities), NUM_SHARDS)
        partitions = make_partitions(entities, NUM_SHARDS)
        assert [hi - lo for lo, hi in bounds] == [len(p) for p in partitions]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            shard_bounds(10, 0)


class TestSourceEquivalence:
    """Identical matches and counters for every registered strategy."""

    def test_every_source_matches_in_memory_reference(self, entities, csv_path):
        for strategy in sorted(STRATEGIES):
            reference = _pipeline(strategy).run(entities)
            for name, source in _sources(entities, csv_path).items():
                result = _pipeline(strategy).run(source)
                assert result.matches == reference.matches, (strategy, name)
                assert result.job2.counters == reference.job2.counters, (
                    strategy,
                    name,
                )
                if reference.job1 is not None:
                    assert result.job1.counters == reference.job1.counters, (
                        strategy,
                        name,
                    )

    def test_partitions_identical_to_make_partitions(self, entities, csv_path):
        expected = make_partitions(entities, NUM_SHARDS)
        for name, source in _sources(entities, csv_path).items():
            partitions = source.as_partitions()
            assert [len(p) for p in partitions] == [len(p) for p in expected], name
            got = [record.value for part in partitions for record in part]
            want = [record.value for part in expected for record in part]
            assert [e.entity_id for e in got] == [e.entity_id for e in want], name

    def test_memory_budget_is_equivalent(self, entities):
        reference = _pipeline("blocksplit").run(entities)
        budgeted = _pipeline("blocksplit", memory_budget=8).run(entities)
        assert budgeted.matches == reference.matches
        assert budgeted.job1.counters == reference.job1.counters
        assert budgeted.job2.counters == reference.job2.counters
        # The memory win: raw per-map-task outputs are not retained.
        assert all(task.output == () for task in budgeted.job2.map_tasks)
        assert all(task.output_records > 0 for task in budgeted.job2.map_tasks)

    def test_memory_budget_with_source_and_parallel_backend(
        self, entities, csv_path
    ):
        reference = _pipeline("pairrange").run(entities)
        result = _pipeline(
            "pairrange", memory_budget=16, backend="parallel"
        ).run(CsvShardSource(csv_path, num_shards=NUM_SHARDS))
        assert result.matches == reference.matches
        assert result.job2.counters == reference.job2.counters


class TestRequestValidation:
    def test_dual_with_bare_source_rejected(self, entities, csv_path):
        from repro.core.strategy import get_strategy
        from repro.engine.backend import PipelineRequest

        with pytest.raises(ValueError, match="two-source"):
            PipelineRequest(
                strategy=get_strategy("blocksplit"),
                blocking=BLOCKING,
                matcher=ThresholdMatcher("title", 0.8),
                partitions=(),
                num_reduce_tasks=4,
                dual=True,
                source=CsvShardSource(csv_path, num_shards=2),
            )


class TestPlannedStreaming:
    def test_planned_backend_streams_statistics(self, entities, csv_path):
        planned_mem = _pipeline("blocksplit", backend="planned").run(entities)
        planned_src = _pipeline("blocksplit", backend="planned").run(
            CsvShardSource(csv_path, num_shards=NUM_SHARDS)
        )
        assert planned_src.matches is None
        assert planned_src.reduce_comparisons() == planned_mem.reduce_comparisons()
        assert planned_src.map_output_kv() == planned_mem.map_output_kv()
        assert planned_src.bdm.pairs() == planned_mem.bdm.pairs()

    def test_planned_source_run_never_materializes(self, entities, csv_path):
        source = CsvShardSource(csv_path, num_shards=NUM_SHARDS)
        forbidden = RecordSource.as_partitions.__get__(source)

        def explode():  # pragma: no cover - only runs on regression
            raise AssertionError("planned backend materialized the source")

        source.as_partitions = explode  # type: ignore[method-assign]
        result = _pipeline("pairrange", backend="planned").run(source)
        assert result.plan is not None
        source.as_partitions = forbidden  # restore


class TestBlockStatistics:
    def test_stats_reproduce_the_analytic_bdm(self, entities, csv_path):
        expected = analytic_bdm(make_partitions(entities, NUM_SHARDS), BLOCKING)
        for name, source in _sources(entities, csv_path).items():
            stats = source.block_statistics(BLOCKING)
            bdm = stats.to_bdm()
            assert bdm.block_sizes() == expected.block_sizes(), name
            assert bdm.pairs() == expected.pairs(), name
            assert stats.total_records() == len(entities), name
            assert bdm_statistics_from_counts(
                stats.block_counts, stats.num_shards
            ) == bdm_statistics(expected), name

    def test_shard_sizes_stream(self, entities, csv_path):
        for name, source in _sources(entities, csv_path).items():
            assert sum(source.shard_sizes()) == len(entities), name
            assert len(source.shard_sizes()) == NUM_SHARDS, name


class TestCsvShardSource:
    def test_one_file_per_shard_layout(self, entities, tmp_path):
        bounds = shard_bounds(len(entities), 3)
        paths = []
        for i, (lo, hi) in enumerate(bounds):
            path = tmp_path / f"shard-{i}.csv"
            save_entities_csv(entities[lo:hi], path)
            paths.append(path)
        source = CsvShardSource(paths)
        assert source.num_shards == 3
        ids = [e.entity_id for e in source.iter_records()]
        assert ids == [e.entity_id for e in entities]

    def test_shard_count_validation(self, csv_path):
        with pytest.raises(ValueError, match="positive"):
            CsvShardSource(csv_path, num_shards=0)
        with pytest.raises(ValueError, match="contradicts"):
            CsvShardSource([csv_path], num_shards=2)
        with pytest.raises(ValueError, match="at least one"):
            CsvShardSource([])

    def test_shard_index_bounds(self, csv_path):
        source = CsvShardSource(csv_path, num_shards=2)
        with pytest.raises(IndexError):
            source.iter_shard(2)


class TestGeneratorSource:
    def test_factories_are_reinvoked_per_pass(self, entities):
        calls = []

        def factory():
            calls.append(1)
            return iter(entities[:10])

        source = GeneratorSource([factory])
        list(source.iter_shard(0))
        list(source.iter_shard(0))
        assert len(calls) == 2

    def test_requires_a_factory(self):
        with pytest.raises(ValueError, match="at least one"):
            GeneratorSource([])
