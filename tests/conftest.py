"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.er.blocking import BlockingFunction, CallableBlocking
from repro.er.entity import Entity


def make_entity(entity_id: str, key: str, source: str = "R", title: str | None = None) -> Entity:
    """An entity whose blocking key is controlled directly via the
    ``key`` attribute (used with :func:`key_blocking`)."""
    return Entity(
        entity_id,
        {"key": key, "title": title if title is not None else f"{key} item {entity_id}"},
        source,
    )


def key_blocking() -> BlockingFunction:
    """Blocking on the explicit ``key`` attribute."""
    return CallableBlocking(lambda e: e.get("key"), name="key")


def blocked_pairs(entities, blocking) -> set[tuple[str, str]]:
    """Reference: all distinct intra-block pairs (one source)."""
    blocks: dict[object, list[Entity]] = {}
    for entity in entities:
        key = blocking.key_for(entity)
        if key is None:
            continue
        blocks.setdefault(key, []).append(entity)
    pairs: set[tuple[str, str]] = set()
    for block in blocks.values():
        ids = [e.qualified_id for e in block]
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pairs.add(tuple(sorted((a, b))))
    return pairs


def blocked_cross_pairs(entities, blocking) -> set[tuple[str, str]]:
    """Reference: all distinct cross-source intra-block pairs."""
    blocks: dict[object, list[Entity]] = {}
    for entity in entities:
        key = blocking.key_for(entity)
        if key is None:
            continue
        blocks.setdefault(key, []).append(entity)
    pairs: set[tuple[str, str]] = set()
    for block in blocks.values():
        r_side = [e for e in block if e.source == "R"]
        s_side = [e for e in block if e.source == "S"]
        for a in r_side:
            for b in s_side:
                pairs.add(tuple(sorted((a.qualified_id, b.qualified_id))))
    return pairs


def random_keyed_entities(
    num_entities: int,
    num_keys: int,
    seed: int,
    *,
    skewed: bool = True,
    source: str = "R",
) -> list[Entity]:
    """Deterministic random entities over ``num_keys`` blocking keys.

    ``skewed=True`` draws keys with linearly decaying weights so some
    blocks are much bigger than others — the regime the paper targets.
    """
    rng = random.Random(seed)
    keys = [f"k{i}" for i in range(num_keys)]
    weights = (
        [num_keys - i for i in range(num_keys)] if skewed else [1] * num_keys
    )
    entities = []
    for i in range(num_entities):
        key = rng.choices(keys, weights=weights)[0]
        entities.append(make_entity(f"{source.lower()}{i}", key, source))
    return entities


@pytest.fixture
def small_entities() -> list[Entity]:
    """A compact skewed dataset: 40 entities over 5 keys."""
    return random_keyed_entities(40, 5, seed=101)


@pytest.fixture
def blocking() -> BlockingFunction:
    return key_blocking()
