"""Hot-path equivalence: the optimised pipeline is byte-identical to legacy.

PR 3 rebuilt the comparison hot path — bit-parallel Levenshtein kernel,
per-group prepared matching with an LRU verdict memo, packed-int
shuffle keys, and span-sliced pair enumeration.  None of that may be
*observable*: for every registered strategy, every backend, every
record-source type, and with or without a shuffle memory budget, the
matches (ids *and* scores), all per-task outputs, and every counter
must equal what the legacy configuration produces:

* reference two-row DP kernel (`levenshtein_similarity_bounded_reference`),
* per-pair attribute extraction (``prepared=False``, no memoisation),
* tuple sort/group keys (``packed_keys(False)``).
"""

from __future__ import annotations

import pytest

from repro.core.strategy import STRATEGIES
from repro.datasets.generators import generate_products
from repro.datasets.loaders import save_entities_csv
from repro.engine import ERPipeline
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher
from repro.er.similarity import levenshtein_similarity_bounded_reference
from repro.io import CsvShardSource, GeneratorSource, InMemorySource, shard_bounds
from repro.mapreduce.types import packed_keys

ALL_STRATEGIES = sorted(STRATEGIES)
DUAL_STRATEGIES = [
    name for name in ALL_STRATEGIES if STRATEGIES[name]().requires_bdm
]
NUM_ENTITIES = 180
NUM_SHARDS = 3
NUM_REDUCE = 5
THRESHOLD = 0.8


class _ReferenceSimilarity:
    """Picklable stand-in for the pre-optimisation scoring function."""

    def __init__(self, threshold: float):
        self.threshold = threshold

    def __call__(self, a: str, b: str) -> float:
        return levenshtein_similarity_bounded_reference(a, b, self.threshold)


def _matcher(legacy: bool) -> ThresholdMatcher:
    if legacy:
        return ThresholdMatcher(
            "title",
            THRESHOLD,
            _ReferenceSimilarity(THRESHOLD),
            prepared=False,
            memoize=0,
        )
    return ThresholdMatcher("title", THRESHOLD)


def _run(strategy, *, legacy, backend="serial", memory_budget=None, source=None,
         entities=None, dual=False):
    with packed_keys(not legacy):
        pipeline = ERPipeline(
            strategy,
            PrefixBlocking("title"),
            _matcher(legacy),
            num_map_tasks=NUM_SHARDS,
            num_reduce_tasks=NUM_REDUCE,
            backend=backend,
            memory_budget=memory_budget,
        )
        if dual:
            half = len(entities) // 2
            return pipeline.run(entities[:half], entities[half:])
        return pipeline.run(source if source is not None else entities)


def _job_fingerprint(job_result):
    if job_result is None:
        return None
    return (
        job_result.job_name,
        tuple(tuple(task.output) for task in job_result.map_tasks),
        tuple(tuple(task.output) for task in job_result.reduce_tasks),
        tuple(task.counters.as_dict() for task in job_result.map_tasks),
        tuple(task.counters.as_dict() for task in job_result.reduce_tasks),
        job_result.counters.as_dict(),
    )


def _fingerprint(result):
    matches = None
    if result.matches is not None:
        # Pair ids *and* similarity scores — matches must be
        # byte-identical, not merely set-equal.
        matches = tuple((p.id1, p.id2, p.similarity) for p in result.matches)
    return (
        result.strategy,
        matches,
        _job_fingerprint(result.job1),
        _job_fingerprint(result.job2),
        tuple(result.reduce_comparisons()),
        result.map_output_kv(),
    )


@pytest.fixture(scope="module")
def entities():
    return generate_products(NUM_ENTITIES, seed=83)


@pytest.fixture(scope="module")
def csv_path(entities, tmp_path_factory):
    path = tmp_path_factory.mktemp("hotpath") / "entities.csv"
    save_entities_csv(entities, path)
    return path


class TestStrategyBackendBudgetMatrix:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    @pytest.mark.parametrize("memory_budget", [None, 64])
    def test_executing_backends(self, entities, strategy, backend, memory_budget):
        new = _run(strategy, legacy=False, backend=backend,
                   memory_budget=memory_budget, entities=entities)
        old = _run(strategy, legacy=True, backend=backend,
                   memory_budget=memory_budget, entities=entities)
        assert _fingerprint(new) == _fingerprint(old)
        assert new.matches.pair_ids  # non-degenerate workload

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_planned_backend(self, entities, strategy):
        """Plans derive from BDM counts — invariant under the hot path."""
        new = _run(strategy, legacy=False, backend="planned", entities=entities)
        old = _run(strategy, legacy=True, backend="planned", entities=entities)
        assert new.plan == old.plan
        assert new.bdm_plan == old.bdm_plan
        assert new.reduce_comparisons() == old.reduce_comparisons()
        assert new.execution_time == old.execution_time
        # And the planned workload equals what execution measures.
        executed = _run(strategy, legacy=False, entities=entities)
        assert sorted(new.reduce_comparisons()) == sorted(
            executed.reduce_comparisons()
        )


class TestRecordSourceMatrix:
    def _sources(self, entities, csv_path):
        bounds = shard_bounds(len(entities), NUM_SHARDS)
        return {
            "in-memory": lambda: InMemorySource(entities, num_shards=NUM_SHARDS),
            "csv-shards": lambda: CsvShardSource(csv_path, num_shards=NUM_SHARDS),
            "generator": lambda: GeneratorSource(
                [(lambda lo=lo, hi=hi: iter(entities[lo:hi])) for lo, hi in bounds]
            ),
        }

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    @pytest.mark.parametrize("source_kind", ["in-memory", "csv-shards", "generator"])
    def test_all_sources(self, entities, csv_path, strategy, source_kind):
        make = self._sources(entities, csv_path)[source_kind]
        new = _run(strategy, legacy=False, source=make(), entities=entities)
        old = _run(strategy, legacy=True, source=make(), entities=entities)
        assert _fingerprint(new) == _fingerprint(old)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_source_with_budget(self, entities, strategy):
        source = InMemorySource(entities, num_shards=NUM_SHARDS)
        new = _run(strategy, legacy=False, source=source, memory_budget=48,
                   entities=entities)
        old = _run(strategy, legacy=True, source=source, memory_budget=48,
                   entities=entities)
        assert _fingerprint(new) == _fingerprint(old)


class TestTwoSourceMatrix:
    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    @pytest.mark.parametrize("memory_budget", [None, 64])
    def test_two_source(self, entities, strategy, memory_budget):
        new = _run(strategy, legacy=False, memory_budget=memory_budget,
                   entities=entities, dual=True)
        old = _run(strategy, legacy=True, memory_budget=memory_budget,
                   entities=entities, dual=True)
        assert _fingerprint(new) == _fingerprint(old)
        assert new.matches.pair_ids


class TestMemoisationObservability:
    def test_memo_cache_changes_nothing(self, entities):
        """With and without the LRU memo: identical results, fewer kernels."""
        base = _run("blocksplit", legacy=False, entities=entities)
        with packed_keys(True):
            pipeline = ERPipeline(
                "blocksplit",
                PrefixBlocking("title"),
                ThresholdMatcher("title", THRESHOLD, memoize=0),
                num_map_tasks=NUM_SHARDS,
                num_reduce_tasks=NUM_REDUCE,
            )
            no_memo = pipeline.run(entities)
        assert _fingerprint(base) == _fingerprint(no_memo)

    def test_cache_stats_exposed(self, entities):
        matcher = ThresholdMatcher("title", THRESHOLD)
        with packed_keys(True):
            ERPipeline(
                "blocksplit",
                PrefixBlocking("title"),
                matcher,
                num_map_tasks=NUM_SHARDS,
                num_reduce_tasks=NUM_REDUCE,
            ).run(entities)
        assert matcher.cache_misses > 0
        # Identity and length-filter short-circuits bypass the cache, so
        # cached-path comparisons are a subset of all comparisons.
        assert 0 < matcher.cache_hits + matcher.cache_misses <= matcher.comparisons
