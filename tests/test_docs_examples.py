"""Documentation examples must not rot.

Every ``>>>`` snippet in ``docs/*.md`` is executed as a doctest, and
every fenced ``python`` block in the README must at least compile.
The same checks run standalone in CI (``python -m doctest docs/*.md``);
this test keeps them inside the tier-1 suite as well.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md"))

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_docs_exist():
    names = {path.name for path in DOC_FILES}
    assert {"architecture.md", "api.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_snippets_run(path: Path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.attempted > 0, f"{path.name} has no doctest examples"
    assert results.failed == 0, f"{results.failed} doctest failures in {path.name}"


def test_readme_python_blocks_compile():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    blocks = _FENCED_PYTHON.findall(readme)
    assert blocks, "README has no python examples"
    for index, block in enumerate(blocks):
        # Quickstart blocks reference names introduced in prose; they
        # must parse, standalone execution is the docs/ files' job.
        compile(block, f"README.md[python block {index}]", "exec")
