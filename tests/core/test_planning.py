"""Planner = executor (DESIGN.md invariant 3).

The analytic planners must predict, *exactly*, the per-task counters
the executing MR jobs produce: comparisons per reduce task, KV records
per reduce task, KV records emitted per map task.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planning import (
    plan_basic,
    plan_bdm_job,
    plan_blocksplit,
    plan_pairrange,
)
from repro.core.workflow import ERWorkflow, analytic_bdm
from repro.er.matching import RecordingMatcher
from repro.mapreduce.counters import StandardCounter
from repro.mapreduce.types import make_partitions

from ..conftest import key_blocking, random_keyed_entities

PLANNERS = {
    "basic": plan_basic,
    "blocksplit": plan_blocksplit,
    "pairrange": plan_pairrange,
}


def executed_counts(strategy, entities, m, r):
    matcher = RecordingMatcher()
    workflow = ERWorkflow(
        strategy, key_blocking(), matcher, num_map_tasks=m, num_reduce_tasks=r
    )
    result = workflow.run(entities)
    return {
        "reduce_comparisons": result.reduce_comparisons(),
        "reduce_input_kv": [t.input_records for t in result.job2.reduce_tasks],
        "map_output_kv": [t.output_records for t in result.job2.map_tasks],
    }


class TestPlannerEqualsExecutor:
    @pytest.mark.parametrize("strategy", list(PLANNERS))
    @given(
        num_entities=st.integers(min_value=1, max_value=50),
        num_keys=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=10_000),
        m=st.integers(min_value=1, max_value=4),
        r=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_counters_match(self, strategy, num_entities, num_keys, seed, m, r):
        entities = random_keyed_entities(num_entities, num_keys, seed=seed)
        partitions = make_partitions(entities, m)
        bdm = analytic_bdm(partitions, key_blocking())
        plan = PLANNERS[strategy](bdm, r)
        executed = executed_counts(strategy, entities, m, r)
        assert list(plan.reduce_comparisons) == executed["reduce_comparisons"]
        assert list(plan.reduce_input_kv) == executed["reduce_input_kv"]
        assert list(plan.map_output_kv) == executed["map_output_kv"]

    @pytest.mark.parametrize("strategy", list(PLANNERS))
    def test_large_skewed_instance(self, strategy):
        entities = random_keyed_entities(300, 6, seed=99)
        partitions = make_partitions(entities, 5)
        bdm = analytic_bdm(partitions, key_blocking())
        plan = PLANNERS[strategy](bdm, 12)
        executed = executed_counts(strategy, entities, 5, 12)
        assert list(plan.reduce_comparisons) == executed["reduce_comparisons"]
        assert list(plan.reduce_input_kv) == executed["reduce_input_kv"]
        assert list(plan.map_output_kv) == executed["map_output_kv"]


class TestPlanProperties:
    def _bdm(self, seed=1, n=120, keys=5, m=4):
        entities = random_keyed_entities(n, keys, seed=seed)
        return analytic_bdm(make_partitions(entities, m), key_blocking())

    def test_total_pairs_consistent_across_strategies(self):
        bdm = self._bdm()
        plans = [planner(bdm, 6) for planner in PLANNERS.values()]
        totals = {p.total_comparisons for p in plans}
        assert totals == {bdm.pairs()}

    def test_basic_never_replicates(self):
        bdm = self._bdm()
        plan = plan_basic(bdm, 6)
        assert plan.total_map_output_kv == bdm.total_entities()
        assert plan.replication_factor == pytest.approx(1.0)

    def test_balanced_strategies_replicate_when_splitting(self):
        bdm = self._bdm()
        for planner in (plan_blocksplit, plan_pairrange):
            plan = planner(bdm, 6)
            assert plan.total_map_output_kv >= bdm.total_entities() - _singletons(bdm)

    def test_pairrange_workloads_differ_by_at_most_ppr(self):
        bdm = self._bdm()
        plan = plan_pairrange(bdm, 7)
        loads = [c for c in plan.reduce_comparisons]
        non_empty = [c for c in loads if c > 0]
        assert max(non_empty) - min(non_empty) <= max(non_empty)
        # All but the last non-empty range are exactly equal.
        assert len(set(non_empty[:-1])) <= 1

    def test_blocksplit_respects_lpt_bound(self):
        bdm = self._bdm(seed=17)
        plan = plan_blocksplit(bdm, 5)
        average = bdm.pairs() / 5
        # No reduce task exceeds average + largest block's pairs.
        largest = max(bdm.block_pairs(k) for k in range(bdm.num_blocks))
        assert plan.max_reduce_comparisons <= average + largest

    def test_map_output_grows_with_r_for_pairrange(self):
        # Figure 12: PairRange's map output grows ~linearly with r.
        bdm = self._bdm(seed=23, n=200)
        outputs = [plan_pairrange(bdm, r).total_map_output_kv for r in (2, 4, 8, 16)]
        assert outputs == sorted(outputs)
        assert outputs[-1] > outputs[0]

    def test_blocksplit_map_output_is_step_function_of_r(self):
        # Figure 12: BlockSplit's output depends only on *which* blocks
        # split; between split-set changes it is constant.
        bdm = self._bdm(seed=29, n=200)
        split_sets = {}
        outputs = {}
        from repro.core.match_tasks import generate_match_tasks

        for r in (2, 3, 4, 6, 8, 12):
            _tasks, split, _thr = generate_match_tasks(bdm, r)
            split_sets[r] = split
            outputs[r] = plan_blocksplit(bdm, r).total_map_output_kv
        for r1 in split_sets:
            for r2 in split_sets:
                if split_sets[r1] == split_sets[r2]:
                    assert outputs[r1] == outputs[r2]


def _singletons(bdm) -> int:
    return sum(
        bdm.size(k) for k in range(bdm.num_blocks) if bdm.block_pairs(k) == 0
    )


class TestBdmJobPlan:
    def test_matches_executed_bdm_job(self):
        from repro.core.bdm import compute_bdm
        from repro.mapreduce.runtime import LocalRuntime

        entities = random_keyed_entities(80, 5, seed=3)
        partitions = make_partitions(entities, 3)
        runtime = LocalRuntime()
        bdm, result, _annotated = compute_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=4
        )
        plan = plan_bdm_job(bdm, 4, use_combiner=True)
        assert list(plan.map_output_kv) == [
            t.output_records for t in result.map_tasks
        ]
        assert list(plan.reduce_input_kv) == [
            t.input_records for t in result.reduce_tasks
        ]

    def test_without_combiner_emits_one_kv_per_entity(self):
        entities = random_keyed_entities(40, 4, seed=4)
        partitions = make_partitions(entities, 2)
        bdm = analytic_bdm(partitions, key_blocking())
        plan = plan_bdm_job(bdm, 3, use_combiner=False)
        assert sum(plan.map_output_kv) == 40

    def test_raw_partition_sizes_override(self):
        entities = random_keyed_entities(40, 4, seed=4)
        partitions = make_partitions(entities, 2)
        bdm = analytic_bdm(partitions, key_blocking())
        plan = plan_bdm_job(bdm, 3, raw_partition_sizes=[100, 200])
        assert plan.map_input_records == (100, 200)
        with pytest.raises(ValueError):
            plan_bdm_job(bdm, 3, raw_partition_sizes=[100])
