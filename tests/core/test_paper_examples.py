"""The paper's running example (Figures 3-7), asserted number by number.

Data: 14 entities A-O over blocking keys w, x, y, z in two partitions

    Π0 = A(w) B(w) C(x) D(y) E(y) F(z) G(z)
    Π1 = H(w) J(w) K(x) L(y) M(z) N(z) O(z)

giving block sizes w:4, x:2, y:3, z:5 — the sizes that reproduce every
figure of Sections III-V (blocks sorted alphabetically get indexes
0..3, matching the paper's w→0 … z→3 assignment).
"""

from __future__ import annotations

import pytest

from repro.core.bdm import BlockDistributionMatrix, compute_bdm
from repro.core.blocksplit import BlockSplitJob
from repro.core.enumeration import PairEnumeration, PairRangeSpec
from repro.core.match_tasks import generate_match_tasks, plan_block_split
from repro.core.pairrange import PairRangeJob
from repro.core.planning import plan_blocksplit, plan_pairrange
from repro.er.matching import RecordingMatcher
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import Partition

from ..conftest import key_blocking, make_entity

PARTITION_0 = [("A", "w"), ("B", "w"), ("C", "x"), ("D", "y"), ("E", "y"), ("F", "z"), ("G", "z")]
PARTITION_1 = [("H", "w"), ("J", "w"), ("K", "x"), ("L", "y"), ("M", "z"), ("N", "z"), ("O", "z")]


def paper_partitions() -> list[Partition]:
    parts = []
    for index, rows in enumerate((PARTITION_0, PARTITION_1)):
        entities = [make_entity(eid, key) for eid, key in rows]
        parts.append(Partition.from_values(entities, index=index))
    return parts


def paper_bdm() -> BlockDistributionMatrix:
    runtime = LocalRuntime()
    bdm, _job, _annotated = compute_bdm(
        runtime, paper_partitions(), key_blocking(), num_reduce_tasks=3
    )
    return bdm


class TestFigure4Bdm:
    """Figure 4: the block distribution matrix of the running example."""

    def test_block_order_and_sizes(self):
        bdm = paper_bdm()
        assert bdm.block_keys == ["w", "x", "y", "z"]
        assert bdm.block_sizes() == [4, 2, 3, 5]

    def test_per_partition_counts(self):
        bdm = paper_bdm()
        expected = {
            ("w", 0): 2, ("w", 1): 2,
            ("x", 0): 1, ("x", 1): 1,
            ("y", 0): 2, ("y", 1): 1,
            ("z", 0): 2, ("z", 1): 3,
        }
        for (key, partition), count in expected.items():
            assert bdm.size(bdm.block_index(key), partition) == count

    def test_z_partition1_reduce_output(self):
        # "the last reduce task ... outputs [z, 1, 3]".
        bdm = paper_bdm()
        assert bdm.size(bdm.block_index("z"), 1) == 3

    def test_total_pairs_is_20(self):
        # "The match work ... ranges from 1 to 10 pair comparisons".
        bdm = paper_bdm()
        assert bdm.pairs() == 20
        assert [bdm.block_pairs(k) for k in range(4)] == [6, 1, 3, 10]

    def test_largest_block_half_of_comparisons(self):
        # "the largest block with key z entails 50% of all comparisons
        #  although it contains only 35% (5 of 14) of all entities."
        bdm = paper_bdm()
        z = bdm.block_index("z")
        assert bdm.block_pairs(z) / bdm.pairs() == pytest.approx(0.5)
        assert bdm.size(z) / bdm.total_entities() == pytest.approx(5 / 14)


class TestFigure5BlockSplit:
    """Figure 5 and Section IV's worked numbers."""

    def test_only_block_z_is_split(self):
        bdm = paper_bdm()
        tasks, split_blocks, threshold = generate_match_tasks(bdm, num_reduce_tasks=3)
        assert threshold == pytest.approx(20 / 3)
        assert split_blocks == {bdm.block_index("z")}

    def test_match_tasks_and_sizes(self):
        # Match tasks 3.0, 3.0×1, 3.1 with 1, 6, 3 comparisons.
        bdm = paper_bdm()
        tasks, _split, _threshold = generate_match_tasks(bdm, num_reduce_tasks=3)
        by_key = {t.key: t.comparisons for t in tasks}
        assert by_key == {
            (0, 0, 0): 6,   # 0.*
            (1, 0, 0): 1,   # 1.*
            (2, 0, 0): 3,   # 2.*
            (3, 0, 0): 1,   # 3.0
            (3, 1, 0): 6,   # 3.0×1 (stored as (k, max, min))
            (3, 1, 1): 3,   # 3.1
        }

    def test_greedy_assignment_loads(self):
        # "Each reduce task has to process between six and seven
        #  comparisons" — ordering 0.*, 3.0×1, 2.*, 3.1, 1.*, 3.0
        #  yields loads (7, 7, 6).
        assignment = plan_block_split(paper_bdm(), num_reduce_tasks=3)
        assert sorted(assignment.reduce_comparisons) == [6, 7, 7]
        assert sum(assignment.reduce_comparisons) == 20

    def test_map_emits_19_key_value_pairs(self):
        # "The replication of the five entities for the split block
        #  leads to 19 key-value pairs for the 14 input entities."
        bdm = paper_bdm()
        plan = plan_blocksplit(bdm, num_reduce_tasks=3)
        assert plan.total_map_output_kv == 19

        runtime = LocalRuntime()
        bdm2, _job, annotated = compute_bdm(
            runtime, paper_partitions(), key_blocking(), num_reduce_tasks=3
        )
        job = BlockSplitJob(bdm2, RecordingMatcher(), num_reduce_tasks=3)
        result = runtime.run(job, annotated, num_reduce_tasks=3)
        assert result.map_output_records() == 19


class TestFigures6And7PairRange:
    """Figure 6's enumeration and Figure 7's dataflow."""

    def test_ranges(self):
        spec = PairRangeSpec(20, 3)
        assert [spec.bounds(k) for k in range(3)] == [(0, 6), (7, 13), (14, 19)]

    def test_entity_m_emissions(self):
        # "map therefore outputs two tuples (1.3.2, M) and (2.3.2, M)".
        bdm = paper_bdm()
        runtime = LocalRuntime()
        bdm2, _job, annotated = compute_bdm(
            runtime, paper_partitions(), key_blocking(), num_reduce_tasks=3
        )
        job = PairRangeJob(bdm2, RecordingMatcher(), num_reduce_tasks=3)
        result = runtime.run(job, annotated, num_reduce_tasks=3)
        m_keys = sorted(
            record.key
            for task in result.map_tasks
            for record in task.output
            if record.value[0].entity_id == "M"
        )
        z = bdm.block_index("z")
        assert [tuple(k) for k in m_keys] == [(1, z, 2), (2, z, 2)]

    def test_second_reduce_task_receives_all_of_z(self):
        # "The second reduce task not only receives M but all entities
        #  of Φ3 (F, G, M, N, and O)."
        runtime = LocalRuntime()
        bdm, _job, annotated = compute_bdm(
            runtime, paper_partitions(), key_blocking(), num_reduce_tasks=3
        )
        job = PairRangeJob(bdm, RecordingMatcher(), num_reduce_tasks=3)
        result = runtime.run(job, annotated, num_reduce_tasks=3)
        z = bdm.block_index("z")
        task1_z_entities = {
            value[0].entity_id
            for record_key, value in _reduce_inputs(result, reduce_index=1)
            if record_key.block == z
        }
        assert task1_z_entities == {"F", "G", "M", "N", "O"}

    def test_third_reduce_task_misses_f(self):
        # "... the third reduce task which receives all entities of Φ3
        #  but F".
        runtime = LocalRuntime()
        bdm, _job, annotated = compute_bdm(
            runtime, paper_partitions(), key_blocking(), num_reduce_tasks=3
        )
        job = PairRangeJob(bdm, RecordingMatcher(), num_reduce_tasks=3)
        result = runtime.run(job, annotated, num_reduce_tasks=3)
        z = bdm.block_index("z")
        task2_z_entities = {
            value[0].entity_id
            for record_key, value in _reduce_inputs(result, reduce_index=2)
            if record_key.block == z
        }
        assert task2_z_entities == {"G", "M", "N", "O"}

    def test_reduce_workloads_7_7_6(self):
        bdm = paper_bdm()
        plan = plan_pairrange(bdm, num_reduce_tasks=3)
        assert list(plan.reduce_comparisons) == [7, 7, 6]

    def test_entity_index_of_m_is_2(self):
        # "M is the third entity of Φ3 and is thus assigned entity index 2."
        bdm = paper_bdm()
        z = bdm.block_index("z")
        assert bdm.entity_index_offset(z, 1) == 2


def _reduce_inputs(result, reduce_index):
    """Reconstruct (key, value) reduce inputs from the map outputs."""
    from repro.mapreduce.shuffle import partition_map_output

    job_outputs = [task.output for task in result.map_tasks]
    # Re-partition exactly like the job did: PairRangeKey.range_index.
    pairs = []
    for output in job_outputs:
        for record in output:
            if record.key.range_index == reduce_index:
                pairs.append((record.key, record.value))
    return pairs


class TestFullExampleCoverage:
    """Both strategies compare exactly the 20 pairs of the example."""

    @pytest.mark.parametrize("strategy", ["basic", "blocksplit", "pairrange"])
    def test_exactly_20_distinct_pairs(self, strategy):
        from repro.core.workflow import ERWorkflow

        matcher = RecordingMatcher()
        workflow = ERWorkflow(
            strategy, key_blocking(), matcher, num_map_tasks=2, num_reduce_tasks=3
        )
        workflow.run(paper_partitions())
        assert len(matcher.compared) == 20
        assert len(set(matcher.compared)) == 20
