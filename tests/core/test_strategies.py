"""The central correctness invariant for all strategies (one source):

for any input, partitioning, m and r, the multiset of compared pairs
equals the set of distinct intra-block pairs — nothing missed, nothing
compared twice (DESIGN.md invariant 1).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workflow import ERWorkflow
from repro.er.matching import AlwaysMatcher, RecordingMatcher
from repro.mapreduce.types import make_partitions

from ..conftest import (
    blocked_pairs,
    key_blocking,
    make_entity,
    random_keyed_entities,
)

STRATEGY_NAMES = ["basic", "blocksplit", "pairrange"]


def run_and_record(strategy, entities, m, r):
    matcher = RecordingMatcher()
    workflow = ERWorkflow(
        strategy, key_blocking(), matcher, num_map_tasks=m, num_reduce_tasks=r
    )
    result = workflow.run(entities)
    return matcher, result


entity_datasets = st.builds(
    random_keyed_entities,
    num_entities=st.integers(min_value=0, max_value=60),
    num_keys=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
    skewed=st.booleans(),
)


class TestPairCoverage:
    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    @given(
        entities=entity_datasets,
        m=st.integers(min_value=1, max_value=5),
        r=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=40, deadline=None)
    def test_each_qualifying_pair_compared_exactly_once(
        self, strategy, entities, m, r
    ):
        if not entities:
            return
        matcher, _result = run_and_record(strategy, entities, m, r)
        expected = blocked_pairs(entities, key_blocking())
        assert len(matcher.compared) == len(expected)
        assert set(matcher.compared) == expected

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_single_giant_block(self, strategy):
        entities = [make_entity(f"e{i}", "same") for i in range(25)]
        matcher, _ = run_and_record(strategy, entities, m=3, r=4)
        assert len(matcher.compared) == 25 * 24 // 2
        assert len(set(matcher.compared)) == 25 * 24 // 2

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_all_singleton_blocks(self, strategy):
        entities = [make_entity(f"e{i}", f"k{i}") for i in range(10)]
        matcher, _ = run_and_record(strategy, entities, m=2, r=3)
        assert matcher.compared == []

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_more_reduce_tasks_than_pairs(self, strategy):
        entities = [make_entity(f"e{i}", "k") for i in range(3)]
        matcher, _ = run_and_record(strategy, entities, m=2, r=50)
        assert set(matcher.compared) == blocked_pairs(entities, key_blocking())

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_single_reduce_task(self, strategy):
        entities = random_keyed_entities(30, 4, seed=77)
        matcher, _ = run_and_record(strategy, entities, m=3, r=1)
        assert set(matcher.compared) == blocked_pairs(entities, key_blocking())
        assert len(matcher.compared) == len(set(matcher.compared))

    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_one_map_task(self, strategy):
        entities = random_keyed_entities(30, 4, seed=78)
        matcher, _ = run_and_record(strategy, entities, m=1, r=4)
        assert set(matcher.compared) == blocked_pairs(entities, key_blocking())


class TestMatchOutput:
    @pytest.mark.parametrize("strategy", STRATEGY_NAMES)
    def test_always_matcher_returns_every_pair(self, strategy):
        entities = random_keyed_entities(25, 3, seed=5)
        workflow = ERWorkflow(
            strategy,
            key_blocking(),
            AlwaysMatcher(),
            num_map_tasks=2,
            num_reduce_tasks=4,
        )
        result = workflow.run(entities)
        assert result.matches.pair_ids == blocked_pairs(entities, key_blocking())

    def test_strategies_produce_identical_matches(self):
        entities = random_keyed_entities(40, 5, seed=6)
        results = {}
        for strategy in STRATEGY_NAMES:
            workflow = ERWorkflow(
                strategy,
                key_blocking(),
                AlwaysMatcher(),
                num_map_tasks=3,
                num_reduce_tasks=5,
            )
            results[strategy] = workflow.run(entities).matches
        assert results["basic"] == results["blocksplit"] == results["pairrange"]


class TestInputHandling:
    def test_accepts_prebuilt_partitions(self):
        entities = random_keyed_entities(20, 3, seed=8)
        partitions = make_partitions(entities, 4)
        matcher = RecordingMatcher()
        workflow = ERWorkflow("blocksplit", key_blocking(), matcher, num_reduce_tasks=3)
        workflow.run(partitions)
        assert set(matcher.compared) == blocked_pairs(entities, key_blocking())

    def test_entities_without_blocking_key_are_ignored(self):
        from repro.er.entity import Entity

        keyed = [make_entity(f"e{i}", "k") for i in range(4)]
        unkeyed = [Entity(f"u{i}", {"title": "t"}) for i in range(3)]
        matcher = RecordingMatcher()
        workflow = ERWorkflow(
            "pairrange", key_blocking(), matcher, num_map_tasks=2, num_reduce_tasks=2
        )
        workflow.run(keyed + unkeyed)
        assert set(matcher.compared) == blocked_pairs(keyed, key_blocking())
