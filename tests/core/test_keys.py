"""Composite-key semantics the shuffle relies on."""

from __future__ import annotations

from repro.core.keys import (
    BdmKey,
    BlockSplitKey,
    DualBlockSplitKey,
    DualPairRangeKey,
    PairRangeKey,
)


class TestSortOrder:
    def test_blocksplit_sorts_by_reduce_block_split(self):
        keys = [
            BlockSplitKey(1, 0, 0, 0),
            BlockSplitKey(0, 2, 1, 0),
            BlockSplitKey(0, 1, 1, 1),
            BlockSplitKey(0, 1, 0, 0),
        ]
        assert sorted(keys) == [
            BlockSplitKey(0, 1, 0, 0),
            BlockSplitKey(0, 1, 1, 1),
            BlockSplitKey(0, 2, 1, 0),
            BlockSplitKey(1, 0, 0, 0),
        ]

    def test_pairrange_sorts_entities_in_index_order(self):
        keys = [PairRangeKey(0, 1, 5), PairRangeKey(0, 1, 2), PairRangeKey(0, 0, 9)]
        assert sorted(keys) == [
            PairRangeKey(0, 0, 9),
            PairRangeKey(0, 1, 2),
            PairRangeKey(0, 1, 5),
        ]

    def test_dual_blocksplit_sorts_r_before_s(self):
        r_key = DualBlockSplitKey(0, 1, 0, 1, "R")
        s_key = DualBlockSplitKey(0, 1, 0, 1, "S")
        assert sorted([s_key, r_key]) == [r_key, s_key]

    def test_dual_pairrange_sorts_r_before_s_within_block(self):
        keys = [
            DualPairRangeKey(0, 1, "S", 0),
            DualPairRangeKey(0, 1, "R", 3),
            DualPairRangeKey(0, 1, "R", 1),
        ]
        assert sorted(keys) == [
            DualPairRangeKey(0, 1, "R", 1),
            DualPairRangeKey(0, 1, "R", 3),
            DualPairRangeKey(0, 1, "S", 0),
        ]


class TestProjections:
    def test_blocksplit_match_task(self):
        assert BlockSplitKey(4, 7, 1, 0).match_task == (7, 1, 0)

    def test_dual_blocksplit_match_task(self):
        assert DualBlockSplitKey(4, 7, 1, 0, "S").match_task == (7, 1, 0)

    def test_bdm_key_fields(self):
        key = BdmKey("abc", 3)
        assert key.block_key == "abc"
        assert key.partition_index == 3

    def test_keys_are_hashable_tuples(self):
        assert tuple(PairRangeKey(1, 2, 3)) == (1, 2, 3)
        assert len({BlockSplitKey(0, 0, 0, 0), BlockSplitKey(0, 0, 0, 0)}) == 1
