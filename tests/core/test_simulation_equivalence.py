"""Differential test: simulating executed counters == simulating plans.

For every strategy (and the dual-source variants) the cluster times
derived from a real run's counters must equal the times derived from
the analytic plan — they are, by construction, the same numbers.  Any
divergence means a planner bug the unit tests missed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.simulation import ClusterSpec
from repro.core.planning import (
    plan_basic,
    plan_bdm_job,
    plan_blocksplit,
    plan_pairrange,
)
from repro.core.workflow import (
    ERWorkflow,
    analytic_bdm,
    simulate_executed_workflow,
    simulate_planned_workflow,
)
from repro.er.matching import RecordingMatcher
from repro.mapreduce.types import make_partitions

from ..conftest import key_blocking, random_keyed_entities

PLANNERS = {
    "basic": plan_basic,
    "blocksplit": plan_blocksplit,
    "pairrange": plan_pairrange,
}


@pytest.mark.parametrize("strategy", list(PLANNERS))
@given(
    n=st.integers(min_value=1, max_value=60),
    keys=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=3_000),
    m=st.integers(min_value=1, max_value=4),
    r=st.integers(min_value=1, max_value=8),
    nodes=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_executed_equals_planned_simulation(strategy, n, keys, seed, m, r, nodes):
    entities = random_keyed_entities(n, keys, seed=seed)
    partitions = make_partitions(entities, m)
    workflow = ERWorkflow(
        strategy, key_blocking(), RecordingMatcher(),
        num_map_tasks=m, num_reduce_tasks=r,
    )
    result = workflow.run(partitions)
    cluster = ClusterSpec(num_nodes=nodes)
    executed = simulate_executed_workflow(result, cluster)

    bdm = analytic_bdm(partitions, key_blocking())
    plan = PLANNERS[strategy](bdm, r)
    bdm_plan = plan_bdm_job(bdm, r) if strategy != "basic" else None
    planned = simulate_planned_workflow(plan, cluster, bdm_plan=bdm_plan)
    assert executed.execution_time == pytest.approx(planned.execution_time, rel=1e-12)
    # Phase-level agreement, not just the total.
    for executed_job, planned_job in zip(executed.jobs, planned.jobs):
        assert executed_job.map_phase.makespan == pytest.approx(
            planned_job.map_phase.makespan, rel=1e-12
        )
        assert executed_job.reduce_phase.makespan == pytest.approx(
            planned_job.reduce_phase.makespan, rel=1e-12
        )


@pytest.mark.parametrize("strategy", ["blocksplit", "pairrange"])
def test_dual_executed_equals_planned_simulation(strategy):
    from repro.core.planning import plan_dual_blocksplit, plan_dual_pairrange

    planners = {
        "blocksplit": plan_dual_blocksplit,
        "pairrange": plan_dual_pairrange,
    }
    r_entities = random_keyed_entities(30, 4, seed=8, source="R")
    s_entities = random_keyed_entities(25, 4, seed=9, source="S")
    workflow = ERWorkflow(
        strategy, key_blocking(), RecordingMatcher(), num_reduce_tasks=5
    )
    result = workflow.run_two_source(
        r_entities, s_entities, num_r_partitions=2, num_s_partitions=2
    )
    cluster = ClusterSpec(num_nodes=3)
    executed = simulate_executed_workflow(result, cluster)
    plan = planners[strategy](result.bdm, 5)
    planned = simulate_planned_workflow(
        plan, cluster, bdm_plan=plan_bdm_job(result.bdm, 5)
    )
    assert executed.execution_time == pytest.approx(planned.execution_time, rel=1e-12)
