"""Sorted Neighborhood: coverage, boundary stitching, balance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sorted_neighborhood import (
    SnPlan,
    brute_force_sn_pairs,
    compute_sn_plan,
    sorted_neighborhood,
)
from repro.er.entity import Entity
from repro.er.matching import AlwaysMatcher, RecordingMatcher

from ..conftest import random_keyed_entities


def sort_key(entity: Entity):
    return str(entity.get("title") or "")


def titled(i: int, title: str) -> Entity:
    return Entity(f"e{i}", {"title": title})


class TestPlan:
    def test_quantile_boundaries(self):
        entities = [titled(i, f"t{i:03d}") for i in range(9)]
        plan = compute_sn_plan(entities, sort_key, 3)
        assert plan.num_partitions == 3
        assert plan.offsets == (0, 3, 6)
        assert [b[0] for b in plan.boundaries] == ["t003", "t006"]

    def test_more_partitions_than_entities(self):
        entities = [titled(i, f"t{i}") for i in range(2)]
        plan = compute_sn_plan(entities, sort_key, 5)
        assert plan.total == 2
        assert plan.num_partitions == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_sn_plan([], sort_key, 0)


class TestCoverage:
    @given(
        n=st.integers(min_value=0, max_value=50),
        window=st.integers(min_value=2, max_value=6),
        r=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_each_window_pair_compared_exactly_once(self, n, window, r, m, seed):
        entities = random_keyed_entities(n, 6, seed=seed)
        matcher = RecordingMatcher()
        sorted_neighborhood(
            entities,
            sort_key,
            window=window,
            matcher=matcher,
            num_map_tasks=m,
            num_reduce_tasks=r,
        )
        expected = brute_force_sn_pairs(entities, sort_key, window)
        assert len(matcher.compared) == len(expected)
        assert set(matcher.compared) == expected

    def test_single_reduce_task_no_boundary_pass(self):
        entities = [titled(i, f"t{i:02d}") for i in range(10)]
        matcher = RecordingMatcher()
        result = sorted_neighborhood(
            entities, sort_key, window=3, matcher=matcher, num_reduce_tasks=1
        )
        assert result.boundary_comparisons == 0
        assert len(matcher.compared) == len(
            brute_force_sn_pairs(entities, sort_key, 3)
        )

    def test_boundary_pairs_found(self):
        # Two duplicates adjacent in sort order but split across the
        # partition cut must still match.
        entities = [titled(i, f"t{i:02d}") for i in range(6)]
        matcher = AlwaysMatcher()
        result = sorted_neighborhood(
            entities, sort_key, window=2, matcher=matcher, num_reduce_tasks=3
        )
        # window=2: adjacent pairs only -> 5 matches, 2 of them at cuts.
        assert len(result.matches) == 5
        assert result.boundary_comparisons == 2

    def test_window_validated(self):
        with pytest.raises(ValueError):
            sorted_neighborhood(
                [titled(0, "a")], sort_key, window=1, matcher=AlwaysMatcher()
            )


class TestBalance:
    def test_sn_work_is_bounded_by_window(self):
        """SN's defining property: per-task work ≤ (run length)·(w−1),
        independent of key skew (the paper's §VII observation)."""
        # Heavily skewed titles: many identical keys.
        entities = [titled(i, "same") for i in range(40)] + [
            titled(100 + i, f"u{i}") for i in range(10)
        ]
        matcher = RecordingMatcher()
        window = 4
        result = sorted_neighborhood(
            entities, sort_key, window=window, matcher=matcher, num_reduce_tasks=5
        )
        run_length = 10  # 50 entities over 5 partitions
        for comparisons in result.reduce_comparisons:
            assert comparisons <= run_length * (window - 1)

    def test_comparisons_accounting(self):
        entities = [titled(i, f"t{i:02d}") for i in range(20)]
        matcher = RecordingMatcher()
        result = sorted_neighborhood(
            entities, sort_key, window=3, matcher=matcher, num_reduce_tasks=4
        )
        assert result.comparisons == len(matcher.compared)
        assert result.comparisons == (
            sum(result.reduce_comparisons) + result.boundary_comparisons
        )
