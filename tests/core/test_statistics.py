"""BDM skew statistics and the strategy recommendation rule."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import bdm_for_block_sizes
from repro.core.bdm import BlockDistributionMatrix
from repro.core.statistics import (
    bdm_statistics,
    recommend_strategy,
)
from repro.datasets.skew import exponential_block_sizes, zipf_block_sizes


def uniform_bdm(num_blocks=20, size=10, m=4):
    return bdm_for_block_sizes([size] * num_blocks, m, seed=3)


def skewed_bdm(m=4):
    return bdm_for_block_sizes(zipf_block_sizes(5_000, 50, 1.3), m, seed=3)


class TestStatistics:
    def test_uniform_profile(self):
        stats = bdm_statistics(uniform_bdm())
        assert stats.num_entities == 200
        assert stats.num_blocks == 20
        assert stats.largest_block_entity_share == pytest.approx(0.05)
        assert stats.gini_coefficient == pytest.approx(0.0, abs=1e-9)
        assert stats.mean_block_size == 10
        assert stats.median_block_size == 10

    def test_skewed_profile(self):
        stats = bdm_statistics(skewed_bdm())
        assert stats.gini_coefficient > 0.5
        assert stats.largest_block_pair_share > 0.5
        assert stats.top10_pair_share > stats.largest_block_pair_share

    def test_single_block(self):
        bdm = BlockDistributionMatrix(["a"], [[5, 5]])
        stats = bdm_statistics(bdm)
        assert stats.largest_block_entity_share == 1.0
        assert stats.largest_block_pair_share == 1.0

    def test_gini_increases_with_skew(self):
        # High skews apportion zero entities to tail blocks, which the
        # BDM drops, so monotonicity holds only approximately there.
        ginis = []
        for skew in (0.0, 0.3, 0.6, 1.0):
            sizes = exponential_block_sizes(10_000, 100, skew)
            ginis.append(bdm_statistics(bdm_for_block_sizes(sizes, 4)).gini_coefficient)
        assert ginis[0] < ginis[1] < ginis[2]
        assert ginis[3] > ginis[1]
        assert ginis[3] == pytest.approx(ginis[2], abs=0.05)

    def test_as_dict(self):
        stats = bdm_statistics(uniform_bdm())
        d = stats.as_dict()
        assert d["blocks"] == 20.0
        assert set(d) >= {"pairs", "gini_coefficient", "largest_block_pair_share"}


class TestRecommendation:
    def test_uniform_data_recommends_basic(self):
        rec = recommend_strategy(uniform_bdm(num_blocks=64, size=10), 8)
        assert rec.strategy == "basic"
        assert rec.expected_basic_imbalance <= 1.5

    def test_skewed_data_recommends_blocksplit(self):
        rec = recommend_strategy(skewed_bdm(), 20)
        assert rec.strategy == "blocksplit"
        assert rec.expected_basic_imbalance > 1.5

    def test_sorted_input_recommends_pairrange(self):
        rec = recommend_strategy(skewed_bdm(), 20, input_sorted_by_key=True)
        assert rec.strategy == "pairrange"

    def test_degenerate_block_recommends_pairrange(self):
        bdm = bdm_for_block_sizes([1_000, 3, 3, 3], 4, seed=1)
        rec = recommend_strategy(bdm, 16)
        assert rec.strategy == "pairrange"
        assert rec.largest_block_pair_share > 0.9

    def test_reasons_present(self):
        rec = recommend_strategy(skewed_bdm(), 20)
        assert rec.reasons
        assert all(isinstance(reason, str) for reason in rec.reasons)

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_strategy(uniform_bdm(), 0)
