"""The Section III / Appendix I decomposition for keyless entities."""

from __future__ import annotations

import pytest

from repro.core.missing_keys import (
    link_with_missing_keys,
    resolve_with_missing_keys,
    split_by_key,
)
from repro.er.blocking import PrefixBlocking
from repro.er.entity import Entity
from repro.er.matching import AlwaysMatcher


def keyed(eid, title, source="R"):
    return Entity(eid, {"title": title}, source)


def keyless(eid, source="R"):
    return Entity(eid, {"title": None}, source)


BLOCKING = PrefixBlocking("title", 3)


class TestSplit:
    def test_split_by_key(self):
        entities = [keyed("a", "alpha"), keyless("b"), keyed("c", "beta")]
        with_key, without_key = split_by_key(entities, BLOCKING)
        assert [e.entity_id for e in with_key] == ["a", "c"]
        assert [e.entity_id for e in without_key] == ["b"]


class TestOneSource:
    @pytest.mark.parametrize("strategy", ["blocksplit", "pairrange"])
    def test_all_pairs_involving_keyless_entities(self, strategy):
        entities = [
            keyed("a", "alpha one"),
            keyed("b", "alpha two"),
            keyed("c", "beta"),
            keyless("x"),
            keyless("y"),
        ]
        result = resolve_with_missing_keys(
            entities,
            BLOCKING,
            strategy=strategy,
            matcher_factory=AlwaysMatcher,
            num_reduce_tasks=3,
        )
        # Expected: blocked pairs among keyed (a-b) plus every pair
        # involving x or y.
        expected = {
            ("R:a", "R:b"),
            ("R:a", "R:x"), ("R:b", "R:x"), ("R:c", "R:x"),
            ("R:a", "R:y"), ("R:b", "R:y"), ("R:c", "R:y"),
            ("R:x", "R:y"),
        }
        assert result.pair_ids == expected

    def test_no_keyless_entities_is_plain_blocked_matching(self):
        entities = [keyed("a", "alpha one"), keyed("b", "alpha two"), keyed("c", "beta")]
        result = resolve_with_missing_keys(
            entities, BLOCKING, matcher_factory=AlwaysMatcher
        )
        assert result.pair_ids == {("R:a", "R:b")}

    def test_all_keyless_is_cartesian(self):
        entities = [keyless("x"), keyless("y"), keyless("z")]
        result = resolve_with_missing_keys(
            entities, BLOCKING, matcher_factory=AlwaysMatcher
        )
        assert len(result) == 3


class TestTwoSources:
    @pytest.mark.parametrize("strategy", ["blocksplit", "pairrange"])
    def test_appendix_union(self, strategy):
        r_entities = [
            keyed("r1", "alpha", "R"),
            keyed("r2", "beta", "R"),
            keyless("r3", "R"),
        ]
        s_entities = [
            keyed("s1", "alpha", "S"),
            keyed("s2", "gamma", "S"),
            keyless("s3", "S"),
        ]
        result = link_with_missing_keys(
            r_entities,
            s_entities,
            BLOCKING,
            strategy=strategy,
            matcher_factory=AlwaysMatcher,
            num_reduce_tasks=3,
        )
        expected = {
            # matchB(R−R∅, S−S∅): alpha block only.
            ("R:r1", "S:s1"),
            # match⊥(R, S∅): every R entity × s3.
            ("R:r1", "S:s3"), ("R:r2", "S:s3"), ("R:r3", "S:s3"),
            # match⊥(R∅, S−S∅): r3 × keyed S.
            ("R:r3", "S:s1"), ("R:r3", "S:s2"),
        }
        assert result.pair_ids == expected

    def test_cross_source_only(self):
        # Same-source pairs must never appear, keyless or not.
        r_entities = [keyless("r1", "R"), keyless("r2", "R")]
        s_entities = [keyed("s1", "alpha", "S")]
        result = link_with_missing_keys(
            r_entities, s_entities, BLOCKING, matcher_factory=AlwaysMatcher
        )
        assert result.pair_ids == {("R:r1", "S:s1"), ("R:r2", "S:s1")}
