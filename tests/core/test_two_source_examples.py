"""Appendix I's worked example (Figures 15-17), structural assertions.

Data modelled on Figure 15(a): source R in partition Π0, source S in
partitions Π1, Π2; blocking keys w-z with

    Φ(w): |R|=2, |S|=2  ->  4 pairs   (unsplit, 4 = avg workload)
    Φ(y): |R|=1, |S|=0  ->  0 pairs   (not considered)
    Φ(x): |R|=1, |S|=2  ->  2 pairs   (unsplit)
    Φ(z): |R|=2, |S|=3  ->  6 pairs   (split into 2 cross tasks)

for 12 total pairs, matching the paper's "The BDM indicates 12 overall
pairs so that the average reduce workload equals 4 pairs" and the split
of the largest block into tasks of 4 and 2 pairs.
"""

from __future__ import annotations

import pytest

from repro.core.planning import plan_dual_blocksplit, plan_dual_pairrange
from repro.core.two_source import compute_dual_bdm, generate_dual_match_tasks
from repro.core.enumeration import DualPairEnumeration, PairRangeSpec
from repro.core.match_tasks import assign_greedy
from repro.core.workflow import ERWorkflow
from repro.er.matching import RecordingMatcher
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import Partition

from ..conftest import key_blocking, make_entity

# Π0 (R): A(w) B(w) C(z) D(z) E(y) F(x)
# Π1 (S): G(w) H(w) J(z) K(z)
# Π2 (S): L(x) M(x) N(z)
PARTITION_R0 = [("A", "w"), ("B", "w"), ("C", "z"), ("D", "z"), ("E", "y"), ("F", "x")]
PARTITION_S1 = [("G", "w"), ("H", "w"), ("J", "z"), ("K", "z")]
PARTITION_S2 = [("L", "x"), ("M", "x"), ("N", "z")]


def example_partitions() -> list[Partition]:
    parts = []
    for index, (rows, source) in enumerate(
        ((PARTITION_R0, "R"), (PARTITION_S1, "S"), (PARTITION_S2, "S"))
    ):
        entities = [make_entity(eid, key, source) for eid, key in rows]
        parts.append(Partition.from_values(entities, index=index))
    return parts


def example_bdm():
    runtime = LocalRuntime()
    bdm, _job, annotated = compute_dual_bdm(
        runtime, example_partitions(), key_blocking(), num_reduce_tasks=3
    )
    return bdm, runtime, annotated


class TestFigure15Bdm:
    def test_12_total_pairs(self):
        bdm, _rt, _ann = example_bdm()
        assert bdm.pairs() == 12

    def test_per_block_cross_pairs(self):
        bdm, _rt, _ann = example_bdm()
        by_key = {
            bdm.key_of(k): bdm.block_pairs(k) for k in range(bdm.num_blocks)
        }
        assert by_key == {"w": 4, "x": 2, "y": 0, "z": 6}

    def test_block_y_has_no_s_entities(self):
        bdm, _rt, _ann = example_bdm()
        y = bdm.block_index("y")
        assert bdm.size_r(y) == 1
        assert bdm.size_s(y) == 0


class TestFigure16BlockSplit:
    def test_largest_block_split_into_two_cross_tasks(self):
        # "The split results in the two match tasks 3.0×1 and 3.0×2"
        # with 4 and 2 comparisons.
        bdm, _rt, _ann = example_bdm()
        tasks, split, threshold = generate_dual_match_tasks(bdm, num_reduce_tasks=3)
        z = bdm.block_index("z")
        assert threshold == pytest.approx(4.0)
        assert split == {z}
        z_tasks = sorted(
            (t for t in tasks if t.block == z), key=lambda t: -t.comparisons
        )
        assert [t.comparisons for t in z_tasks] == [4, 2]
        assert [(t.i, t.j) for t in z_tasks] == [(0, 1), (0, 2)]

    def test_reduce_loads_4_4_4(self):
        # Figure 16: 0.* (4, reduce0), 3.0×1 (4, reduce1),
        # 2.* + 3.0×2 (2+2, reduce2).
        bdm, _rt, _ann = example_bdm()
        tasks, _split, _thr = generate_dual_match_tasks(bdm, num_reduce_tasks=3)
        _assignment, loads = assign_greedy(tasks, num_reduce_tasks=3)
        assert sorted(loads) == [4, 4, 4]

    def test_coverage(self):
        matcher = RecordingMatcher()
        workflow = ERWorkflow(
            "blocksplit", key_blocking(), matcher, num_reduce_tasks=3
        )
        workflow.run_two_source(
            [make_entity(e, k, "R") for e, k in PARTITION_R0],
            [make_entity(e, k, "S") for e, k in PARTITION_S1]
            + [make_entity(e, k, "S") for e, k in PARTITION_S2],
            num_r_partitions=1,
            num_s_partitions=2,
        )
        assert len(matcher.compared) == 12
        assert len(set(matcher.compared)) == 12


class TestFigure17PairRange:
    def test_three_ranges_of_four(self):
        # "the resulting 12 pairs are divided into three ranges of size 4".
        bdm, _rt, _ann = example_bdm()
        enum = DualPairEnumeration(bdm.dual_block_sizes())
        spec = PairRangeSpec(enum.total_pairs, 3)
        assert spec.sizes() == [4, 4, 4]

    def test_entity_c_sent_to_ranges_1_and_2(self):
        # "entity C ∈ R is the first entity (index=0) within block Φ3.
        #  It takes part in ranges ℜ1 and ℜ2" — C's pairs span the z
        #  block's 6 pairs, offset by the preceding blocks' pairs.
        bdm, runtime, annotated = example_bdm()
        from repro.core.two_source import DualPairRangeJob

        job = DualPairRangeJob(bdm, RecordingMatcher(), num_reduce_tasks=3)
        result = runtime.run(job, annotated, num_reduce_tasks=3)
        c_keys = sorted(
            tuple(record.key)
            for task in result.map_tasks
            for record in task.output
            if record.value[0].entity_id == "C"
        )
        z = bdm.block_index("z")
        assert c_keys == [(1, z, "R", 0), (2, z, "R", 0)]

    def test_pairrange_workloads_4_4_4(self):
        bdm, _rt, _ann = example_bdm()
        plan = plan_dual_pairrange(bdm, 3)
        assert list(plan.reduce_comparisons) == [4, 4, 4]

    def test_coverage(self):
        matcher = RecordingMatcher()
        workflow = ERWorkflow(
            "pairrange", key_blocking(), matcher, num_reduce_tasks=3
        )
        workflow.run_two_source(
            [make_entity(e, k, "R") for e, k in PARTITION_R0],
            [make_entity(e, k, "S") for e, k in PARTITION_S1]
            + [make_entity(e, k, "S") for e, k in PARTITION_S2],
            num_r_partitions=1,
            num_s_partitions=2,
        )
        assert len(matcher.compared) == 12
        assert len(set(matcher.compared)) == 12


class TestBlockSplitPlanLoads:
    def test_dual_blocksplit_plan_balances(self):
        bdm, _rt, _ann = example_bdm()
        plan = plan_dual_blocksplit(bdm, 3)
        assert sorted(plan.reduce_comparisons) == [4, 4, 4]
        assert plan.total_comparisons == 12
