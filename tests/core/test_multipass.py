"""Multi-pass blocking on top of the load-balanced workflows."""

from __future__ import annotations

import pytest

from repro.core.multipass import MultiPassERWorkflow
from repro.er.blocking import AttributeBlocking, MultiPassBlocking, PrefixBlocking
from repro.er.entity import Entity
from repro.er.matching import AlwaysMatcher, RecordingMatcher, brute_force_pairs


def entity(eid, title, manufacturer):
    return Entity(eid, {"title": title, "manufacturer": manufacturer})


ENTITIES = [
    entity("a", "alpha one", "acme"),
    entity("b", "alpha two", "acme"),
    entity("c", "beta one", "acme"),
    entity("d", "beta two", "bravo"),
    entity("e", "gamma", "bravo"),
]

MULTI = MultiPassBlocking(
    [PrefixBlocking("title", 3), AttributeBlocking("manufacturer")]
)


def multi_candidates(entities):
    pairs = set()
    for blocking in MULTI.passes:
        for block in blocking.partition_entities(entities).values():
            ids = sorted(e.qualified_id for e in block)
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    pairs.add((a, b))
    return pairs


@pytest.mark.parametrize("strategy", ["basic", "blocksplit", "pairrange"])
class TestMultiPass:
    def test_union_of_pass_candidates_matched(self, strategy):
        workflow = MultiPassERWorkflow(
            strategy, MULTI, AlwaysMatcher, num_map_tasks=2, num_reduce_tasks=3
        )
        result = workflow.run(ENTITIES)
        assert result.matches.pair_ids == multi_candidates(ENTITIES)

    def test_redundancy_accounting(self, strategy):
        workflow = MultiPassERWorkflow(
            strategy, MULTI, RecordingMatcher, num_map_tasks=2, num_reduce_tasks=3
        )
        result = workflow.run(ENTITIES)
        # a-b share both the title prefix and the manufacturer block and
        # c pairs with a and b via manufacturer only; d-e via bravo...
        # Total per-pass comparisons exceed the distinct union by the
        # doubly-blocked pairs.
        union = multi_candidates(ENTITIES)
        assert result.total_comparisons >= len(union)
        assert result.redundant_comparisons == result.total_comparisons - len(union)
        assert result.redundant_comparisons >= 1  # a-b is doubly blocked

    def test_multipass_finds_more_than_single_pass(self, strategy):
        single = PrefixBlocking("title", 3)
        single_pairs = set()
        for block in single.partition_entities(ENTITIES).values():
            ids = sorted(e.qualified_id for e in block)
            for i, a in enumerate(ids):
                for b in ids[i + 1:]:
                    single_pairs.add((a, b))
        workflow = MultiPassERWorkflow(
            strategy, MULTI, AlwaysMatcher, num_map_tasks=2, num_reduce_tasks=3
        )
        result = workflow.run(ENTITIES)
        assert single_pairs < result.matches.pair_ids

    def test_pass_results_exposed(self, strategy):
        workflow = MultiPassERWorkflow(
            strategy, MULTI, AlwaysMatcher, num_map_tasks=2, num_reduce_tasks=3
        )
        result = workflow.run(ENTITIES)
        assert result.num_passes == 2
        for pass_result in result.pass_results:
            assert pass_result.strategy == strategy


class TestSinglePassEquivalence:
    def test_one_pass_equals_plain_workflow(self):
        from repro.core.workflow import ERWorkflow

        single = MultiPassBlocking([PrefixBlocking("title", 3)])
        multi = MultiPassERWorkflow(
            "pairrange", single, AlwaysMatcher, num_map_tasks=2, num_reduce_tasks=3
        ).run(ENTITIES)
        plain = ERWorkflow(
            "pairrange",
            PrefixBlocking("title", 3),
            AlwaysMatcher(),
            num_map_tasks=2,
            num_reduce_tasks=3,
        ).run(ENTITIES)
        assert multi.matches == plain.matches
        assert multi.redundant_comparisons == 0
