"""Block distribution matrix: construction, MR job, invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bdm import (
    ANNOTATED_DIR,
    BdmJob,
    BlockDistributionMatrix,
    MISSING_KEY_COUNTER,
    compute_bdm,
)
from repro.core.workflow import analytic_bdm
from repro.mapreduce.counters import StandardCounter
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import Partition, make_partitions

from ..conftest import key_blocking, make_entity, random_keyed_entities


class TestConstruction:
    def test_from_counts(self):
        bdm = BlockDistributionMatrix.from_counts(
            {("a", 0): 2, ("a", 1): 3, ("b", 0): 1}, num_partitions=2
        )
        assert bdm.num_blocks == 2
        assert bdm.num_partitions == 2
        assert bdm.size(bdm.block_index("a")) == 5
        assert bdm.size(bdm.block_index("b"), 1) == 0

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix(["a"], [[1, 2], [3, 4]])

    def test_rejects_duplicate_keys(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix(["a", "a"], [[1], [1]])

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix(["a", "b"], [[1, 2], [3]])

    def test_rejects_empty_block(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix(["a"], [[0, 0]])

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix(["a"], [[-1, 2]])

    def test_unknown_block_key(self):
        bdm = BlockDistributionMatrix(["a"], [[1]])
        with pytest.raises(KeyError):
            bdm.block_index("zzz")

    def test_rejects_bad_partition_index(self):
        with pytest.raises(ValueError):
            BlockDistributionMatrix.from_counts({("a", 5): 1}, num_partitions=2)


class TestAccessors:
    def _bdm(self) -> BlockDistributionMatrix:
        return BlockDistributionMatrix(
            ["a", "b", "c"], [[2, 0, 1], [0, 4, 0], [1, 1, 1]]
        )

    def test_partition_sizes_are_column_sums(self):
        assert self._bdm().partition_sizes() == [3, 5, 2]

    def test_total_entities(self):
        assert self._bdm().total_entities() == 10

    def test_pairs(self):
        assert self._bdm().pairs() == 3 + 6 + 3

    def test_entity_index_offset(self):
        bdm = self._bdm()
        assert bdm.entity_index_offset(0, 0) == 0
        assert bdm.entity_index_offset(0, 2) == 2
        assert bdm.entity_index_offset(2, 1) == 1
        assert bdm.entity_index_offset(2, 2) == 2

    def test_occupied_partitions(self):
        bdm = self._bdm()
        assert bdm.occupied_partitions(0) == [0, 2]
        assert bdm.occupied_partitions(1) == [1]

    def test_largest_block(self):
        assert self._bdm().largest_block() == (1, 4)


class TestBdmJob:
    def test_matches_analytic_bdm(self):
        entities = random_keyed_entities(60, 6, seed=3)
        partitions = make_partitions(entities, 4)
        runtime = LocalRuntime()
        bdm, _result, _annotated = compute_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=3
        )
        expected = analytic_bdm(partitions, key_blocking())
        assert bdm.block_keys == expected.block_keys
        for k in range(bdm.num_blocks):
            for p in range(bdm.num_partitions):
                assert bdm.size(k, p) == expected.size(k, p)

    def test_annotated_output_preserves_partitioning(self):
        entities = random_keyed_entities(30, 4, seed=5)
        partitions = make_partitions(entities, 3)
        runtime = LocalRuntime()
        _bdm, _result, annotated = compute_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=2
        )
        assert [p.index for p in annotated] == [0, 1, 2]
        for original, side in zip(partitions, annotated):
            original_ids = [record.value.entity_id for record in original]
            side_ids = [record.value.entity_id for record in side]
            assert original_ids == side_ids
            for record in side:
                # Annotated records carry (blocking key, entity).
                assert record.key == record.value.get("key")

    def test_entities_without_key_are_skipped_and_counted(self):
        keyed = make_entity("a", "k1")
        from repro.er.entity import Entity

        unkeyed = Entity("b", {"title": "x"})  # no "key" attribute
        partitions = [Partition.from_values([keyed, unkeyed], index=0)]
        runtime = LocalRuntime()
        bdm, result, annotated = compute_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=1
        )
        assert bdm.total_entities() == 1
        assert result.counters.get(MISSING_KEY_COUNTER) == 1
        assert len(annotated[0]) == 1

    def test_partition_with_no_keyed_entities_yields_empty_side_file(self):
        from repro.er.entity import Entity

        partitions = [
            Partition.from_values([make_entity("a", "k1")], index=0),
            Partition.from_values([Entity("b", {"title": "x"})], index=1),
        ]
        runtime = LocalRuntime()
        _bdm, _result, annotated = compute_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=1
        )
        assert len(annotated) == 2
        assert len(annotated[1]) == 0

    def test_combiner_reduces_shuffle_volume(self):
        entities = random_keyed_entities(50, 3, seed=9)
        partitions = make_partitions(entities, 2)
        with_combiner = LocalRuntime()
        _b1, result_on, _a1 = compute_bdm(
            with_combiner, partitions, key_blocking(), num_reduce_tasks=2
        )
        without_combiner = LocalRuntime()
        _b2, result_off, _a2 = compute_bdm(
            without_combiner,
            partitions,
            key_blocking(),
            num_reduce_tasks=2,
            use_combiner=False,
        )
        on = result_on.counters.get(StandardCounter.MAP_OUTPUT_RECORDS)
        off = result_off.counters.get(StandardCounter.MAP_OUTPUT_RECORDS)
        assert off == 50
        assert on < off
        # Combined or not, the resulting BDM is identical.
        assert _b1.block_sizes() == _b2.block_sizes()


class TestBdmInvariants:
    @given(
        st.integers(min_value=1, max_value=80),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30)
    def test_row_and_column_sums(self, n, keys, m, seed):
        entities = random_keyed_entities(n, keys, seed=seed)
        partitions = make_partitions(entities, m)
        bdm = analytic_bdm(partitions, key_blocking())
        # Invariant 6: column sums = partition sizes, total = |R|.
        assert sum(bdm.partition_sizes()) == n
        assert bdm.total_entities() == n
        assert [len(p) for p in partitions] == bdm.partition_sizes()
