"""ERWorkflowResult accessors on the two-source path."""

from __future__ import annotations

import pytest

from repro.core.two_source import DualSourceBDM
from repro.core.workflow import ERWorkflow
from repro.er.matching import RecordingMatcher

from ..conftest import blocked_cross_pairs, key_blocking, random_keyed_entities


@pytest.fixture
def dual_result():
    r_entities = random_keyed_entities(25, 4, seed=31, source="R")
    s_entities = random_keyed_entities(20, 4, seed=32, source="S")
    workflow = ERWorkflow(
        "blocksplit", key_blocking(), RecordingMatcher(), num_reduce_tasks=4
    )
    result = workflow.run_two_source(
        r_entities, s_entities, num_r_partitions=2, num_s_partitions=3
    )
    return result, r_entities, s_entities


class TestDualResult:
    def test_bdm_is_dual(self, dual_result):
        result, _r, _s = dual_result
        assert isinstance(result.bdm, DualSourceBDM)
        assert result.bdm.num_partitions == 5
        assert result.bdm.r_partitions == [0, 1]

    def test_jobs_present(self, dual_result):
        result, _r, _s = dual_result
        assert result.job1 is not None
        assert result.job2.job_name == "job2-blocksplit-2src"
        assert len(result.job2.reduce_tasks) == 4

    def test_total_comparisons_equal_cross_pairs(self, dual_result):
        result, r_entities, s_entities = dual_result
        expected = blocked_cross_pairs(r_entities + s_entities, key_blocking())
        assert result.total_comparisons() == len(expected)
        assert sum(result.reduce_comparisons()) == result.total_comparisons()

    def test_matched_pairs_are_cross_source(self):
        from repro.er.matching import AlwaysMatcher

        r_entities = random_keyed_entities(15, 3, seed=33, source="R")
        s_entities = random_keyed_entities(12, 3, seed=34, source="S")
        workflow = ERWorkflow(
            "pairrange", key_blocking(), AlwaysMatcher(), num_reduce_tasks=3
        )
        result = workflow.run_two_source(r_entities, s_entities)
        assert len(result.matches) > 0
        for pair in result.matches:
            assert pair.id1.startswith("R:")
            assert pair.id2.startswith("S:")
