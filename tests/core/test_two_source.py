"""Two-source matching (Appendix I): coverage, planners, edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planning import plan_dual_blocksplit, plan_dual_pairrange
from repro.core.two_source import (
    DualSourceBDM,
    compute_dual_bdm,
    generate_dual_match_tasks,
)
from repro.core.workflow import ERWorkflow
from repro.er.matching import AlwaysMatcher, RecordingMatcher
from repro.mapreduce.runtime import LocalRuntime
from repro.mapreduce.types import Partition, make_partitions

from ..conftest import blocked_cross_pairs, key_blocking, make_entity, random_keyed_entities

DUAL_STRATEGIES = ["blocksplit", "pairrange"]


def run_dual(strategy, r_entities, s_entities, *, r_parts=2, s_parts=2, r=4):
    matcher = RecordingMatcher()
    workflow = ERWorkflow(strategy, key_blocking(), matcher, num_reduce_tasks=r)
    result = workflow.run_two_source(
        r_entities, s_entities, num_r_partitions=r_parts, num_s_partitions=s_parts
    )
    return matcher, result


class TestDualCoverage:
    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    @given(
        n_r=st.integers(min_value=0, max_value=30),
        n_s=st.integers(min_value=0, max_value=30),
        keys=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=5_000),
        r=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=30, deadline=None)
    def test_each_cross_pair_compared_exactly_once(
        self, strategy, n_r, n_s, keys, seed, r
    ):
        r_entities = random_keyed_entities(n_r, keys, seed=seed, source="R")
        s_entities = random_keyed_entities(n_s, keys, seed=seed + 1, source="S")
        if not r_entities and not s_entities:
            return
        matcher, _ = run_dual(strategy, r_entities, s_entities, r=r)
        expected = blocked_cross_pairs(r_entities + s_entities, key_blocking())
        assert len(matcher.compared) == len(expected)
        assert set(matcher.compared) == expected

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    def test_no_same_source_pairs(self, strategy):
        r_entities = [make_entity(f"r{i}", "k", "R") for i in range(6)]
        s_entities = [make_entity(f"s{i}", "k", "S") for i in range(4)]
        matcher, _ = run_dual(strategy, r_entities, s_entities)
        for a, b in matcher.compared:
            assert a.startswith("R:") and b.startswith("S:")
        assert len(matcher.compared) == 24

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    def test_block_present_in_only_one_source(self, strategy):
        # "Block Φ1 ... needs not to be considered because no entity in
        #  source S has such a blocking key."
        r_entities = [make_entity("r0", "only-r", "R"), make_entity("r1", "only-r", "R")]
        s_entities = [make_entity("s0", "only-s", "S")]
        matcher, _ = run_dual(strategy, r_entities, s_entities)
        assert matcher.compared == []

    @pytest.mark.parametrize("strategy", DUAL_STRATEGIES)
    def test_matches_identical_across_strategies(self, strategy):
        r_entities = random_keyed_entities(20, 3, seed=1, source="R")
        s_entities = random_keyed_entities(15, 3, seed=2, source="S")
        workflow = ERWorkflow(
            strategy, key_blocking(), AlwaysMatcher(), num_reduce_tasks=3
        )
        result = workflow.run_two_source(r_entities, s_entities)
        assert result.matches.pair_ids == blocked_cross_pairs(
            r_entities + s_entities, key_blocking()
        )

    def test_basic_strategy_rejected(self):
        workflow = ERWorkflow("basic", key_blocking(), num_reduce_tasks=2)
        with pytest.raises(ValueError, match="two-source"):
            workflow.run_two_source([], [make_entity("s0", "k", "S")])


class TestDualBdm:
    def _dual_bdm(self):
        r_entities = random_keyed_entities(20, 4, seed=11, source="R")
        s_entities = random_keyed_entities(30, 4, seed=12, source="S")
        partitions = []
        for chunk in make_partitions(r_entities, 2):
            partitions.append(Partition(list(chunk), index=len(partitions)))
        for chunk in make_partitions(s_entities, 3):
            partitions.append(Partition(list(chunk), index=len(partitions)))
        runtime = LocalRuntime()
        bdm, _job, annotated = compute_dual_bdm(
            runtime, partitions, key_blocking(), num_reduce_tasks=3
        )
        return bdm, r_entities, s_entities

    def test_source_partitions(self):
        bdm, _r, _s = self._dual_bdm()
        assert bdm.r_partitions == [0, 1]
        assert bdm.s_partitions == [2, 3, 4]

    def test_sizes_split_by_source(self):
        bdm, r_entities, s_entities = self._dual_bdm()
        total_r = sum(bdm.size_r(k) for k in range(bdm.num_blocks))
        total_s = sum(bdm.size_s(k) for k in range(bdm.num_blocks))
        assert total_r == len(r_entities)
        assert total_s == len(s_entities)

    def test_pairs_are_cross_products(self):
        bdm, r_entities, s_entities = self._dual_bdm()
        expected = blocked_cross_pairs(r_entities + s_entities, key_blocking())
        assert bdm.pairs() == len(expected)

    def test_entity_index_offset_counts_same_source_only(self):
        bdm, _r, _s = self._dual_bdm()
        for k in range(bdm.num_blocks):
            # Offset at the first partition of each source is zero.
            assert bdm.entity_index_offset(k, 0) == 0
            assert bdm.entity_index_offset(k, 2) == 0
            # Offsets accumulate within the source.
            assert bdm.entity_index_offset(k, 1) == bdm.size(k, 0)
            assert bdm.entity_index_offset(k, 4) == bdm.size(k, 2) + bdm.size(k, 3)

    def test_mixed_partition_rejected(self):
        mixed = Partition.from_values(
            [make_entity("a", "k", "R"), make_entity("b", "k", "S")], index=0
        )
        runtime = LocalRuntime()
        with pytest.raises(ValueError, match="mixes sources"):
            compute_dual_bdm(runtime, [mixed], key_blocking(), num_reduce_tasks=1)

    def test_bad_source_tag_rejected(self):
        from repro.core.bdm import BlockDistributionMatrix

        base = BlockDistributionMatrix(["a"], [[1, 1]])
        with pytest.raises(ValueError, match="unknown source"):
            DualSourceBDM(base, ["R", "Q"])


class TestDualMatchTasks:
    def test_only_cross_source_tasks_for_split_blocks(self):
        from repro.core.bdm import BlockDistributionMatrix

        # Block 0: R has 4 in partition 0, S has 4 in partition 1 -> 16
        # pairs; block 1 keeps totals up so threshold stays low.
        base = BlockDistributionMatrix(["a", "b"], [[4, 4], [1, 1]])
        bdm = DualSourceBDM(base, ["R", "S"])
        tasks, split, _thr = generate_dual_match_tasks(bdm, num_reduce_tasks=4)
        assert split == {0}
        split_tasks = [t for t in tasks if t.block == 0]
        assert {t.key for t in split_tasks} == {(0, 0, 1)}
        assert split_tasks[0].comparisons == 16

    def test_pairless_blocks_yield_no_tasks(self):
        from repro.core.bdm import BlockDistributionMatrix

        base = BlockDistributionMatrix(["a", "b"], [[2, 0], [1, 1]])
        bdm = DualSourceBDM(base, ["R", "S"])
        tasks, _split, _thr = generate_dual_match_tasks(bdm, num_reduce_tasks=2)
        assert {t.block for t in tasks} == {1}


class TestDualPlanners:
    @pytest.mark.parametrize(
        "strategy,planner",
        [("blocksplit", plan_dual_blocksplit), ("pairrange", plan_dual_pairrange)],
    )
    @given(
        n_r=st.integers(min_value=1, max_value=25),
        n_s=st.integers(min_value=1, max_value=25),
        keys=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=5_000),
        r=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_planner_equals_executor(self, strategy, planner, n_r, n_s, keys, seed, r):
        r_entities = random_keyed_entities(n_r, keys, seed=seed, source="R")
        s_entities = random_keyed_entities(n_s, keys, seed=seed + 1, source="S")
        matcher = RecordingMatcher()
        workflow = ERWorkflow(strategy, key_blocking(), matcher, num_reduce_tasks=r)
        result = workflow.run_two_source(
            r_entities, s_entities, num_r_partitions=2, num_s_partitions=2
        )
        plan = planner(result.bdm, r)
        assert list(plan.reduce_comparisons) == result.reduce_comparisons()
        assert list(plan.reduce_input_kv) == [
            t.input_records for t in result.job2.reduce_tasks
        ]
        assert list(plan.map_output_kv) == [
            t.output_records for t in result.job2.map_tasks
        ]
