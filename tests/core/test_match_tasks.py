"""BlockSplit match-task generation and the greedy LPT assignment."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bdm import BlockDistributionMatrix
from repro.core.enumeration import block_pair_count
from repro.core.match_tasks import (
    MatchTask,
    assign_greedy,
    generate_match_tasks,
    plan_block_split,
)


def bdm_from_matrix(matrix) -> BlockDistributionMatrix:
    keys = [f"b{k}" for k in range(len(matrix))]
    return BlockDistributionMatrix(keys, matrix)


bdm_matrices = st.integers(min_value=1, max_value=6).flatmap(
    lambda m: st.lists(
        st.lists(st.integers(min_value=0, max_value=12), min_size=m, max_size=m)
        .filter(lambda row: sum(row) > 0),
        min_size=1,
        max_size=8,
    )
)


class TestGeneration:
    def test_split_threshold_is_average_workload(self):
        # One block of 6 (15 pairs), r=3 -> threshold 5: split.
        bdm = bdm_from_matrix([[3, 3]])
        tasks, split, threshold = generate_match_tasks(bdm, num_reduce_tasks=3)
        assert threshold == pytest.approx(5.0)
        assert split == {0}

    def test_block_at_threshold_not_split(self):
        # Block pairs == P/r exactly -> "comps <= compsPerReduceTask".
        bdm = bdm_from_matrix([[2, 2]])  # 6 pairs, r=1 -> threshold 6
        _tasks, split, _threshold = generate_match_tasks(bdm, num_reduce_tasks=1)
        assert split == set()

    def test_split_task_structure(self):
        bdm = bdm_from_matrix([[2, 3, 0]])  # 5 entities in partitions 0,1
        tasks, split, _ = generate_match_tasks(bdm, num_reduce_tasks=5)
        assert split == {0}
        by_key = {t.key: t.comparisons for t in tasks}
        # Sub-blocks 0 (2 entities) and 1 (3 entities); partition 2 empty.
        assert by_key == {(0, 0, 0): 1, (0, 1, 0): 6, (0, 1, 1): 3}

    def test_empty_sub_block_pairs_skipped(self):
        bdm = bdm_from_matrix([[4, 0]])
        tasks, split, _ = generate_match_tasks(bdm, num_reduce_tasks=3)
        assert split == {0}
        assert {t.key for t in tasks} == {(0, 0, 0)}

    def test_singleton_unsplit_block_generates_zero_comp_task(self):
        bdm = bdm_from_matrix([[1, 0], [2, 2]])
        tasks, _split, _ = generate_match_tasks(bdm, num_reduce_tasks=1)
        zero = [t for t in tasks if t.block == 0]
        assert len(zero) == 1 and zero[0].comparisons == 0

    @given(bdm_matrices, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_split_tasks_cover_all_block_pairs(self, matrix, r):
        bdm = bdm_from_matrix(matrix)
        tasks, split, _ = generate_match_tasks(bdm, r)
        per_block: dict[int, int] = {}
        for task in tasks:
            per_block[task.block] = per_block.get(task.block, 0) + task.comparisons
        for k in range(bdm.num_blocks):
            assert per_block.get(k, 0) == block_pair_count(bdm.size(k))


class TestGreedyAssignment:
    def test_descending_then_least_loaded(self):
        tasks = [
            MatchTask(0, 0, 0, 10),
            MatchTask(1, 0, 0, 8),
            MatchTask(2, 0, 0, 7),
            MatchTask(3, 0, 0, 2),
        ]
        assignment, loads = assign_greedy(tasks, num_reduce_tasks=2)
        # 10->r0, 8->r1, 7->r1(15? no: r1 has 8 < r0 10 -> r1), 2->r0.
        assert assignment[(0, 0, 0)] == 0
        assert assignment[(1, 0, 0)] == 1
        assert assignment[(2, 0, 0)] == 1
        assert assignment[(3, 0, 0)] == 0
        assert loads == [12, 15]

    def test_ties_break_deterministically(self):
        tasks = [MatchTask(k, 0, 0, 5) for k in range(4)]
        a1, _ = assign_greedy(tasks, 4)
        a2, _ = assign_greedy(list(reversed(tasks)), 4)
        assert a1 == a2

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_lpt_bound(self, sizes, r):
        """LPT guarantee: makespan ≤ average load + largest task."""
        tasks = [MatchTask(k, 0, 0, c) for k, c in enumerate(sizes)]
        _assignment, loads = assign_greedy(tasks, r)
        assert sum(loads) == sum(sizes)
        average = sum(sizes) / r
        assert max(loads) <= average + max(sizes)

    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=30),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30)
    def test_every_task_assigned_exactly_once(self, sizes, r):
        tasks = [MatchTask(k, 0, 0, c) for k, c in enumerate(sizes)]
        assignment, _loads = assign_greedy(tasks, r)
        assert set(assignment) == {t.key for t in tasks}
        assert all(0 <= target < r for target in assignment.values())


class TestPlanBlockSplit:
    @given(bdm_matrices, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_total_comparisons_preserved(self, matrix, r):
        bdm = bdm_from_matrix(matrix)
        assignment = plan_block_split(bdm, r)
        assert sum(assignment.reduce_comparisons) == bdm.pairs()

    def test_unsplittable_block_in_single_partition(self):
        # A huge block entirely in one partition cannot be parallelised
        # (the Figure 11 phenomenon): it yields exactly one sub-block task.
        bdm = bdm_from_matrix([[10, 0], [0, 2]])
        assignment = plan_block_split(bdm, num_reduce_tasks=4)
        assert assignment.is_split(0)
        block0_tasks = assignment.tasks_of_block(0)
        assert len(block0_tasks) == 1
        assert block0_tasks[0].comparisons == 45
