"""End-to-end workflow: real matching, simulation glue, BDM paths."""

from __future__ import annotations

import pytest

from repro.cluster.simulation import ClusterSpec
from repro.core.strategy import get_strategy
from repro.core.workflow import (
    ERWorkflow,
    analytic_bdm,
    analytic_bdm_from_block_sizes,
    simulate_executed_workflow,
    simulate_planned_workflow,
    simulate_strategy,
)
from repro.core.planning import plan_pairrange
from repro.datasets.generators import generate_products
from repro.er.blocking import PrefixBlocking
from repro.er.matching import ThresholdMatcher, brute_force_match
from repro.mapreduce.types import make_partitions


class TestEndToEndMatching:
    """The workflow finds exactly the matches a blocked brute force finds."""

    @pytest.mark.parametrize("strategy", ["basic", "blocksplit", "pairrange"])
    def test_matches_equal_blocked_brute_force(self, strategy):
        entities = generate_products(300, seed=21)
        blocking = PrefixBlocking("title", 3)
        workflow = ERWorkflow(
            strategy,
            blocking,
            ThresholdMatcher("title", 0.8),
            num_map_tasks=3,
            num_reduce_tasks=5,
        )
        result = workflow.run(entities)

        expected_ids = set()
        reference = ThresholdMatcher("title", 0.8)
        for block in blocking.partition_entities(entities).values():
            expected_ids |= brute_force_match(block, reference).pair_ids
        assert result.matches.pair_ids == expected_ids
        # The generator plants duplicates, so this is a non-trivial set.
        assert len(result.matches) > 0

    def test_strategy_instance_accepted(self):
        entities = generate_products(100, seed=22)
        workflow = ERWorkflow(
            get_strategy("pairrange"),
            PrefixBlocking("title"),
            num_map_tasks=2,
            num_reduce_tasks=3,
        )
        result = workflow.run(entities)
        assert result.strategy == "pairrange"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(KeyError, match="unknown strategy"):
            ERWorkflow("bogus", PrefixBlocking("title"))

    def test_result_accessors(self):
        entities = generate_products(150, seed=23)
        workflow = ERWorkflow(
            "blocksplit",
            PrefixBlocking("title"),
            num_map_tasks=2,
            num_reduce_tasks=4,
        )
        result = workflow.run(entities)
        assert result.bdm is not None
        assert result.job1 is not None
        assert len(result.reduce_comparisons()) == 4
        assert result.total_comparisons() == result.bdm.pairs()
        assert result.map_output_kv() >= result.bdm.total_entities() - _singletons(result.bdm)

    def test_basic_has_no_bdm_job(self):
        entities = generate_products(100, seed=24)
        workflow = ERWorkflow(
            "basic", PrefixBlocking("title"), num_map_tasks=2, num_reduce_tasks=3
        )
        result = workflow.run(entities)
        assert result.job1 is None
        assert result.bdm is None


def _singletons(bdm) -> int:
    return sum(
        bdm.size(k) for k in range(bdm.num_blocks) if bdm.block_pairs(k) == 0
    )


class TestAnalyticBdm:
    def test_matches_job1(self):
        entities = generate_products(200, seed=25)
        blocking = PrefixBlocking("title")
        partitions = make_partitions(entities, 3)
        direct = analytic_bdm(partitions, blocking)
        workflow = ERWorkflow(
            "pairrange", blocking, num_map_tasks=3, num_reduce_tasks=2
        )
        result = workflow.run(partitions)
        assert result.bdm.block_keys == direct.block_keys
        assert result.bdm.block_sizes() == direct.block_sizes()

    def test_from_block_sizes(self):
        bdm = analytic_bdm_from_block_sizes([[2, 1], [0, 3]])
        assert bdm.num_blocks == 2
        assert bdm.block_sizes() == [3, 3]

    def test_accepts_plain_entity_lists(self):
        entities = generate_products(60, seed=26)
        halves = [entities[:30], entities[30:]]
        bdm = analytic_bdm(halves, PrefixBlocking("title"))
        assert bdm.total_entities() == 60
        assert bdm.num_partitions == 2


class TestSimulationGlue:
    def test_executed_and_planned_agree(self):
        """Simulating the executed counters and the analytic plan must
        give the same execution time — they are the same numbers."""
        entities = generate_products(300, seed=27)
        blocking = PrefixBlocking("title")
        partitions = make_partitions(entities, 4)
        workflow = ERWorkflow(
            "pairrange", blocking, num_map_tasks=4, num_reduce_tasks=8
        )
        result = workflow.run(partitions)
        cluster = ClusterSpec(num_nodes=2)
        executed = simulate_executed_workflow(result, cluster)

        bdm = analytic_bdm(partitions, blocking)
        from repro.core.planning import plan_bdm_job

        plan = plan_pairrange(bdm, 8)
        planned = simulate_planned_workflow(
            plan, cluster, bdm_plan=plan_bdm_job(bdm, 8)
        )
        assert executed.execution_time == pytest.approx(
            planned.execution_time, rel=1e-9
        )

    def test_simulate_strategy_shortcut(self):
        entities = generate_products(200, seed=28)
        bdm = analytic_bdm(make_partitions(entities, 4), PrefixBlocking("title"))
        timeline, plan = simulate_strategy(
            "blocksplit", bdm, ClusterSpec(2), num_reduce_tasks=8
        )
        assert timeline.execution_time > 0
        assert len(timeline.jobs) == 2  # BDM job + matching job
        timeline_basic, _plan = simulate_strategy(
            "basic", bdm, ClusterSpec(2), num_reduce_tasks=8
        )
        assert len(timeline_basic.jobs) == 1  # single job, no BDM

    def test_noise_changes_times_deterministically(self):
        entities = generate_products(200, seed=29)
        bdm = analytic_bdm(make_partitions(entities, 4), PrefixBlocking("title"))
        t1, _ = simulate_strategy(
            "pairrange", bdm, ClusterSpec(2), num_reduce_tasks=8,
            comparison_noise_sigma=0.3,
        )
        t2, _ = simulate_strategy(
            "pairrange", bdm, ClusterSpec(2), num_reduce_tasks=8,
            comparison_noise_sigma=0.3,
        )
        t0, _ = simulate_strategy(
            "pairrange", bdm, ClusterSpec(2), num_reduce_tasks=8,
        )
        assert t1.execution_time == t2.execution_time
        assert t1.execution_time != t0.execution_time


class TestBdmCombinerToggle:
    def test_workflow_without_combiner_same_matches(self):
        entities = generate_products(150, seed=30)
        blocking = PrefixBlocking("title")
        with_combiner = ERWorkflow(
            "pairrange", blocking, num_map_tasks=2, num_reduce_tasks=3
        ).run(entities)
        without_combiner = ERWorkflow(
            "pairrange",
            blocking,
            num_map_tasks=2,
            num_reduce_tasks=3,
            use_bdm_combiner=False,
        ).run(entities)
        assert with_combiner.matches == without_combiner.matches
        assert (
            without_combiner.job1.map_output_records()
            >= with_combiner.job1.map_output_records()
        )
