"""Pair-enumeration math: bijectivity, offsets, ranges, interval algebra.

These are the invariants PairRange's correctness rests on (DESIGN.md
invariant 2).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import (
    DualPairEnumeration,
    PairEnumeration,
    PairRangeSpec,
    block_pair_count,
    cell_index,
    cell_of,
    column_start,
    dual_cell_index,
    dual_cell_of,
    dual_entities_in_cell_interval,
    entities_in_cell_interval,
    entity_count_in_cell_interval,
    interval_total,
    merge_intervals,
)


class TestCellIndex:
    def test_paper_example_block0(self):
        # Figure 6: pair (2, 3) of block Φ0 (|Φ0|=4) has cell index 5.
        assert cell_index(2, 3, 4) == 5

    def test_column_wise_layout_n4(self):
        # N=4 columns: x=0 -> cells 0,1,2; x=1 -> 3,4; x=2 -> 5.
        expected = {(0, 1): 0, (0, 2): 1, (0, 3): 2, (1, 2): 3, (1, 3): 4, (2, 3): 5}
        for (x, y), cell in expected.items():
            assert cell_index(x, y, 4) == cell

    def test_first_pair_is_zero(self):
        for n in range(2, 20):
            assert cell_index(0, 1, n) == 0

    def test_last_pair_is_count_minus_one(self):
        for n in range(2, 20):
            assert cell_index(n - 2, n - 1, n) == block_pair_count(n) - 1

    def test_rejects_invalid_pairs(self):
        with pytest.raises(ValueError):
            cell_index(1, 1, 4)
        with pytest.raises(ValueError):
            cell_index(2, 1, 4)
        with pytest.raises(ValueError):
            cell_index(0, 4, 4)
        with pytest.raises(ValueError):
            cell_index(-1, 1, 4)

    @given(st.integers(min_value=2, max_value=60))
    def test_bijection(self, n):
        seen = set()
        for x in range(n - 1):
            for y in range(x + 1, n):
                seen.add(cell_index(x, y, n))
        assert seen == set(range(block_pair_count(n)))

    @given(st.integers(min_value=2, max_value=60), st.data())
    def test_cell_of_inverts_cell_index(self, n, data):
        p = data.draw(st.integers(min_value=0, max_value=block_pair_count(n) - 1))
        x, y = cell_of(p, n)
        assert cell_index(x, y, n) == p

    def test_column_start_matches_first_cell(self):
        for n in range(2, 15):
            for x in range(n - 1):
                assert column_start(x, n) == cell_index(x, x + 1, n)


class TestBlockPairCount:
    def test_known_values(self):
        assert block_pair_count(0) == 0
        assert block_pair_count(1) == 0
        assert block_pair_count(2) == 1
        assert block_pair_count(5) == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            block_pair_count(-1)


class TestMergeIntervals:
    def test_overlapping(self):
        assert merge_intervals([(0, 3), (2, 5)]) == [(0, 5)]

    def test_adjacent_coalesced(self):
        assert merge_intervals([(0, 2), (3, 4)]) == [(0, 4)]

    def test_disjoint_kept(self):
        assert merge_intervals([(0, 1), (5, 6)]) == [(0, 1), (5, 6)]

    def test_empty_inputs_ignored(self):
        assert merge_intervals([(3, 2), (0, 1)]) == [(0, 1)]

    def test_interval_total(self):
        assert interval_total([(0, 4), (10, 10)]) == 6

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=10,
        )
    )
    def test_total_matches_set_union(self, raw):
        intervals = [(lo, hi) for lo, hi in raw]
        merged = merge_intervals(intervals)
        expected = set()
        for lo, hi in intervals:
            expected.update(range(lo, hi + 1))
        assert interval_total(merged) == len(expected)
        covered = set()
        for lo, hi in merged:
            covered.update(range(lo, hi + 1))
        assert covered == expected


class TestEntitiesInCellInterval:
    @given(st.integers(min_value=2, max_value=40), st.data())
    def test_matches_brute_force(self, n, data):
        total = block_pair_count(n)
        lo = data.draw(st.integers(min_value=0, max_value=total - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=total - 1))
        expected = set()
        for p in range(lo, hi + 1):
            x, y = cell_of(p, n)
            expected.add(x)
            expected.add(y)
        intervals = entities_in_cell_interval(n, lo, hi)
        covered = set()
        for a, b in intervals:
            covered.update(range(a, b + 1))
        assert covered == expected
        assert entity_count_in_cell_interval(n, lo, hi) == len(expected)

    def test_empty_interval(self):
        assert entities_in_cell_interval(5, 3, 2) == []


class TestDualCells:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
    )
    def test_bijection(self, n_r, n_s):
        seen = set()
        for x in range(n_r):
            for y in range(n_s):
                seen.add(dual_cell_index(x, y, n_s))
        assert seen == set(range(n_r * n_s))

    def test_inverse(self):
        for n_s in range(1, 8):
            for p in range(4 * n_s):
                x, y = dual_cell_of(p, n_s)
                assert dual_cell_index(x, y, n_s) == p

    @given(
        st.integers(min_value=1, max_value=15),
        st.integers(min_value=1, max_value=15),
        st.data(),
    )
    def test_dual_interval_matches_brute_force(self, n_r, n_s, data):
        total = n_r * n_s
        lo = data.draw(st.integers(min_value=0, max_value=total - 1))
        hi = data.draw(st.integers(min_value=lo, max_value=total - 1))
        expected_r, expected_s = set(), set()
        for p in range(lo, hi + 1):
            x, y = dual_cell_of(p, n_s)
            expected_r.add(x)
            expected_s.add(y)
        r_intervals, s_intervals = dual_entities_in_cell_interval(n_r, n_s, lo, hi)
        covered_r = {i for a, b in r_intervals for i in range(a, b + 1)}
        covered_s = {i for a, b in s_intervals for i in range(a, b + 1)}
        assert covered_r == expected_r
        assert covered_s == expected_s


class TestPairRangeSpec:
    def test_paper_example_ranges(self):
        # P=20 pairs, r=3 -> ranges [0,6], [7,13], [14,19] (Figure 6).
        spec = PairRangeSpec(20, 3)
        assert spec.pairs_per_range == 7
        assert spec.bounds(0) == (0, 6)
        assert spec.bounds(1) == (7, 13)
        assert spec.bounds(2) == (14, 19)
        assert spec.sizes() == [7, 7, 6]

    def test_range_of_is_monotone(self):
        spec = PairRangeSpec(100, 7)
        ranges = [spec.range_of(p) for p in range(100)]
        assert ranges == sorted(ranges)

    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=20),
    )
    def test_sizes_partition_all_pairs(self, total, r):
        spec = PairRangeSpec(total, r)
        sizes = spec.sizes()
        assert sum(sizes) == total
        assert len(sizes) == r
        # All but the last *non-empty* range hold exactly ⌈P/r⌉ pairs.
        non_empty = [s for s in sizes if s > 0]
        if non_empty:
            assert all(s == spec.pairs_per_range for s in non_empty[:-1])

    def test_out_of_range_pair_rejected(self):
        spec = PairRangeSpec(10, 2)
        with pytest.raises(ValueError):
            spec.range_of(10)
        with pytest.raises(ValueError):
            spec.range_of(-1)


class TestPairEnumeration:
    def _paper_enumeration(self) -> PairEnumeration:
        # Running example: blocks w, x, y, z with sizes 4, 2, 3, 5.
        return PairEnumeration([4, 2, 3, 5])

    def test_total_pairs(self):
        assert self._paper_enumeration().total_pairs == 20

    def test_offsets(self):
        enum = self._paper_enumeration()
        assert [enum.offset(i) for i in range(4)] == [0, 6, 7, 10]

    def test_entity_m_pair_bounds(self):
        # Entity M: block 3, index 2 of 5 -> pmin=11, pmax=18 (Section V).
        enum = self._paper_enumeration()
        assert enum.pair_index(3, 0, 2) == 11
        assert enum.pair_index(3, 2, 4) == 18

    def test_entity_m_relevant_ranges(self):
        # M participates in pairs 11, 14, 17, 18 -> ranges {1, 2}.
        enum = self._paper_enumeration()
        spec = PairRangeSpec(enum.total_pairs, 3)
        assert enum.relevant_ranges(3, 2, spec) == [1, 2]

    def test_entity_f_not_in_last_range(self):
        # F (block 3, index 0) takes part in pairs 10-13 only -> range 1.
        enum = self._paper_enumeration()
        spec = PairRangeSpec(enum.total_pairs, 3)
        assert enum.relevant_ranges(3, 0, spec) == [1]

    @given(
        st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=6),
    )
    def test_pair_at_inverts_pair_index(self, sizes):
        enum = PairEnumeration(sizes)
        for p in range(enum.total_pairs):
            block, x, y = enum.pair_at(p)
            assert enum.pair_index(block, x, y) == p

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=5),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_relevant_ranges_match_brute_force(self, sizes, r):
        enum = PairEnumeration(sizes)
        spec = PairRangeSpec(enum.total_pairs, r)
        for block, n in enumerate(sizes):
            for x in range(n):
                expected = set()
                for other in range(n):
                    if other == x:
                        continue
                    lo, hi = min(x, other), max(x, other)
                    expected.add(spec.range_of(enum.pair_index(block, lo, hi)))
                assert enum.relevant_ranges(block, x, spec) == sorted(expected)

    def test_singleton_block_has_no_ranges(self):
        enum = PairEnumeration([1, 5])
        spec = PairRangeSpec(enum.total_pairs, 2)
        assert enum.relevant_ranges(0, 0, spec) == []


class TestDualPairEnumeration:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_pair_at_inverts(self, sizes):
        enum = DualPairEnumeration(sizes)
        for p in range(enum.total_pairs):
            block, x, y = enum.pair_at(p)
            assert enum.pair_index(block, x, y) == p

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=4,
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50)
    def test_relevant_ranges_match_brute_force(self, sizes, r):
        enum = DualPairEnumeration(sizes)
        spec = PairRangeSpec(enum.total_pairs, r)
        for block, (n_r, n_s) in enumerate(sizes):
            for x in range(n_r):
                expected = sorted(
                    {
                        spec.range_of(enum.pair_index(block, x, y))
                        for y in range(n_s)
                    }
                )
                assert enum.relevant_ranges_r(block, x, spec) == expected
            for y in range(n_s):
                expected = sorted(
                    {
                        spec.range_of(enum.pair_index(block, x, y))
                        for x in range(n_r)
                    }
                )
                assert enum.relevant_ranges_s(block, y, spec) == expected

    def test_r_entity_ranges_are_contiguous(self):
        enum = DualPairEnumeration([(3, 10), (2, 8)])
        spec = PairRangeSpec(enum.total_pairs, 5)
        for block, (n_r, _n_s) in enumerate(enum.block_sizes):
            for x in range(n_r):
                ranges = enum.relevant_ranges_r(block, x, spec)
                assert ranges == list(range(ranges[0], ranges[-1] + 1))
