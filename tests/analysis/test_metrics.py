"""Load-balance and scalability metrics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    WorkloadStats,
    efficiency,
    imbalance,
    replication_factor,
    speedup,
    time_per_pairs,
)


class TestWorkloadStats:
    def test_balanced(self):
        stats = WorkloadStats.from_workloads([10, 10, 10])
        assert stats.imbalance == pytest.approx(1.0)
        assert stats.stdev == 0.0
        assert stats.coefficient_of_variation == 0.0

    def test_skewed(self):
        stats = WorkloadStats.from_workloads([30, 0, 0])
        assert stats.total == 30
        assert stats.mean == pytest.approx(10.0)
        assert stats.imbalance == pytest.approx(3.0)

    def test_all_zero(self):
        stats = WorkloadStats.from_workloads([0, 0])
        assert stats.imbalance == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadStats.from_workloads([])
        with pytest.raises(ValueError):
            WorkloadStats.from_workloads([-1])

    def test_imbalance_helper(self):
        assert imbalance([4, 2]) == pytest.approx(4 / 3)


class TestScalabilityMetrics:
    def test_speedup_default_baseline(self):
        assert speedup([100.0, 50.0, 25.0]) == [1.0, 2.0, 4.0]

    def test_speedup_explicit_baseline(self):
        assert speedup([50.0], baseline=100.0) == [2.0]

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            speedup([0.0])
        assert speedup([]) == []

    def test_efficiency(self):
        # 1 -> 4 nodes with 3x speedup = 75 % efficiency.
        assert efficiency([1.0, 3.0], [1, 4]) == [1.0, pytest.approx(0.75)]

    def test_efficiency_validation(self):
        with pytest.raises(ValueError):
            efficiency([1.0], [1, 2])
        assert efficiency([], []) == []

    def test_replication_factor(self):
        assert replication_factor(200, 100) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            replication_factor(1, 0)

    def test_time_per_pairs(self):
        # 10 s for 1e6 pairs -> 0.1 s per 10^4 pairs.
        assert time_per_pairs(10.0, 1_000_000) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            time_per_pairs(1.0, 0)
