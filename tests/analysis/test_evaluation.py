"""Match-quality metrics."""

from __future__ import annotations

import pytest

from repro.analysis.evaluation import (
    MatchQuality,
    evaluate_matches,
    pairs_completeness,
    reduction_ratio,
)


class TestEvaluateMatches:
    def test_perfect(self):
        gold = {("a", "b"), ("c", "d")}
        quality = evaluate_matches(gold, gold)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_partial(self):
        found = {("a", "b"), ("x", "y")}
        gold = {("a", "b"), ("c", "d")}
        quality = evaluate_matches(found, gold)
        assert quality.true_positives == 1
        assert quality.false_positives == 1
        assert quality.false_negatives == 1
        assert quality.precision == 0.5
        assert quality.recall == 0.5

    def test_orderless_pairs(self):
        quality = evaluate_matches({("b", "a")}, {("a", "b")})
        assert quality.precision == 1.0

    def test_empty_found(self):
        quality = evaluate_matches(set(), {("a", "b")})
        assert quality.precision == 1.0  # vacuous
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_gold(self):
        quality = evaluate_matches({("a", "b")}, set())
        assert quality.recall == 1.0
        assert quality.precision == 0.0

    def test_f_beta(self):
        quality = MatchQuality(true_positives=1, false_positives=1, false_negatives=0)
        # precision 0.5, recall 1.0.
        assert quality.f_beta(1.0) == pytest.approx(quality.f1)
        assert quality.f_beta(2.0) > quality.f1  # recall-weighted
        with pytest.raises(ValueError):
            quality.f_beta(0)

    def test_as_dict(self):
        quality = evaluate_matches({("a", "b")}, {("a", "b")})
        assert quality.as_dict()["f1"] == 1.0


class TestBlockingMetrics:
    def test_pairs_completeness(self):
        candidates = {("a", "b"), ("c", "d")}
        gold = {("a", "b"), ("e", "f")}
        assert pairs_completeness(candidates, gold) == 0.5

    def test_completeness_empty_gold(self):
        assert pairs_completeness(set(), set()) == 1.0

    def test_reduction_ratio(self):
        # 10 entities -> 45 possible pairs; 9 candidates -> 0.8.
        assert reduction_ratio(9, 10) == pytest.approx(0.8)
        assert reduction_ratio(0, 1) == 1.0
        with pytest.raises(ValueError):
            reduction_ratio(-1, 10)


class TestEndToEndQuality:
    def test_workflow_quality_on_corrupted_data(self):
        from repro.core.workflow import ERWorkflow
        from repro.datasets.corruption import CorruptionConfig, corrupt_dataset
        from repro.datasets.generators import generate_products
        from repro.er.blocking import PrefixBlocking
        from repro.er.matching import ThresholdMatcher

        from repro.datasets.corruption import drop_character, insert_character, typo

        clean = generate_products(300, seed=13, num_blocks=30)
        # Character-level corruption keeps duplicates above the 0.8
        # edit-distance threshold; token swaps would not (by design).
        corrupted = corrupt_dataset(
            clean,
            CorruptionConfig(
                duplicate_fraction=0.2,
                max_edits=1,
                seed=14,
                corruptors=((typo, 1.0), (insert_character, 1.0), (drop_character, 1.0)),
            ),
        )
        workflow = ERWorkflow(
            "pairrange",
            PrefixBlocking("title", 3),
            ThresholdMatcher("title", 0.8),
            num_map_tasks=3,
            num_reduce_tasks=5,
        )
        result = workflow.run(list(corrupted.entities))
        quality = evaluate_matches(result.matches.pair_ids, corrupted.gold_pairs)
        # Character-level corruption with protected prefix: high recall.
        assert quality.recall > 0.9
        # Precision is bounded below by construction only loosely (the
        # generator itself plants near-duplicates), so just sanity-check.
        assert quality.true_positives > 0
