"""Experiment sweeps: structure, determinism, and figure-level claims
at reduced scale."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    bdm_for_block_sizes,
    dataset_statistics,
    simulate_run,
    sweep_input_order,
    sweep_nodes,
    sweep_reduce_tasks,
    sweep_skew,
)
from repro.datasets.skew import zipf_block_sizes

STRATEGIES = ["basic", "blocksplit", "pairrange"]
SIZES = zipf_block_sizes(20_000, 200, 1.2)


class TestSimulateRun:
    def test_fields(self):
        bdm = bdm_for_block_sizes(SIZES, 8, seed=1)
        run = simulate_run("blocksplit", bdm, num_nodes=4, num_reduce_tasks=16)
        assert run.strategy == "blocksplit"
        assert run.execution_time > 0
        assert run.total_pairs == bdm.pairs()
        assert run.num_map_tasks == 8
        assert run.ms_per_10k_pairs > 0

    def test_deterministic(self):
        bdm = bdm_for_block_sizes(SIZES, 8, seed=1)
        a = simulate_run("pairrange", bdm, num_nodes=4, num_reduce_tasks=16)
        b = simulate_run("pairrange", bdm, num_nodes=4, num_reduce_tasks=16)
        assert a.execution_time == b.execution_time


class TestSkewSweep:
    def test_figure9_claims(self):
        """Basic degrades with skew; BlockSplit/PairRange stay flat."""
        results = sweep_skew(
            STRATEGIES,
            [0.0, 1.0],
            num_entities=20_000,
            num_blocks=100,
            num_nodes=4,
            num_map_tasks=8,
            num_reduce_tasks=40,
        )
        flat = results[0.0]
        skewed = results[1.0]
        # At s=0, Basic is competitive (no BDM job overhead).
        assert flat["basic"].execution_time <= flat["blocksplit"].execution_time
        # At s=1, Basic is several times slower per pair.
        assert (
            skewed["basic"].ms_per_10k_pairs
            > 3 * skewed["blocksplit"].ms_per_10k_pairs
        )
        # Balanced strategies stay within 2x across skews (robustness).
        for name in ("blocksplit", "pairrange"):
            ratio = (
                skewed[name].ms_per_10k_pairs / flat[name].ms_per_10k_pairs
            )
            assert ratio < 2.0


class TestReduceTaskSweep:
    def test_figure10_structure(self):
        bdm = bdm_for_block_sizes(SIZES, 8, seed=2)
        results = sweep_reduce_tasks(STRATEGIES, [8, 16, 32], bdm, num_nodes=4)
        for r, runs in results.items():
            assert set(runs) == set(STRATEGIES)
            # Basic never beats the balanced strategies on skewed data.
            assert runs["basic"].execution_time > runs["blocksplit"].execution_time

    def test_figure12_map_output(self):
        bdm = bdm_for_block_sizes(SIZES, 8, seed=2)
        results = sweep_reduce_tasks(STRATEGIES, [8, 16, 32, 64], bdm, num_nodes=4)
        basic_out = [results[r]["basic"].map_output_kv for r in (8, 16, 32, 64)]
        pairrange_out = [
            results[r]["pairrange"].map_output_kv for r in (8, 16, 32, 64)
        ]
        blocksplit_out = [
            results[r]["blocksplit"].map_output_kv for r in (8, 16, 32, 64)
        ]
        # Basic: constant, equal to the input size.
        assert len(set(basic_out)) == 1
        assert basic_out[0] == 20_000
        # PairRange: grows monotonically with r.
        assert pairrange_out == sorted(pairrange_out)
        assert pairrange_out[-1] > pairrange_out[0]
        # BlockSplit: non-decreasing, below PairRange for large r.
        assert blocksplit_out == sorted(blocksplit_out)
        assert blocksplit_out[-1] <= pairrange_out[-1]


class TestNodeSweep:
    def test_figure13_scaling(self):
        results = sweep_nodes(
            ["basic", "blocksplit", "pairrange"], [1, 2, 4, 8], SIZES
        )
        blocksplit_times = [results[n]["blocksplit"].execution_time for n in (1, 2, 4, 8)]
        basic_times = [results[n]["basic"].execution_time for n in (1, 2, 4, 8)]
        # Balanced strategies scale down; speedup 1->8 nodes is substantial.
        assert blocksplit_times == sorted(blocksplit_times, reverse=True)
        assert blocksplit_times[0] / blocksplit_times[-1] > 3.0
        # Basic saturates: best-case speedup stays small on skewed data.
        assert basic_times[0] / basic_times[-1] < 2.5

    def test_m_and_r_follow_nodes(self):
        results = sweep_nodes(["pairrange"], [2, 4], SIZES)
        assert results[2]["pairrange"].num_map_tasks == 4
        assert results[2]["pairrange"].num_reduce_tasks == 20
        assert results[4]["pairrange"].num_map_tasks == 8
        assert results[4]["pairrange"].num_reduce_tasks == 40


class TestInputOrderSweep:
    def test_figure11_sorted_hurts_blocksplit_only(self):
        results = sweep_input_order(
            ["blocksplit", "pairrange"],
            ["shuffled", "sorted"],
            SIZES,
            num_map_tasks=8,
            num_nodes=4,
            reduce_task_counts=(16, 32),
        )
        for r in (16, 32):
            unsorted_bs = results["shuffled"][r]["blocksplit"].execution_time
            sorted_bs = results["sorted"][r]["blocksplit"].execution_time
            assert sorted_bs > 1.2 * unsorted_bs
            unsorted_pr = results["shuffled"][r]["pairrange"].execution_time
            sorted_pr = results["sorted"][r]["pairrange"].execution_time
            assert sorted_pr == pytest.approx(unsorted_pr, rel=0.15)


class TestDatasetStatistics:
    def test_fields(self):
        stats = dataset_statistics(SIZES)
        assert stats["entities"] == 20_000
        assert stats["blocks"] == 200
        assert stats["pairs"] > 0
        assert 0 < stats["largest_block_entity_share"] < 1
        assert 0 < stats["largest_block_pair_share"] < 1
