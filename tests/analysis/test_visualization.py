"""Text visualisations: bar charts, Gantt, sparklines."""

from __future__ import annotations

import pytest

from repro.analysis.visualization import bar_chart, gantt, sparkline, workload_chart
from repro.cluster.simulation import ClusterSimulator, ClusterSpec, TaskSpec


class TestBarChart:
    def test_scaling(self):
        chart = bar_chart([10, 5, 0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5
        assert lines[2].count("█") == 0

    def test_labels_and_title(self):
        chart = bar_chart([1.0], labels=["task"], title="T")
        assert chart.splitlines()[0] == "T"
        assert "task" in chart

    def test_all_zero(self):
        chart = bar_chart([0, 0], width=5)
        assert "█" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart([])
        with pytest.raises(ValueError):
            bar_chart([-1])
        with pytest.raises(ValueError):
            bar_chart([1], width=0)
        with pytest.raises(ValueError):
            bar_chart([1], labels=["a", "b"])

    def test_workload_chart_sections(self):
        chart = workload_chart({"basic": [5, 1], "pairrange": [3, 3]})
        assert "basic — comparisons per reduce task" in chart
        assert "pairrange — comparisons per reduce task" in chart


class TestGantt:
    def _phase(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=2))
        tasks = [TaskSpec(f"t{i}", 2.0 + i) for i in range(6)]
        return simulator.simulate_phase("reduce", tasks, slots_per_node=2)

    def test_rows_per_slot(self):
        text = gantt(self._phase(), width=40)
        lines = text.splitlines()
        assert "reduce phase" in lines[0]
        assert sum(1 for line in lines if line.startswith("n00.")) == 2
        assert sum(1 for line in lines if line.startswith("n01.")) == 2

    def test_empty_phase(self):
        from repro.cluster.timeline import PhaseTimeline

        empty = PhaseTimeline("map", 0.0, (), 2)
        assert "(no tasks)" in gantt(empty)

    def test_max_rows_elision(self):
        simulator = ClusterSimulator(ClusterSpec(num_nodes=8))
        tasks = [TaskSpec(f"t{i}", 1.0) for i in range(16)]
        phase = simulator.simulate_phase("reduce", tasks, slots_per_node=2)
        text = gantt(phase, max_rows=4)
        assert "more slots" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            gantt(self._phase(), width=0)


class TestSparkline:
    def test_trend(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""
