"""Text rendering of tables and series."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_seconds, format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "a" in lines[2]
        assert "22" in lines[3]

    def test_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_number_formatting(self):
        text = format_table(["n"], [[1234567]])
        assert "1,234,567" in text

    def test_float_formatting(self):
        text = format_table(["f"], [[0.1234567]])
        assert "0.1235" in text

    def test_bool_formatting(self):
        text = format_table(["b"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeries:
    def test_columns(self):
        text = format_series(
            "r", [20, 40], {"basic": [1.0, 2.0], "blocksplit": [0.5, 0.6]}
        )
        lines = text.splitlines()
        assert "basic" in lines[0] and "blocksplit" in lines[0]
        assert len(lines) == 4

    def test_short_series_padded(self):
        text = format_series("x", [1, 2], {"y": [9]})
        assert text  # second row simply has an empty cell


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(95.4) == "95 s"

    def test_minutes(self):
        assert format_seconds(725) == "12 min 5 s"

    def test_hours(self):
        assert format_seconds(4320) == "1.20 h"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-1)
