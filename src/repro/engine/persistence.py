"""Versioned JSON persistence for :class:`~repro.engine.result.PipelineResult`.

``result.save(path)`` writes a self-describing JSON document and
``PipelineResult.load(path)`` reconstructs the result from it — matches
(ids *and* scores), every counter (job-level and per-task), the BDM,
the analytic plans, and the simulated timeline all round-trip exactly.
The analysis layer builds on this: a persisted run carries its BDM, so
:func:`~repro.analysis.experiments.sweep_from_result` can replan whole
parameter sweeps from the file without ever re-executing the pipeline.

What is *not* persisted: raw map/reduce output records of the two jobs
(other than the matches, which are first-class).  Loaded ``JobResult``
objects keep per-task statistics and counters but have empty ``output``
tuples, and job properties are dropped — workload accessors
(``reduce_comparisons()``, ``total_comparisons()``, ``map_output_kv()``)
behave identically on a loaded result.

The format is versioned (``"format"`` / ``"version"`` header); loaders
reject documents they do not understand instead of misreading them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from ..cluster.timeline import (
    JobTimeline,
    PhaseTimeline,
    TaskExecution,
    WorkflowTimeline,
)
from ..core.bdm import BlockDistributionMatrix
from ..core.planning import BdmJobPlan, StrategyPlan
from ..core.two_source import DualSourceBDM
from ..er.entity import Entity
from ..er.matching import MatchPair, MatchResult
from ..mapreduce.counters import Counters
from ..mapreduce.job import JobConfig
from ..mapreduce.runtime import JobResult, MapTaskResult, ReduceTaskResult
from ..mapreduce.types import Partition
from .incremental import CorpusState
from .result import PipelineResult

#: Document type tag and the newest schema version this code writes.
RESULT_FORMAT = "repro.pipeline-result"
RESULT_VERSION = 1

#: Corpus-state document tag / newest version (see ``save_state``).
STATE_FORMAT = "repro.corpus-state"
STATE_VERSION = 1


class PersistenceError(ValueError):
    """A document could not be recognised as a persisted pipeline result."""


# ---------------------------------------------------------------------------
# Block keys: JSON-safe, type-exact encoding
# ---------------------------------------------------------------------------
# Blocking keys are usually strings (PrefixBlocking), but nothing stops a
# custom blocking function from producing ints or tuples.  Plain strings
# pass through untouched; everything else is wrapped in a small tagged
# object so the round trip restores the exact type (JSON alone would
# collapse tuples into lists and is ambiguous about int-valued floats).


def _encode_key(key: Any) -> Any:
    if isinstance(key, str):
        return key
    if isinstance(key, bool) or key is None:
        return {"t": "const", "v": repr(key)}
    if isinstance(key, int):
        return {"t": "int", "v": key}
    if isinstance(key, float):
        return {"t": "float", "v": key}
    if isinstance(key, tuple):
        return {"t": "tuple", "v": [_encode_key(item) for item in key]}
    raise PersistenceError(
        f"cannot persist block key of type {type(key).__name__}: {key!r}"
    )


def _decode_key(data: Any) -> Any:
    if isinstance(data, str):
        return data
    tag, value = data["t"], data.get("v")
    if tag == "const":
        return {"True": True, "False": False, "None": None}[value]
    if tag == "int":
        return int(value)
    if tag == "float":
        return float(value)
    if tag == "tuple":
        return tuple(_decode_key(item) for item in value)
    raise PersistenceError(f"unknown block-key tag {tag!r}")


# ---------------------------------------------------------------------------
# Component encoders
# ---------------------------------------------------------------------------


def _encode_matches(matches: "MatchResult | None") -> list | None:
    if matches is None:
        return None
    return [[pair.id1, pair.id2, pair.similarity] for pair in matches]


def _decode_matches(data: list | None) -> "MatchResult | None":
    if data is None:
        return None
    return MatchResult(
        MatchPair(id1, id2, similarity) for id1, id2, similarity in data
    )


def _encode_bdm(bdm: "BlockDistributionMatrix | DualSourceBDM | None") -> dict | None:
    if bdm is None:
        return None
    encoded = {
        "block_keys": [_encode_key(key) for key in bdm.block_keys],
        "sizes": [
            [bdm.size(block, partition) for partition in range(bdm.num_partitions)]
            for block in range(bdm.num_blocks)
        ],
    }
    if isinstance(bdm, DualSourceBDM):
        encoded["partition_sources"] = list(bdm.partition_sources)
    return encoded


def _decode_bdm(data: dict | None) -> "BlockDistributionMatrix | DualSourceBDM | None":
    if data is None:
        return None
    bdm = BlockDistributionMatrix(
        [_decode_key(key) for key in data["block_keys"]], data["sizes"]
    )
    sources = data.get("partition_sources")
    if sources is not None:
        return DualSourceBDM(bdm, sources)
    return bdm


def _encode_job(job: "JobResult | None") -> dict | None:
    if job is None:
        return None
    return {
        "job_name": job.job_name,
        "num_map_tasks": job.config.num_map_tasks,
        "num_reduce_tasks": job.config.num_reduce_tasks,
        "map_tasks": [
            {
                "partition_index": task.partition_index,
                "input_records": task.input_records,
                "output_records": task.output_records,
                "counters": task.counters.as_dict(),
            }
            for task in job.map_tasks
        ],
        "reduce_tasks": [
            {
                "reduce_index": task.reduce_index,
                "input_records": task.input_records,
                "input_groups": task.input_groups,
                "output_records": task.output_records,
                "counters": task.counters.as_dict(),
            }
            for task in job.reduce_tasks
        ],
        "counters": job.counters.as_dict(),
    }


def _decode_job(data: dict | None) -> "JobResult | None":
    if data is None:
        return None
    return JobResult(
        job_name=data["job_name"],
        config=JobConfig(
            num_map_tasks=data["num_map_tasks"],
            num_reduce_tasks=data["num_reduce_tasks"],
        ),
        map_tasks=tuple(
            MapTaskResult(
                partition_index=task["partition_index"],
                input_records=task["input_records"],
                output_records=task["output_records"],
                counters=Counters(task["counters"]),
                output=(),
            )
            for task in data["map_tasks"]
        ),
        reduce_tasks=tuple(
            ReduceTaskResult(
                reduce_index=task["reduce_index"],
                input_records=task["input_records"],
                input_groups=task["input_groups"],
                output_records=task["output_records"],
                counters=Counters(task["counters"]),
                output=(),
            )
            for task in data["reduce_tasks"]
        ),
        counters=Counters(data["counters"]),
    )


def _encode_plan(plan: "StrategyPlan | None") -> dict | None:
    if plan is None:
        return None
    return {
        "strategy": plan.strategy,
        "num_map_tasks": plan.num_map_tasks,
        "num_reduce_tasks": plan.num_reduce_tasks,
        "total_pairs": plan.total_pairs,
        "map_input_records": list(plan.map_input_records),
        "map_output_kv": list(plan.map_output_kv),
        "reduce_input_kv": list(plan.reduce_input_kv),
        "reduce_comparisons": list(plan.reduce_comparisons),
    }


def _decode_plan(data: dict | None) -> "StrategyPlan | None":
    if data is None:
        return None
    return StrategyPlan(
        strategy=data["strategy"],
        num_map_tasks=data["num_map_tasks"],
        num_reduce_tasks=data["num_reduce_tasks"],
        total_pairs=data["total_pairs"],
        map_input_records=tuple(data["map_input_records"]),
        map_output_kv=tuple(data["map_output_kv"]),
        reduce_input_kv=tuple(data["reduce_input_kv"]),
        reduce_comparisons=tuple(data["reduce_comparisons"]),
    )


def _encode_bdm_plan(plan: "BdmJobPlan | None") -> dict | None:
    if plan is None:
        return None
    return {
        "map_input_records": list(plan.map_input_records),
        "map_output_kv": list(plan.map_output_kv),
        "reduce_input_kv": list(plan.reduce_input_kv),
        "num_reduce_tasks": plan.num_reduce_tasks,
    }


def _decode_bdm_plan(data: dict | None) -> "BdmJobPlan | None":
    if data is None:
        return None
    return BdmJobPlan(
        map_input_records=tuple(data["map_input_records"]),
        map_output_kv=tuple(data["map_output_kv"]),
        reduce_input_kv=tuple(data["reduce_input_kv"]),
        num_reduce_tasks=data["num_reduce_tasks"],
    )


def _encode_timeline(timeline: "WorkflowTimeline | None") -> dict | None:
    if timeline is None:
        return None

    def phase(p: PhaseTimeline) -> dict:
        return {
            "phase": p.phase,
            "start": p.start,
            "num_slots": p.num_slots,
            "executions": [
                [t.name, t.node, t.slot, t.start, t.end] for t in p.executions
            ],
        }

    return {
        "jobs": [
            {
                "job_name": job.job_name,
                "setup_time": job.setup_time,
                "map_phase": phase(job.map_phase),
                "reduce_phase": phase(job.reduce_phase),
            }
            for job in timeline.jobs
        ]
    }


def _decode_timeline(data: dict | None) -> "WorkflowTimeline | None":
    if data is None:
        return None

    def phase(p: dict) -> PhaseTimeline:
        return PhaseTimeline(
            phase=p["phase"],
            start=p["start"],
            num_slots=p["num_slots"],
            executions=tuple(
                TaskExecution(name=name, node=node, slot=slot, start=start, end=end)
                for name, node, slot, start, end in p["executions"]
            ),
        )

    return WorkflowTimeline(
        jobs=tuple(
            JobTimeline(
                job_name=job["job_name"],
                setup_time=job["setup_time"],
                map_phase=phase(job["map_phase"]),
                reduce_phase=phase(job["reduce_phase"]),
            )
            for job in data["jobs"]
        )
    )


# ---------------------------------------------------------------------------
# Document-level API
# ---------------------------------------------------------------------------


def result_to_dict(result: PipelineResult) -> dict:
    """The persisted-document form of ``result`` (JSON-serializable)."""
    return {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "strategy": result.strategy,
        "backend": result.backend,
        "matches": _encode_matches(result.matches),
        "bdm": _encode_bdm(result.bdm),
        "job1": _encode_job(result.job1),
        "job2": _encode_job(result.job2),
        "plan": _encode_plan(result.plan),
        "bdm_plan": _encode_bdm_plan(result.bdm_plan),
        "timeline": _encode_timeline(result.timeline),
    }


def result_from_dict(data: dict) -> PipelineResult:
    """Rebuild a :class:`PipelineResult` from its persisted form."""
    if not isinstance(data, dict) or data.get("format") != RESULT_FORMAT:
        raise PersistenceError(
            f"not a {RESULT_FORMAT} document "
            f"(format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"expected a JSON object, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != RESULT_VERSION:
        raise PersistenceError(
            f"unsupported {RESULT_FORMAT} version {version!r} "
            f"(this build reads version {RESULT_VERSION})"
        )
    try:
        return PipelineResult(
            strategy=data["strategy"],
            backend=data["backend"],
            matches=_decode_matches(data["matches"]),
            bdm=_decode_bdm(data["bdm"]),
            job1=_decode_job(data["job1"]),
            job2=_decode_job(data["job2"]),
            plan=_decode_plan(data["plan"]),
            bdm_plan=_decode_bdm_plan(data["bdm_plan"]),
            timeline=_decode_timeline(data["timeline"]),
        )
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        # Right header, broken body (truncated/hand-edited document):
        # still a persistence problem, not a caller bug.
        raise PersistenceError(
            f"malformed {RESULT_FORMAT} v{RESULT_VERSION} document: {exc!r}"
        ) from exc


def save_result(result: PipelineResult, path: "str | Path") -> Path:
    """Write ``result`` as versioned JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, separators=(",", ":"))
        handle.write("\n")
    return target


def load_result(path: "str | Path") -> PipelineResult:
    """Read a result saved by :func:`save_result`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{path}: not valid JSON ({exc})") from exc
    return result_from_dict(data)


# ---------------------------------------------------------------------------
# Corpus state (incremental ER)
# ---------------------------------------------------------------------------
# A state directory holds two files:
#
#   matches.log  — one JSON line per ingest: that ingest's new matches.
#                  Append-only in content: an advanced state's log is
#                  the old log plus one line.
#   state.json   — the versioned document: annotated partitions, BDM,
#                  cumulative comparisons, and ``num_ingests`` — the
#                  number of *valid* log lines.
#
# Both files are written tmp-then-``os.replace``, the log strictly
# before the state, so ``state.json`` is the single atomic commit
# point: a crash mid-save leaves the previous state fully readable
# (extra trailing log lines from an uncommitted ingest are ignored),
# never a torn one.

STATE_FILE = "state.json"
MATCH_LOG_FILE = "matches.log"


def _encode_entity(entity: Entity) -> dict:
    return {
        "id": entity.entity_id,
        "attrs": dict(entity.attributes),
        "source": entity.source,
    }


def _decode_entity(data: dict) -> Entity:
    return Entity(data["id"], data["attrs"], data["source"])


def _encode_annotated_partition(partition: Partition) -> list:
    return [
        [_encode_key(record.key), _encode_entity(record.value)]
        for record in partition
    ]


def _decode_annotated_partition(data: list, index: int) -> Partition:
    return Partition.from_pairs(
        [(_decode_key(key), _decode_entity(entity)) for key, entity in data],
        index=index,
    )


def state_to_dict(state: CorpusState) -> dict:
    """The ``state.json`` form of ``state`` (everything but the match log)."""
    return {
        "format": STATE_FORMAT,
        "version": STATE_VERSION,
        "partitions": [
            _encode_annotated_partition(p) for p in state.partitions
        ],
        "bdm": _encode_bdm(state.bdm),
        "comparisons": state.comparisons,
        "num_ingests": state.num_ingests,
        "match_counts": [len(entry) for entry in state.match_log],
    }


def state_from_dict(
    data: dict, match_log: "tuple[tuple[MatchPair, ...], ...]" = ()
) -> CorpusState:
    """Rebuild a :class:`CorpusState` from its persisted form.

    ``match_log`` supplies the decoded ``matches.log`` entries
    (:func:`load_state` wires the two files together).
    """
    if not isinstance(data, dict) or data.get("format") != STATE_FORMAT:
        raise PersistenceError(
            f"not a {STATE_FORMAT} document "
            f"(format={data.get('format')!r})"
            if isinstance(data, dict)
            else f"expected a JSON object, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != STATE_VERSION:
        raise PersistenceError(
            f"unsupported {STATE_FORMAT} version {version!r} "
            f"(this build reads version {STATE_VERSION})"
        )
    try:
        num_ingests = data["num_ingests"]
        match_counts = data["match_counts"]
        if len(match_log) < num_ingests:
            raise ValueError(
                f"match log has {len(match_log)} ingests, state "
                f"expects {num_ingests}"
            )
        # Trailing log entries beyond num_ingests belong to an ingest
        # whose state.json commit never happened — drop them.
        match_log = tuple(match_log[:num_ingests])
        for i, (entry, count) in enumerate(zip(match_log, match_counts)):
            if len(entry) != count:
                raise ValueError(
                    f"ingest {i} logged {len(entry)} matches, state "
                    f"expects {count}"
                )
        return CorpusState(
            partitions=tuple(
                _decode_annotated_partition(p, index=i)
                for i, p in enumerate(data["partitions"])
            ),
            bdm=_decode_bdm(data["bdm"]),
            match_log=match_log,
            comparisons=data["comparisons"],
        )
    except PersistenceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"malformed {STATE_FORMAT} v{STATE_VERSION} document: {exc!r}"
        ) from exc


def _replace_into(directory: Path, name: str, content: str) -> None:
    """Write ``content`` to ``directory/name`` atomically (tmp + rename)."""
    tmp = directory / f".{name}.tmp"
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(content)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, directory / name)


def save_state(state: CorpusState, state_dir: "str | Path") -> Path:
    """Persist ``state`` into ``state_dir``; returns the directory.

    The match log is written first, the state document last — each
    atomically — so a reader (or a crash) can never observe a state
    that references log entries which are not durably on disk.
    """
    directory = Path(state_dir)
    directory.mkdir(parents=True, exist_ok=True)
    log_lines = [
        json.dumps(
            [[p.id1, p.id2, p.similarity] for p in entry],
            separators=(",", ":"),
        )
        for entry in state.match_log
    ]
    _replace_into(
        directory, MATCH_LOG_FILE, "".join(line + "\n" for line in log_lines)
    )
    _replace_into(
        directory,
        STATE_FILE,
        json.dumps(state_to_dict(state), separators=(",", ":")) + "\n",
    )
    return directory


def load_state(state_dir: "str | Path") -> CorpusState:
    """Read a state saved by :func:`save_state`."""
    directory = Path(state_dir)
    state_path = directory / STATE_FILE
    with state_path.open("r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{state_path}: not valid JSON ({exc})") from exc
    log_path = directory / MATCH_LOG_FILE
    entries: list[tuple[MatchPair, ...]] = []
    if log_path.exists():
        with log_path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle):
                if not line.strip():
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise PersistenceError(
                        f"{log_path}:{lineno + 1}: not valid JSON ({exc})"
                    ) from exc
                entries.append(
                    tuple(MatchPair(id1, id2, sim) for id1, id2, sim in row)
                )
    return state_from_dict(data, tuple(entries))
