"""The distributed backend: task units on worker *processes* over sockets.

This is the paper's deployment story made real at miniature scale: the
whole point of BlockSplit/PairRange is that independent workers receive
even shares of the comparison workload, and here the workers finally
are independent OS processes rather than threads of one interpreter.
The driver (:class:`DistributedRuntime`) listens on a loopback socket,
spawns ``num_workers`` processes running ``python -m repro.worker``,
and ships them the very same schedulable task units every other runtime
executes — :func:`~repro.mapreduce.runtime.execute_map_task` /
:func:`~repro.mapreduce.runtime.execute_reduce_task` — serialized over
the length-prefixed framing of :mod:`repro.mapreduce.transport`.

Determinism is preserved by construction:

* task units are pure (no shared state; side outputs ride back on the
  result and are applied by the driver, in task order);
* tasks are *pulled* in submission order (so ``task-started`` events
  and cancellation checks fire exactly as in the serial runtime);
* results are merged and drained through the sink in **task-index
  order**, whatever order workers finish in.

So matches, counters, per-task statistics and the execution-event
stream are byte-identical to the serial backend — proven per strategy ×
source-arity × memory budget in ``tests/engine/test_distributed.py``.

Fault tolerance (the part a networked backend cannot skip):

* every worker heartbeats; a silent worker is declared dead after
  ``heartbeat_timeout`` seconds;
* a worker whose connection drops (crash) or whose current task
  exceeds ``task_timeout`` is killed and its task is **requeued** to a
  surviving worker — at most ``max_task_retries`` times, then the job
  fails with a clean :class:`DistributedExecutionError`;
* a lost worker can be **respawned** — a fresh process under a fresh
  index — bounded by the ``max_worker_respawns`` budget (default 0:
  the pool only shrinks, the original behaviour).  Respawning restores
  pool capacity; the requeue path above is unchanged and the respawned
  worker is simply one more survivor to requeue onto;
* a task that *raises* is not retried (the failure is deterministic);
  the remote exception propagates to the driver exactly like the
  in-process backends propagate theirs;
* a late result from a worker that was already declared dead is
  discarded by task id, so a requeued task can never be double-counted.

``tests/engine/test_fault_injection.py`` drives all of this with real
injected crashes and hangs (see the env hooks in :mod:`repro.worker`).

The spawn/authenticate half lives in :class:`WorkerLauncher` so the
long-lived shared pool of :mod:`repro.serve` reuses it verbatim: same
token preamble, same environment plumbing, same hello validation.
"""

from __future__ import annotations

import itertools
import os
import queue
import secrets
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Iterable

from ..mapreduce.dfs import DistributedFileSystem
from ..mapreduce.runtime import (
    LocalRuntime,
    TaskCall,
    execute_map_task,
    execute_reduce_task,
)
from ..mapreduce.transport import (
    ENV_TOKEN,
    Connection,
    Listener,
    TransportError,
    encode_message,
)
from .backend import register_backend
from .executing import ExecutingBackendBase

#: Task-unit functions → the names the wire protocol ships.
_UNIT_NAMES: dict[Callable[..., Any], str] = {
    execute_map_task: "map",
    execute_reduce_task: "reduce",
}


class DistributedExecutionError(RuntimeError):
    """The distributed runtime could not finish a job: workers were
    lost faster than tasks could be retried, a worker failed to start,
    or a task exhausted its retry budget."""


class WorkerLauncher:
    """Spawns and authenticates ``python -m repro.worker`` processes.

    Owns the accept socket and the per-cluster token, and knows how to
    build the child environment (token via :data:`ENV_TOKEN`, never
    argv; ``PYTHONPATH`` extended so workers import :mod:`repro` the
    same way the driver does).  :class:`DistributedRuntime` uses one
    per job pool; the long-lived shared pool of :mod:`repro.serve`
    uses one for the daemon's lifetime.
    """

    def __init__(self, *, heartbeat_interval: float = 0.5):
        self.listener = Listener()
        self.heartbeat_interval = heartbeat_interval
        #: Random per-pool token; workers echo it back as a raw byte
        #: preamble before anything is unpickled from their connection.
        # repro-lint: disable=nondeterministic-call -- auth secret; never in results
        self.token: bytes = secrets.token_hex(16).encode("ascii")
        self._env: dict[str, str] | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.listener.address

    def _build_env(self) -> dict[str, str]:
        env = os.environ.copy()
        # The token travels via the environment, never argv — other
        # local users can read a process's command line from /proc.
        env[ENV_TOKEN] = self.token.decode("ascii")
        # Workers must import repro the same way the driver does, even
        # when it is not installed (PYTHONPATH=src checkouts).
        import repro

        package_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing
            else package_root + os.pathsep + existing
        )
        return env

    def spawn(self, index: int) -> subprocess.Popen:
        """Start one worker process that will connect back and
        authenticate under ``index``."""
        if self._env is None:
            self._env = self._build_env()
        host, port = self.listener.address
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.worker",
                "--host", host, "--port", str(port),
                "--index", str(index),
                "--heartbeat-interval", str(self.heartbeat_interval),
            ],
            env=self._env,
        )

    def accept(self, timeout: float) -> tuple[int, Connection]:
        """Wait for one worker to connect and authenticate.

        Authentication happens on raw bytes, *before* the first pickled
        message is read from the socket — an unauthenticated local peer
        never gets attacker-controlled bytes into ``pickle.loads``.
        Raises :class:`DistributedExecutionError` on a bad token or
        hello, :class:`~repro.mapreduce.transport.TransportError` when
        nothing connects in time.
        """
        conn = self.listener.accept(timeout=timeout)
        preamble = conn.recv_raw(len(self.token), timeout=timeout)
        if not secrets.compare_digest(preamble, self.token):
            conn.close()
            raise DistributedExecutionError(
                "worker authentication failed: bad token preamble"
            )
        hello = conn.recv(timeout=timeout)
        if (
            not isinstance(hello, tuple)
            or len(hello) != 3
            or hello[0] != "hello"
        ):
            conn.close()
            raise DistributedExecutionError(
                "worker authentication failed: unexpected hello"
            )
        return hello[1], conn

    def close(self) -> None:
        self.listener.close()

    def __repr__(self) -> str:
        return f"WorkerLauncher(address={self.address})"


class _Task:
    """One in-flight task unit: its wire frame plus retry bookkeeping.

    The message is encoded once at creation — a requeue re-sends the
    identical frame, so retries cannot diverge from the first attempt.
    """

    __slots__ = ("task_id", "index", "unit", "frame", "attempts", "sent_at")

    def __init__(self, task_id: int, index: int, unit: str, frame: bytes):
        self.task_id = task_id
        self.index = index
        self.unit = unit
        self.frame = frame
        self.attempts = 0
        self.sent_at = 0.0

    def describe(self) -> str:
        return f"{self.unit} task #{self.index}"


class _WorkerHandle:
    """Driver-side view of one worker process."""

    __slots__ = ("index", "process", "conn", "task", "last_seen", "thread")

    def __init__(self, index: int, process: subprocess.Popen, conn: Connection):
        self.index = index
        self.process = process
        self.conn = conn
        self.task: _Task | None = None
        self.last_seen = time.monotonic()
        self.thread: threading.Thread | None = None

    def shutdown(self, *, kill: bool) -> None:
        """Stop the process: graceful (``shutdown`` message + SIGTERM)
        or immediate (SIGKILL, for hung/expired workers)."""
        if not kill:
            try:
                self.conn.send(("shutdown",))
            except TransportError:
                pass
        self.conn.close()
        if self.process.poll() is None:
            if kill:
                self.process.kill()
            else:
                self.process.terminate()
        try:
            self.process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


class DistributedRuntime(LocalRuntime):
    """Job executor that ships task units to worker processes.

    Parameters
    ----------
    num_workers:
        Worker processes to spawn (lazily, at the first task).
    task_timeout:
        Seconds one task may run on a worker before the worker is
        presumed stuck, killed, and the task requeued.  ``None``
        (default) disables the timeout — a heartbeating-but-hung worker
        is then indistinguishable from a slow one.
    max_task_retries:
        How many times one task may be *requeued* after a worker loss
        before the job fails (so a task runs at most
        ``max_task_retries + 1`` times).
    heartbeat_interval / heartbeat_timeout:
        Workers send a liveness message every ``heartbeat_interval``
        seconds; a worker silent for ``heartbeat_timeout`` seconds is
        declared dead (its process may be frozen rather than exited).
    startup_timeout:
        How long to wait for all spawned workers to connect back.
    max_worker_respawns:
        How many replacement workers may be spawned over the runtime's
        lifetime when workers are lost.  The default 0 keeps the
        original semantics (the pool only shrinks); a positive budget
        lets the pool heal — each lost worker is replaced by a fresh
        process under a fresh index, and the requeue path is unchanged
        (the replacement is simply one more survivor).

    The job (strategy job, matcher, blocking function, BDM) must be
    picklable — the same requirement as the parallel backend's process
    pool.  Matcher instance state mutated in workers stays in the
    workers; read per-run numbers from the job counters, which always
    ship back with the task results.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        num_workers: int = 2,
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = 15.0,
        startup_timeout: float = 60.0,
        max_worker_respawns: int = 0,
    ):
        super().__init__(dfs)
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {task_timeout}")
        if max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {max_task_retries}"
            )
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout}"
            )
        if max_worker_respawns < 0:
            raise ValueError(
                f"max_worker_respawns must be >= 0, got {max_worker_respawns}"
            )
        self.num_workers = num_workers
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_timeout = startup_timeout
        self.max_worker_respawns = max_worker_respawns
        self._respawns_left = max_worker_respawns
        self._workers: dict[int, _WorkerHandle] = {}
        self._launcher: WorkerLauncher | None = None
        self._started = False
        #: Fresh indices for respawned workers (never reuses a dead
        #: worker's slot, so late messages cannot be misattributed).
        self._worker_indices = itertools.count(num_workers)
        #: Receiver threads post ``(worker_index, message)`` here.
        self._completions: "queue.Queue[tuple[int, tuple]]" = queue.Queue()
        self._task_ids = itertools.count()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        for worker in list(self._workers.values()):
            worker.shutdown(kill=False)
        self._workers.clear()
        if self._launcher is not None:
            self._launcher.close()
            self._launcher = None

    def __enter__(self) -> "DistributedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cluster bring-up ----------------------------------------------------

    def _ensure_workers(self) -> None:
        """Spawn and authenticate the worker pool on first use.

        The pool lives for the runtime's lifetime (both jobs of the
        workflow pay startup once).  Workers lost later are replaced
        only within the ``max_worker_respawns`` budget (default 0) —
        past it the pool shrinks, and a pool whose workers have *all*
        been lost fails the job cleanly instead of deadlocking.
        """
        if self._started:
            return
        self._started = True
        launcher = WorkerLauncher(heartbeat_interval=self.heartbeat_interval)
        self._launcher = launcher
        processes: dict[int, subprocess.Popen] = {}
        try:
            for index in range(self.num_workers):
                processes[index] = launcher.spawn(index)
            deadline = time.monotonic() + self.startup_timeout
            for _ in range(self.num_workers):
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    index, conn = launcher.accept(timeout=remaining)
                except TransportError as exc:
                    exits = {
                        i: proc.poll() for i, proc in processes.items()
                    }
                    raise DistributedExecutionError(
                        f"worker startup failed: {exc} "
                        f"(worker exit codes so far: {exits})"
                    ) from exc
                self._register_worker(index, processes[index], conn)
        except BaseException:
            for proc in processes.values():
                if proc.poll() is None:
                    proc.kill()
            self.close()
            raise

    def _register_worker(
        self, index: int, process: subprocess.Popen, conn: Connection
    ) -> _WorkerHandle:
        worker = _WorkerHandle(index, process, conn)
        self._workers[index] = worker
        thread = threading.Thread(
            target=self._receive_loop,
            args=(worker,),
            name=f"repro-worker-recv-{index}",
            daemon=True,
        )
        worker.thread = thread
        thread.start()
        return worker

    def _respawn_worker(self) -> _WorkerHandle | None:
        """Replace one lost worker, if the respawn budget allows.

        A failed respawn (spawn error, startup timeout) consumes budget
        and returns ``None`` — the pool simply stays smaller, exactly
        as if no budget had been configured.
        """
        if self._respawns_left <= 0 or self._launcher is None:
            return None
        self._respawns_left -= 1
        index = next(self._worker_indices)
        process: subprocess.Popen | None = None
        try:
            process = self._launcher.spawn(index)
            accepted_index, conn = self._launcher.accept(
                timeout=self.startup_timeout
            )
            return self._register_worker(accepted_index, process, conn)
        except (OSError, TransportError, DistributedExecutionError):
            # Failed respawn: reap the half-started process and run on
            # with one fewer worker.
            if process is not None and process.poll() is None:
                process.kill()
            return None

    def _receive_loop(self, worker: _WorkerHandle) -> None:
        """Pump one worker's messages into the completion queue; a
        broken stream becomes a synthetic ``died`` message."""
        while True:
            try:
                message = worker.conn.recv()
            # Deliberately broad: *any* receive failure — transport,
            # truncated pickle, decode — means this worker is dead to
            # the scheduler, which owns retry/respawn policy.
            except Exception:  # repro-lint: disable=silent-except -- becomes a 'died' message
                self._completions.put((worker.index, ("died",)))
                return
            self._completions.put((worker.index, message))

    # -- scheduling ----------------------------------------------------------

    def _run_calls(
        self, calls: Iterable[TaskCall], sink: "Callable | None"
    ) -> list:
        """Distribute the task units, merging in task-index order.

        This single override carries both phases of both jobs: the base
        runtime routes ``_execute_map_tasks`` / ``_execute_reduce_tasks``
        through here.  Calls are pulled lazily — one per idle worker —
        so at most ``num_workers`` task payloads (reduce buckets
        included) are materialized in flight, and the pull point is
        where ``task-started`` events fire and cancellation is checked,
        exactly as in every other runtime.  ``sink`` is applied to each
        result in task-index order as the completed prefix grows.
        """
        self._ensure_workers()
        drain = sink if sink is not None else (lambda result: result)
        calls_iter = iter(calls)
        exhausted = False
        pulled = 0
        completed = 0
        next_index = 0
        buffered: dict[int, Any] = {}
        ordered: list = []
        requeued: deque[_Task] = deque()

        def next_task() -> _Task | None:
            nonlocal exhausted, pulled
            if requeued:
                return requeued.popleft()
            if exhausted:
                return None
            try:
                fn, args = next(calls_iter)
            except StopIteration:
                exhausted = True
                return None
            unit = _UNIT_NAMES[fn]
            task_id = next(self._task_ids)
            task = _Task(task_id, pulled, unit,
                         self._encode_task(task_id, unit, args))
            pulled += 1
            return task

        while True:
            for worker in [w for w in self._workers.values() if w.task is None]:
                task = next_task()
                if task is None:
                    break
                self._dispatch(worker, task, requeued)
            if exhausted and not requeued and completed == pulled:
                break
            if not self._workers:
                raise DistributedExecutionError(
                    "all workers were lost with work remaining "
                    f"({pulled - completed} task(s) unfinished)"
                )
            finished = self._wait_for_completion(requeued)
            if finished is not None:
                task, result = finished
                buffered[task.index] = result
                completed += 1
                while next_index in buffered:
                    ordered.append(drain(buffered.pop(next_index)))
                    next_index += 1
        return ordered

    def _encode_task(self, task_id: int, unit: str, args: tuple) -> bytes:
        try:
            return encode_message(("task", task_id, unit, args))
        except Exception as exc:
            raise DistributedExecutionError(
                "the distributed backend ships task units to worker "
                f"processes, but this {unit} task cannot be pickled "
                f"(job, matcher and blocking function must all support "
                f"pickle): {exc!r}"
            ) from exc

    def _dispatch(
        self, worker: _WorkerHandle, task: _Task, requeued: "deque[_Task]"
    ) -> None:
        worker.task = task
        task.sent_at = time.monotonic()
        try:
            worker.conn.send_bytes(task.frame)
        except TransportError:
            self._fail_worker(worker, "connection failed at dispatch", requeued)

    def _wait_for_completion(
        self, requeued: "deque[_Task]"
    ) -> "tuple[_Task, Any] | None":
        """Handle one scheduling event; a finished task or ``None``.

        Raises the remote exception for a failed task (deterministic
        failures are not retried) and :class:`DistributedExecutionError`
        when a loss exhausts the retry budget or the pool.
        """
        self._reap_expired(requeued)
        try:
            worker_index, message = self._completions.get(
                timeout=self._tick()
            )
        except queue.Empty:
            return None
        worker = self._workers.get(worker_index)
        if worker is None:
            return None  # stale: that worker was already written off
        worker.last_seen = time.monotonic()
        kind = message[0]
        if kind == "died":
            self._fail_worker(worker, "worker process died", requeued)
            return None
        if kind in ("result", "error"):
            task = worker.task
            if task is None or task.task_id != message[1]:
                return None  # stale reply for a task requeued elsewhere
            worker.task = None
            if kind == "error":
                raise message[2]
            return task, message[2]
        return None  # heartbeat (or unknown chatter): liveness recorded

    def _tick(self) -> float | None:
        """How long the scheduler may block before a deadline needs
        checking (``None`` = no deadlines configured, wait for events)."""
        deadlines: list[float] = []
        for worker in self._workers.values():
            if self.heartbeat_timeout is not None:
                deadlines.append(worker.last_seen + self.heartbeat_timeout)
            if self.task_timeout is not None and worker.task is not None:
                deadlines.append(worker.task.sent_at + self.task_timeout)
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - time.monotonic())

    def _reap_expired(self, requeued: "deque[_Task]") -> None:
        now = time.monotonic()
        expired: list[tuple[_WorkerHandle, str]] = []
        for worker in self._workers.values():
            if (
                self.task_timeout is not None
                and worker.task is not None
                and now - worker.task.sent_at > self.task_timeout
            ):
                expired.append((
                    worker,
                    f"{worker.task.describe()} exceeded "
                    f"task_timeout={self.task_timeout}s",
                ))
            elif (
                self.heartbeat_timeout is not None
                and now - worker.last_seen > self.heartbeat_timeout
            ):
                expired.append((
                    worker,
                    f"no heartbeat for {self.heartbeat_timeout}s",
                ))
        for worker, reason in expired:
            self._fail_worker(worker, reason, requeued)

    def _fail_worker(
        self, worker: _WorkerHandle, reason: str, requeued: "deque[_Task]"
    ) -> None:
        """Write a worker off: kill it, respawn within budget, requeue
        its task (bounded).

        Raising here fails the whole job — cleanup happens in
        :meth:`close` via the backend's ``finally``.
        """
        self._workers.pop(worker.index, None)
        task = worker.task
        worker.task = None
        worker.shutdown(kill=True)
        # Heal the pool before deciding the task's fate: a successful
        # respawn is one more survivor for the unchanged requeue path.
        self._respawn_worker()
        if task is None:
            return
        task.attempts += 1
        if task.attempts > self.max_task_retries:
            raise DistributedExecutionError(
                f"{task.describe()} failed {task.attempts} time(s) and "
                f"exhausted its retry budget "
                f"(max_task_retries={self.max_task_retries}); "
                f"last failure: worker {worker.index}: {reason}"
            )
        if not self._workers:
            raise DistributedExecutionError(
                f"worker {worker.index} was lost ({reason}) and no "
                f"workers survive to retry {task.describe()}"
            )
        requeued.append(task)


@register_backend
class DistributedBackend(ExecutingBackendBase):
    """Executes the workflow on :class:`DistributedRuntime` worker
    processes; registry name ``"distributed"`` (CLI: ``--backend
    distributed --workers N --task-timeout S --max-worker-respawns
    K``)."""

    name = "distributed"

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        num_workers: int | None = None,
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = 15.0,
        max_worker_respawns: int = 0,
    ):
        self._dfs = dfs
        self.num_workers = num_workers
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_worker_respawns = max_worker_respawns

    def make_runtime(self) -> DistributedRuntime:
        return DistributedRuntime(
            self._dfs,
            num_workers=self.num_workers if self.num_workers is not None else 2,
            task_timeout=self.task_timeout,
            max_task_retries=self.max_task_retries,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            max_worker_respawns=self.max_worker_respawns,
        )

    def __repr__(self) -> str:
        return (
            f"DistributedBackend(num_workers={self.num_workers}, "
            f"task_timeout={self.task_timeout}, "
            f"max_task_retries={self.max_task_retries})"
        )
