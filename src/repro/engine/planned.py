"""The planned backend: analytic planners + cluster simulation, no execution.

Computes the BDM directly from the input partitions (what Job 1 would
output), asks the strategy for its exact workload plan, and simulates
the two-job workflow on a configurable cluster.  This is the DS2-scale
path — ~10⁹ comparisons are *planned* in milliseconds rather than
executed — behind the very same ``run()`` signature as the executing
backends.  The returned result has ``matches=None`` and carries the
plan and timeline instead.

Streaming inputs compose naturally: a request carrying only a
:class:`~repro.io.RecordSource` is planned from the source's shard-level
block statistics (one streaming pass), so no record is ever
materialized on this path.

Plans are derived from BDM pair counts alone, so they are invariant
under the execution-side hot-path switches (bit-parallel kernel,
prepared matchers, packed shuffle keys) — the hot-path equivalence
suite pins this down by comparing planned results across those
configurations.
"""

from __future__ import annotations

from ..cluster.costmodel import CostModel
from ..cluster.simulation import ClusterSpec
from ..core.bdm import analytic_bdm
from ..core.delta import merge_delta_bdm
from ..core.planning import plan_bdm_job
from ..core.two_source import analytic_dual_bdm
from .backend import ExecutionBackend, PipelineRequest, register_backend
from .executing import analytic_plans
from .result import PipelineResult
from .simulate import simulate_planned_workflow

#: Cluster used when neither the backend nor the pipeline configures one
#: (the paper's default EC2 setup scale).
DEFAULT_CLUSTER = ClusterSpec(num_nodes=10)


@register_backend
class PlannedBackend(ExecutionBackend):
    """Plans and simulates the workflow instead of executing it."""

    name = "planned"
    executes = False

    def __init__(
        self,
        cluster: ClusterSpec | None = None,
        cost_model: CostModel | None = None,
        *,
        avg_comparison_length: float | None = None,
        comparison_noise_sigma: float = 0.0,
        noise_seed: int = 11,
    ):
        self.cluster = cluster
        self.cost_model = cost_model
        self.avg_comparison_length = avg_comparison_length
        self.comparison_noise_sigma = comparison_noise_sigma
        self.noise_seed = noise_seed

    def execute(self, request: PipelineRequest, events=None) -> PipelineResult:
        # Planning emits no task events (there are no tasks), but a
        # cancelled submission must still stop before the analytic work.
        if events is not None:
            events.raise_if_cancelled()
        if request.delta is not None:
            return self._plan_delta(request)
        raw_sizes = None
        if request.dual:
            bdm = analytic_dual_bdm(request.partitions, request.blocking)
        elif not request.partitions and request.source is not None:
            # Streaming path: one statistics pass yields both the BDM
            # and the split sizes — the source is never streamed again.
            stats = request.source.block_statistics(request.blocking)
            bdm = stats.to_bdm()
            raw_sizes = stats.shard_records
        else:
            bdm = analytic_bdm(request.partitions, request.blocking)
        plan, bdm_plan = analytic_plans(
            request, bdm, raw_partition_sizes=raw_sizes
        )
        timeline = None
        if plan is not None:
            cluster = request.cluster or self.cluster or DEFAULT_CLUSTER
            timeline = simulate_planned_workflow(
                plan,
                cluster,
                request.cost_model or self.cost_model,
                bdm_plan=bdm_plan,
                avg_comparison_length=self.avg_comparison_length,
                comparison_noise_sigma=self.comparison_noise_sigma,
                noise_seed=self.noise_seed,
            )
        return PipelineResult(
            strategy=request.strategy.name,
            backend=self.name,
            matches=None,
            bdm=bdm,
            job1=None,
            job2=None,
            plan=plan,
            bdm_plan=bdm_plan,
            timeline=timeline,
        )

    def _plan_delta(self, request: PipelineRequest) -> PipelineResult:
        """Plan an incremental ingest without executing it: the delta's
        analytic BDM merged with the persisted one, the strategy's
        delta plan, and the simulated timeline of the remaining work."""
        spec = request.delta
        if spec is None:
            raise RuntimeError("_plan_delta called without request.delta")
        r = request.num_reduce_tasks
        delta_plain = analytic_bdm(request.partitions, request.blocking)
        merged = merge_delta_bdm(spec.old_bdm, delta_plain, len(request.partitions))
        plan = (
            request.strategy.plan_delta(merged, r) if merged.num_blocks else None
        )
        bdm_plan = (
            plan_bdm_job(
                delta_plain,
                r,
                use_combiner=request.use_bdm_combiner,
                raw_partition_sizes=request.raw_partition_sizes,
            )
            if delta_plain.num_blocks
            else None
        )
        timeline = None
        if plan is not None:
            cluster = request.cluster or self.cluster or DEFAULT_CLUSTER
            timeline = simulate_planned_workflow(
                plan,
                cluster,
                request.cost_model or self.cost_model,
                bdm_plan=bdm_plan,
                avg_comparison_length=self.avg_comparison_length,
                comparison_noise_sigma=self.comparison_noise_sigma,
                noise_seed=self.noise_seed,
            )
        return PipelineResult(
            strategy=request.strategy.name,
            backend=self.name,
            matches=None,
            bdm=merged.matrix,
            job1=None,
            job2=None,
            plan=plan,
            bdm_plan=bdm_plan,
            timeline=timeline,
        )
