"""The parallel backend: map/reduce task units on a worker pool.

The shuffle stays in the driver (it is cheap and must see all map
output), but the task units — :func:`~repro.mapreduce.runtime.
execute_map_task` and :func:`~repro.mapreduce.runtime.
execute_reduce_task` — fan out over a ``concurrent.futures`` pool.
Results are collected in task-index order, so the merged
:class:`~repro.mapreduce.runtime.JobResult` (outputs, counters,
side files) is identical to the serial runtime's, just faster:
pair comparison dominates the runtime and parallelises across reduce
tasks, which is precisely the premise of the paper.

Executor choice:

``"process"``
    True multi-core speedup.  Requires the job (matcher, blocking
    function, BDM) to be picklable; matcher *instance* state mutated in
    workers stays in the workers — read comparison statistics from the
    job counters, which are always shipped back.  The same applies to
    :class:`~repro.er.matching.ThresholdMatcher`'s similarity memo
    cache: it is per-worker, dropped from the pickles (the job is
    pickled once per task submission), and rebuilt as workers match.
``"thread"``
    No pickling requirements and shared matcher state, but subject to
    the GIL — useful for tests and I/O-bound matchers.
``"auto"`` (default)
    ``"process"`` when the job round-trips through pickle, otherwise
    ``"thread"``.
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

from ..mapreduce.dfs import DistributedFileSystem
from ..mapreduce.job import JobConfig, MapReduceJob
from ..mapreduce.runtime import LocalRuntime, MapTaskResult, ReduceTaskResult
from ..mapreduce.types import Partition
from .backend import register_backend
from .executing import ExecutingBackendBase

_EXECUTOR_KINDS = ("auto", "process", "thread")


class ParallelRuntime(LocalRuntime):
    """Job executor that schedules task units on a worker pool.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    executor:
        ``"process"``, ``"thread"`` or ``"auto"`` (see module docs).
    """

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        max_workers: int | None = None,
        executor: str = "auto",
    ):
        super().__init__(dfs)
        if executor not in _EXECUTOR_KINDS:
            raise ValueError(
                f"executor must be one of {_EXECUTOR_KINDS}, got {executor!r}"
            )
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self.max_workers = max_workers if max_workers is not None else os.cpu_count() or 1
        self.executor = executor
        self._pools: dict[str, Executor] = {}
        # (job, resolved kind) of the last "auto" decision; the strong
        # job reference keeps the id stable while the entry is live.
        self._auto_kind: tuple[MapReduceJob, str] | None = None

    def close(self) -> None:
        """Shut down any worker pools this runtime spun up."""
        for pool in self._pools.values():
            pool.shutdown(wait=True)
        self._pools.clear()

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- scheduling ---------------------------------------------------------

    def _execute_map_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        partitions: Sequence[Partition],
        sink=None,
    ) -> list[MapTaskResult]:
        # _map_calls is the same lazily-evaluated unit stream the serial
        # runtime walks — pulling a call at submission time emits the
        # task-started event and checks cancellation.
        calls = self._map_calls(job, config, partitions)
        return self._fan_out(job, calls, count=len(partitions), sink=sink)

    def _execute_reduce_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        buckets: Sequence[list],
        presorted: bool = False,
        sink=None,
    ) -> list[ReduceTaskResult]:
        # Buckets are fetched lazily, one per submission: under a memory
        # budget they are spill-file views (ExternalShuffle.buckets()),
        # and windowed submission keeps at most ~max_workers of them
        # re-materialized in the driver at a time.
        calls = self._reduce_calls(job, config, buckets, presorted)
        return self._fan_out(job, calls, count=len(buckets), sink=sink)

    def _fan_out(self, job: MapReduceJob, calls, *, count: int, sink=None) -> list:
        """Run the task units, collecting in submission (task-index)
        order: determinism does not depend on completion order.

        ``calls`` may be a lazy iterable; arguments are only built at
        submission time, and at most ``max_workers`` submissions are in
        flight — so neither task inputs (reduce buckets) nor uncollected
        results accumulate unboundedly in the driver.  ``sink`` is
        applied to each result as the driver obtains it — the external
        shuffle drains map outputs that way.
        """
        drain = sink if sink is not None else (lambda result: result)
        if count == 1 or self.max_workers == 1:
            return [drain(fn(*args)) for fn, args in calls]
        pool = self._pool_for(job)
        results: list = []
        pending: deque = deque()
        for fn, args in calls:
            while len(pending) >= self.max_workers:
                results.append(drain(pending.popleft().result()))
            pending.append(pool.submit(fn, *args))
        while pending:
            results.append(drain(pending.popleft().result()))
        return results

    def _pool_for(self, job: MapReduceJob) -> Executor:
        """The pool matching the job's executor kind.

        Pools are created lazily and reused for the runtime's lifetime
        (all phases of all jobs), so a two-job workflow pays worker
        startup once, not once per map/reduce phase.
        """
        kind = self._executor_kind(job)
        pool = self._pools.get(kind)
        if pool is None:
            pool = (
                ProcessPoolExecutor(max_workers=self.max_workers)
                if kind == "process"
                else ThreadPoolExecutor(max_workers=self.max_workers)
            )
            self._pools[kind] = pool
        return pool

    def _executor_kind(self, job: MapReduceJob) -> str:
        """Resolve "auto" to a pool kind, probing picklability once per
        job rather than once per map/reduce phase."""
        if self.executor != "auto":
            return self.executor
        if self._auto_kind is not None and self._auto_kind[0] is job:
            return self._auto_kind[1]
        kind = "process" if _picklable(job) else "thread"
        self._auto_kind = (job, kind)
        return kind


def _picklable(job: MapReduceJob) -> bool:
    try:
        pickle.dumps(job)
    # A probe: user matchers/blocking functions can raise anything from
    # __reduce__, and every failure means the same thing — use threads.
    except Exception:  # repro-lint: disable=silent-except -- probe by design
        return False
    return True


@register_backend
class ParallelBackend(ExecutingBackendBase):
    """Executes the workflow with :class:`ParallelRuntime` workers."""

    name = "parallel"

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        max_workers: int | None = None,
        executor: str = "auto",
    ):
        self._dfs = dfs
        self.max_workers = max_workers
        self.executor = executor

    def make_runtime(self) -> ParallelRuntime:
        return ParallelRuntime(
            self._dfs, max_workers=self.max_workers, executor=self.executor
        )

    def __repr__(self) -> str:
        return (
            f"ParallelBackend(max_workers={self.max_workers}, "
            f"executor={self.executor!r})"
        )
