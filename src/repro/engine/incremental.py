"""Incremental ER: the persisted corpus state and the ingest loop.

A :class:`CorpusState` is everything a later delta run needs from the
runs that came before it:

* the **annotated partitions** — the ``(block key, entity)`` records
  Job 1 side-wrote, in BDM partition order.  They seed Job 2 of a delta
  run directly, so old records never pass through Job 1 (or a single
  comparison against each other) again;
* the **BDM** over those partitions, merged with each delta's block
  counts to plan the remaining ``T(n) − T(o)`` pairs per block;
* the **match log** — one append-only entry per ingest, with stable
  canonical pair ids (delta matches are disjoint from all earlier ones,
  so the log entries partition the cumulative match set);
* the cumulative **comparison count**, the receipt that incremental
  ingests did strictly less work than recomputes would have.

:func:`ingest` is the durable loop around
:meth:`~repro.engine.pipeline.ERPipeline.submit_delta`: load state, run
the delta, advance, save — where saving is write-tmp-then-rename with
``state.json`` as the single atomic commit point, so a crash anywhere
leaves the on-disk state either untouched or fully advanced, never
half-written.

State is advanced *analytically*: the delta's annotation and block
counts are recomputed from the raw records with the same blocking
function Job 1 used, which yields byte-identical partitions and matrix
without shipping them back from the workers — and makes ``advanced``
backend-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from ..core.bdm import BlockDistributionMatrix
from ..er.blocking import BlockingFunction
from ..er.entity import Entity
from ..er.matching import MatchPair, MatchResult
from ..mapreduce.types import Partition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mapreduce.events import ExecutionEvent
    from .pipeline import ERPipeline
    from .result import PipelineResult


@dataclass(frozen=True)
class CorpusState:
    """The persisted outcome of all ingests so far.

    ``partitions`` hold only *keyed* entities (records Job 1 dropped for
    lack of a blocking key are not part of any block and never compare);
    ``bdm`` is ``None`` exactly when no keyed entity exists yet.
    ``match_log[i]`` is what ingest ``i`` newly matched; ``comparisons``
    accumulates every ingest's Job 2 comparison counters.
    """

    partitions: tuple[Partition, ...]
    bdm: BlockDistributionMatrix | None
    match_log: tuple[tuple[MatchPair, ...], ...] = ()
    comparisons: int = 0

    @classmethod
    def empty(cls) -> "CorpusState":
        """The state before any ingest (no partitions, no matches)."""
        return cls(partitions=(), bdm=None)

    # -- derived views -----------------------------------------------------

    @property
    def matches(self) -> MatchResult:
        """The cumulative match set across all ingests."""
        return MatchResult(self.iter_matches())

    def iter_matches(self) -> Iterator[MatchPair]:
        for entry in self.match_log:
            yield from entry

    @property
    def num_ingests(self) -> int:
        return len(self.match_log)

    @property
    def num_entities(self) -> int:
        """Keyed entities absorbed so far."""
        return sum(len(p) for p in self.partitions)

    @property
    def num_matches(self) -> int:
        return sum(len(entry) for entry in self.match_log)

    # -- advancing ---------------------------------------------------------

    def advanced(
        self,
        result: "PipelineResult",
        delta_partitions: Sequence[Partition],
        blocking: BlockingFunction,
    ) -> "CorpusState":
        """The state after absorbing one ingest.

        ``result`` is what :meth:`~repro.engine.pipeline.ERPipeline.
        submit_delta` (or, for the first ingest, a plain full run)
        produced for ``delta_partitions`` — the *raw* partitions that
        were submitted.  Their annotation is recomputed here with
        ``blocking``, exactly as Job 1's map side did, appended after
        the existing partitions with fresh contiguous indices.
        """
        partitions = list(self.partitions)
        for partition in delta_partitions:
            annotated = []
            for record in partition:
                key = blocking.key_for(record.value)
                if key is not None:
                    annotated.append((key, record.value))
            partitions.append(Partition.from_pairs(annotated, index=len(partitions)))
        counts: dict[tuple[object, int], int] = {}
        for partition in partitions:
            for record in partition:
                slot = (record.key, partition.index)
                counts[slot] = counts.get(slot, 0) + 1
        bdm = (
            BlockDistributionMatrix.from_counts(counts, len(partitions))
            if counts
            else None
        )
        if result.matches is None:
            raise ValueError(
                f"cannot advance corpus state from a {result.backend!r} "
                "result without matches (planned runs do not execute)"
            )
        return CorpusState(
            partitions=tuple(partitions),
            bdm=bdm,
            match_log=self.match_log + (tuple(result.matches),),
            comparisons=self.comparisons + result.total_comparisons(),
        )

    def __repr__(self) -> str:
        return (
            f"CorpusState(entities={self.num_entities}, "
            f"partitions={len(self.partitions)}, "
            f"ingests={self.num_ingests}, matches={self.num_matches}, "
            f"comparisons={self.comparisons})"
        )


def ingest(
    pipeline: "ERPipeline",
    new_records: Sequence[Entity] | Sequence[Partition],
    state_dir: "str | Path",
    *,
    on_event: "Callable[[ExecutionEvent], None] | None" = None,
) -> tuple["PipelineResult", CorpusState]:
    """Absorb a batch of new records into the state at ``state_dir``.

    Loads the persisted :class:`CorpusState` (an absent directory means
    an empty corpus), runs the delta through ``pipeline``'s configured
    backend, advances the state and saves it atomically.  On any
    failure — a crashed worker, a cancelled execution — the persisted
    state is left exactly as it was; re-running the same ingest
    converges to the same state.

    Returns ``(result, state)``: the delta run's
    :class:`~repro.engine.result.PipelineResult` (its matches are the
    *new* pairs only) and the advanced state.
    """
    from .persistence import load_state, save_state

    directory = Path(state_dir)
    if (directory / "state.json").exists():
        state = load_state(directory)
    else:
        state = CorpusState.empty()
    if new_records and isinstance(new_records[0], Partition):
        partitions = list(new_records)
    else:
        from ..mapreduce.types import make_partitions

        partitions = make_partitions(list(new_records), pipeline.num_map_tasks)
    execution = pipeline.submit_delta(partitions, state, on_event=on_event)
    result = execution.result()
    advanced = state.advanced(result, partitions, pipeline.blocking)
    save_state(advanced, directory)
    return result, advanced
