"""``ERPipeline`` — the one front door to the ER workflow.

One- and two-source matching share a single entry point::

    pipeline = ERPipeline("blocksplit", PrefixBlocking("title"),
                          num_map_tasks=4, num_reduce_tasks=8)
    dedup = pipeline.run(entities)                 # R × R
    links = pipeline.run(r_entities, s_entities)   # R × S (Appendix I)

and the execution backend is swappable without touching anything else::

    fast = pipeline.with_backend("parallel", max_workers=8).run(entities)
    plan = pipeline.with_backend("planned").run(entities)

``run()`` is sugar for the submission model underneath: ``submit()``
returns a :class:`~repro.engine.execution.PipelineExecution` handle
that streams matches as reduce task units complete, reports progress,
and cancels cooperatively::

    execution = pipeline.submit(entities)
    for pair in execution.iter_matches():   # task by task, in order
        ...
    result = execution.result()             # == pipeline.run(entities)

and ``await pipeline.submit_async(entities)`` does the same without
blocking an asyncio event loop (pairing naturally with the ``"async"``
backend).

``with_backend`` / ``with_cluster`` return configured copies (the
pipeline itself is cheap, reusable configuration; matchers are stateful
and shared across copies, as before — per-run counter readings come
from the execution handle's
:meth:`~repro.engine.execution.PipelineExecution.matcher_stats`).
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Sequence

from ..cluster.costmodel import CostModel
from ..cluster.simulation import ClusterSpec
from ..er.blocking import BlockingFunction
from ..er.entity import Entity
from ..er.matching import Matcher, ThresholdMatcher
from ..io.sources import RecordSource
from ..mapreduce.events import ExecutionEvent
from ..mapreduce.types import Partition, make_partitions
from ..core.strategy import LoadBalancingStrategy, get_strategy
from ..core.two_source import SOURCE_R, SOURCE_S
from .backend import DeltaSpec, ExecutionBackend, PipelineRequest, get_backend
from .execution import PipelineExecution
from .incremental import CorpusState
from .result import PipelineResult

#: Distinguishes "not passed" from an explicit None in with_cluster.
_UNSET: Any = object()


class ERPipeline:
    """Blocking-based ER with a configurable strategy and backend.

    Parameters
    ----------
    strategy:
        Strategy instance, class, or registry name (``"basic"``,
        ``"blocksplit"``, ``"pairrange"``).
    blocking:
        Blocking key function.
    matcher:
        Pair matcher; defaults to the paper's edit-distance/0.8
        threshold on ``title``.  Note the matcher is stateful
        (comparison counters) — reuse across runs only if you reset it.
    num_map_tasks / num_reduce_tasks:
        The paper's ``m`` and ``r``.
    backend:
        Backend instance or registry name (``"serial"``, ``"parallel"``,
        ``"planned"``); defaults to serial execution.
    cluster / cost_model:
        Optional simulated-cluster shape: executing backends attach a
        simulated timeline to their result, the planned backend uses it
        as the simulation target.
    memory_budget:
        Optional cap on the number of map output records the shuffle
        buffers in memory; beyond it, records spill through sorted run
        files on disk (:class:`~repro.mapreduce.ExternalShuffle`).
        Matches and counters are byte-identical either way.
    batch_kernel:
        When true (the default), matching reduce tasks score whole
        groups through :meth:`~repro.er.matching.Matcher.match_batch`
        (the columnar batch kernel of :mod:`repro.er.batch_kernel`)
        instead of one ``match_prepared`` call per pair.  Matches and
        counters are byte-identical either way; ``False`` restores the
        scalar pair loops.
    """

    def __init__(
        self,
        strategy: LoadBalancingStrategy | type[LoadBalancingStrategy] | str,
        blocking: BlockingFunction,
        matcher: Matcher | None = None,
        *,
        num_map_tasks: int = 2,
        num_reduce_tasks: int = 3,
        use_bdm_combiner: bool = True,
        backend: ExecutionBackend | type[ExecutionBackend] | str = "serial",
        cluster: ClusterSpec | None = None,
        cost_model: CostModel | None = None,
        memory_budget: int | None = None,
        batch_kernel: bool = True,
    ):
        self.strategy = get_strategy(strategy)
        self.blocking = blocking
        self.matcher = matcher if matcher is not None else ThresholdMatcher()
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.use_bdm_combiner = use_bdm_combiner
        self.backend = get_backend(backend)
        self.cluster = cluster
        self.cost_model = cost_model
        self.memory_budget = memory_budget
        self.batch_kernel = batch_kernel

    # -- fluent configuration ----------------------------------------------

    def with_backend(
        self,
        backend: ExecutionBackend | type[ExecutionBackend] | str,
        **options: Any,
    ) -> "ERPipeline":
        """A copy of this pipeline running on a different backend."""
        return self._copy(backend=get_backend(backend, **options))

    def with_cluster(
        self,
        cluster: ClusterSpec,
        cost_model: CostModel | None = _UNSET,  # type: ignore[assignment]
    ) -> "ERPipeline":
        """A copy of this pipeline simulating against ``cluster``.

        A cost model configured at construction time is kept unless one
        is explicitly passed here.
        """
        if cost_model is _UNSET:
            return self._copy(cluster=cluster)
        return self._copy(cluster=cluster, cost_model=cost_model)

    def _copy(self, **overrides: Any) -> "ERPipeline":
        settings: dict[str, Any] = dict(
            strategy=self.strategy,
            blocking=self.blocking,
            matcher=self.matcher,
            num_map_tasks=self.num_map_tasks,
            num_reduce_tasks=self.num_reduce_tasks,
            use_bdm_combiner=self.use_bdm_combiner,
            backend=self.backend,
            cluster=self.cluster,
            cost_model=self.cost_model,
            memory_budget=self.memory_budget,
            batch_kernel=self.batch_kernel,
        )
        settings.update(overrides)
        strategy = settings.pop("strategy")
        blocking = settings.pop("blocking")
        matcher = settings.pop("matcher")
        return ERPipeline(strategy, blocking, matcher, **settings)

    # -- running ------------------------------------------------------------

    def run(
        self,
        r: Sequence[Entity] | Sequence[Partition] | RecordSource,
        s: Sequence[Entity] | RecordSource | None = None,
        *,
        num_r_partitions: int | None = None,
        num_s_partitions: int | None = None,
    ) -> PipelineResult:
        """Match one source against itself, or R against S.

        Sugar for ``submit(...).result()`` — byte-identical matches and
        counters, just blocking until completion.

        With ``s=None``, ``r`` may be entities (split into
        ``num_map_tasks`` partitions), ready-made partitions, or a
        streaming :class:`~repro.io.RecordSource` (whose shard count
        overrides ``num_map_tasks``; executing backends materialize the
        shards one at a time, the planned backend only streams the
        source's block statistics).  With two sources, entities are
        re-tagged R/S and placed in source-homogeneous partitions, R
        partitions first; ``num_r_partitions``/``num_s_partitions``
        default to the source's shard count (record sources) or half of
        ``num_map_tasks`` each.
        """
        return self.submit(
            r,
            s,
            num_r_partitions=num_r_partitions,
            num_s_partitions=num_s_partitions,
        ).result()

    def submit(
        self,
        r: Sequence[Entity] | Sequence[Partition] | RecordSource,
        s: Sequence[Entity] | RecordSource | None = None,
        *,
        num_r_partitions: int | None = None,
        num_s_partitions: int | None = None,
        on_event: Callable[[ExecutionEvent], None] | None = None,
    ) -> PipelineExecution:
        """Submit a run and return its live execution handle.

        Execution starts immediately on a dedicated driver thread; the
        returned :class:`~repro.engine.execution.PipelineExecution`
        streams matches (:meth:`~repro.engine.execution.
        PipelineExecution.iter_matches`), reports progress, cancels
        cooperatively, and yields the final result.  ``on_event``
        subscribes a callback to every
        :class:`~repro.mapreduce.events.ExecutionEvent` of the run
        (called synchronously on the driver thread, in deterministic
        event order).

        The handle snapshots the matcher's cumulative counters at
        submit, so back-to-back runs sharing one matcher instance read
        per-run numbers from ``execution.matcher_stats()`` without a
        manual ``reset_counters()``; ``self.matcher.comparisons`` keeps
        the old accumulate-across-runs behaviour.
        """
        request = self.build_request(
            r,
            s,
            num_r_partitions=num_r_partitions,
            num_s_partitions=num_s_partitions,
        )
        return PipelineExecution(
            self.backend, request, matcher=self.matcher, on_event=on_event
        )

    async def submit_async(
        self,
        r: Sequence[Entity] | Sequence[Partition] | RecordSource,
        s: Sequence[Entity] | RecordSource | None = None,
        *,
        num_r_partitions: int | None = None,
        num_s_partitions: int | None = None,
        on_event: Callable[[ExecutionEvent], None] | None = None,
    ) -> PipelineExecution:
        """:meth:`submit` for asyncio callers.

        Partitioning large inputs can be slow, so submission itself runs
        off-loop (``asyncio.to_thread``); the returned handle offers
        ``await execution.result_async()`` and ``async for pair in
        execution.aiter_matches()``.  Works with every backend — pair it
        with ``with_backend("async")`` to also run the task units on an
        asyncio loop.
        """
        return await asyncio.to_thread(
            self.submit,
            r,
            s,
            num_r_partitions=num_r_partitions,
            num_s_partitions=num_s_partitions,
            on_event=on_event,
        )

    def run_delta(
        self,
        new_records: Sequence[Entity] | Sequence[Partition],
        state: CorpusState,
    ) -> PipelineResult:
        """Match a batch of new records against a persisted corpus.

        Sugar for ``submit_delta(...).result()``.  The result's matches
        are the *new* pairs only (new-vs-old and new-vs-new per block);
        old-vs-old pairs were matched by the runs that produced
        ``state`` and are never recompared.
        """
        return self.submit_delta(new_records, state).result()

    def submit_delta(
        self,
        new_records: Sequence[Entity] | Sequence[Partition],
        state: CorpusState,
        *,
        on_event: Callable[[ExecutionEvent], None] | None = None,
    ) -> PipelineExecution:
        """Submit an incremental run and return its live execution handle.

        Job 1 runs over ``new_records`` only; Job 2 is seeded from the
        persisted BDM merged with the delta's block counts, so the
        comparison work is ``T(n) − T(o)`` pairs per block instead of
        ``T(n)``.  The handle is a normal
        :class:`~repro.engine.execution.PipelineExecution` — streamed
        matches, progress, cooperative cancel and ``result()`` all work
        unchanged, on every executing backend.

        An empty ``state`` degrades to a plain full run of
        ``new_records`` (the two are the same computation).
        """
        request = self.build_delta_request(new_records, state)
        return PipelineExecution(
            self.backend, request, matcher=self.matcher, on_event=on_event
        )

    def build_delta_request(
        self,
        new_records: Sequence[Entity] | Sequence[Partition],
        state: CorpusState,
    ) -> PipelineRequest:
        """The resolved incremental :class:`~repro.engine.backend.
        PipelineRequest` (the backend-independent half of
        :meth:`submit_delta`, mirroring :meth:`build_request`)."""
        if not state.partitions:
            # Empty corpus: the delta IS the corpus — a plain full run.
            return self.build_request(new_records)
        return PipelineRequest(
            strategy=self.strategy,
            blocking=self.blocking,
            matcher=self.matcher,
            partitions=tuple(self._as_partitions(new_records)),
            num_reduce_tasks=self.num_reduce_tasks,
            use_bdm_combiner=self.use_bdm_combiner,
            cluster=self.cluster,
            cost_model=self.cost_model,
            memory_budget=self.memory_budget,
            delta=DeltaSpec(tuple(state.partitions), state.bdm),
            batch_kernel=self.batch_kernel,
        )

    def build_request(
        self,
        r: Sequence[Entity] | Sequence[Partition] | RecordSource,
        s: Sequence[Entity] | RecordSource | None = None,
        *,
        num_r_partitions: int | None = None,
        num_s_partitions: int | None = None,
    ) -> PipelineRequest:
        """The resolved :class:`~repro.engine.backend.PipelineRequest`
        this pipeline would submit for the given inputs.

        This is the backend-independent half of :meth:`submit`:
        strategy, blocking, matcher and partitioning are resolved, but
        nothing executes.  It is how remote submission works — a
        :class:`~repro.serve.ServeClient` builds the request locally
        and ships it to a server, whose shared pool executes it exactly
        as a local backend would.
        """
        source: RecordSource | None = None
        if s is None:
            if isinstance(r, RecordSource):
                # Backends own materialization: executing backends turn
                # the shards into partitions (one at a time), the
                # planned backend streams statistics only.
                source = r
                partitions: tuple[Partition, ...] = ()
            else:
                partitions = tuple(self._as_partitions(r))
            dual = False
        else:
            if isinstance(r, RecordSource):
                if num_r_partitions is None:
                    num_r_partitions = r.num_shards
                r = list(r.iter_records())
            if isinstance(s, RecordSource):
                if num_s_partitions is None:
                    num_s_partitions = s.num_shards
                s = list(s.iter_records())
            partitions = tuple(
                self._dual_partitions(r, s, num_r_partitions, num_s_partitions)
            )
            dual = True
        return PipelineRequest(
            strategy=self.strategy,
            blocking=self.blocking,
            matcher=self.matcher,
            partitions=partitions,
            num_reduce_tasks=self.num_reduce_tasks,
            dual=dual,
            use_bdm_combiner=self.use_bdm_combiner,
            cluster=self.cluster,
            cost_model=self.cost_model,
            source=source,
            memory_budget=self.memory_budget,
            batch_kernel=self.batch_kernel,
        )

    # -- helpers -------------------------------------------------------------

    def _as_partitions(
        self, entities: Sequence[Entity] | Sequence[Partition]
    ) -> list[Partition]:
        if entities and isinstance(entities[0], Partition):
            return list(entities)  # type: ignore[arg-type]
        return make_partitions(list(entities), self.num_map_tasks)

    def _dual_partitions(
        self,
        r_entities: Sequence[Entity],
        s_entities: Sequence[Entity],
        num_r_partitions: int | None,
        num_s_partitions: int | None,
    ) -> list[Partition]:
        if self.strategy.requires_bdm is False:
            raise ValueError(
                "two-source matching requires a BDM-based strategy "
                "(blocksplit or pairrange)"
            )
        if num_r_partitions is None:
            num_r_partitions = max(1, self.num_map_tasks // 2)
        if num_s_partitions is None:
            num_s_partitions = max(1, self.num_map_tasks // 2)
        tagged_r = [
            e if e.source == SOURCE_R else e.with_source(SOURCE_R)
            for e in r_entities
        ]
        tagged_s = [
            e if e.source == SOURCE_S else e.with_source(SOURCE_S)
            for e in s_entities
        ]
        r_parts = make_partitions(tagged_r, num_r_partitions)
        s_parts = make_partitions(tagged_s, num_s_partitions)
        partitions: list[Partition] = []
        for part in r_parts + s_parts:
            partitions.append(Partition(list(part), index=len(partitions)))
        return partitions

    def __repr__(self) -> str:
        return (
            f"ERPipeline(strategy={self.strategy.name!r}, "
            f"backend={self.backend.name!r}, m={self.num_map_tasks}, "
            f"r={self.num_reduce_tasks})"
        )
