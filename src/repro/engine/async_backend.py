"""The async backend: map/reduce task units on an asyncio event loop.

Same schedulable task units, same deterministic merge order as the
serial and parallel runtimes — but scheduled as coroutines.  Each task
unit runs in :func:`asyncio.to_thread` (task units are synchronous
Python), with a submission window like the parallel runtime's, and
results are collected in task-index order, so matches, outputs and
counters are byte-identical to the serial reference.

Like Python threads, ``to_thread`` workers share the GIL — the point of
this backend is not multi-core speedup but *cooperative integration*:
an asyncio application can ``await pipeline.submit_async(...)``, stream
matches with ``async for``, overlap I/O-bound matchers, and cancel the
run without blocking its event loop.  The runtime spins a private loop
per phase (``asyncio.run``) on the execution's driver thread, so it
composes with a host application's running loop instead of fighting it.
"""

from __future__ import annotations

import asyncio
import os
from collections import deque
from typing import Iterable, Sequence

from ..mapreduce.dfs import DistributedFileSystem
from ..mapreduce.job import JobConfig, MapReduceJob
from ..mapreduce.runtime import (
    LocalRuntime,
    MapTaskResult,
    ReduceTaskResult,
    TaskCall,
)
from ..mapreduce.types import Partition
from .backend import register_backend
from .executing import ExecutingBackendBase


class AsyncRuntime(LocalRuntime):
    """Job executor that schedules task units as asyncio coroutines.

    Parameters
    ----------
    max_concurrency:
        Task units in flight at once; defaults to ``os.cpu_count()``.
    """

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        max_concurrency: int | None = None,
    ):
        super().__init__(dfs)
        if max_concurrency is not None and max_concurrency <= 0:
            raise ValueError(
                f"max_concurrency must be positive, got {max_concurrency}"
            )
        self.max_concurrency = (
            max_concurrency if max_concurrency is not None else os.cpu_count() or 1
        )

    # -- scheduling ---------------------------------------------------------

    def _execute_map_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        partitions: Sequence[Partition],
        sink=None,
    ) -> list[MapTaskResult]:
        calls = self._map_calls(job, config, partitions)
        return self._gather(calls, count=len(partitions), sink=sink)

    def _execute_reduce_tasks(
        self,
        job: MapReduceJob,
        config: JobConfig,
        buckets: Sequence[list],
        presorted: bool = False,
        sink=None,
    ) -> list[ReduceTaskResult]:
        calls = self._reduce_calls(job, config, buckets, presorted)
        return self._gather(calls, count=len(buckets), sink=sink)

    def _gather(self, calls: Iterable[TaskCall], *, count: int, sink) -> list:
        """Run the task units on a fresh event loop, collecting in
        submission (task-index) order.

        The windowed submission mirrors
        :meth:`~repro.engine.parallel.ParallelRuntime._fan_out`: calls
        are built lazily (spill buckets drain one per submission, task
        lifecycle events fire at submission time) and at most
        ``max_concurrency`` are in flight.
        """
        if count <= 1 or self.max_concurrency == 1:
            return self._run_calls(calls, sink)
        return asyncio.run(self._gather_async(calls, sink))

    async def _gather_async(self, calls: Iterable[TaskCall], sink) -> list:
        drain = sink if sink is not None else (lambda result: result)
        results: list = []
        pending: deque[asyncio.Task] = deque()
        for fn, args in calls:
            while len(pending) >= self.max_concurrency:
                results.append(drain(await pending.popleft()))
            pending.append(asyncio.create_task(asyncio.to_thread(fn, *args)))
        while pending:
            results.append(drain(await pending.popleft()))
        return results


@register_backend
class AsyncBackend(ExecutingBackendBase):
    """Executes the workflow with :class:`AsyncRuntime` coroutines."""

    name = "async"

    def __init__(
        self,
        dfs: DistributedFileSystem | None = None,
        *,
        max_concurrency: int | None = None,
    ):
        self._dfs = dfs
        self.max_concurrency = max_concurrency

    def make_runtime(self) -> AsyncRuntime:
        return AsyncRuntime(self._dfs, max_concurrency=self.max_concurrency)

    def __repr__(self) -> str:
        return f"AsyncBackend(max_concurrency={self.max_concurrency})"
