"""Shared machinery for backends that really run the MapReduce jobs.

The two-job workflow (Figure 2) is identical for serial and parallel
execution — only the runtime that schedules the task units differs, so
subclasses supply :meth:`ExecutingBackendBase.make_runtime` and nothing
else.  One- and two-source matching share this single code path, and
the Basic strategy is routed through ``strategy.build_job`` like every
other strategy (the blocking function travels with the request).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.bdm import analytic_bdm, compute_bdm
from ..core.delta import merge_delta_bdm
from ..core.planning import BdmJobPlan, StrategyPlan, plan_bdm_job
from ..core.two_source import analytic_dual_bdm, compute_dual_bdm
from ..er.matching import MatchResult
from ..mapreduce.runtime import LocalRuntime
from ..mapreduce.types import Partition
from .backend import ExecutionBackend, PipelineRequest
from .result import PipelineResult
from .simulate import simulate_executed_workflow


def analytic_plans(
    request: PipelineRequest,
    bdm=None,
    *,
    raw_partition_sizes: tuple[int, ...] | None = None,
) -> tuple[StrategyPlan | None, BdmJobPlan | None]:
    """The request's analytic workload plans (Job 2 and, when the
    strategy needs it, Job 1).

    ``bdm`` is reused when an executing backend already computed it;
    otherwise it is derived analytically from the input partitions.
    ``raw_partition_sizes`` likewise short-circuits the request's
    property when the caller already knows the split sizes (the planned
    backend gets them from the same streaming pass as the BDM, so a
    record source is not streamed twice).  Degenerate inputs with no
    blocked entities at all have no plannable workload and yield
    ``(None, None)``.
    """
    strategy = request.strategy
    r = request.num_reduce_tasks
    if bdm is None:
        bdm = (
            analytic_dual_bdm(request.partitions, request.blocking)
            if request.dual
            else analytic_bdm(request.partitions, request.blocking)
        )
    if bdm.num_blocks == 0:
        return None, None
    if request.dual:
        plan = strategy.plan_dual(bdm, r)
    else:
        plan = strategy.plan(bdm, r)
    bdm_plan = None
    if strategy.requires_bdm:
        if raw_partition_sizes is None:
            raw_partition_sizes = request.raw_partition_sizes
        bdm_plan = plan_bdm_job(
            bdm,
            r,
            use_combiner=request.use_bdm_combiner,
            raw_partition_sizes=raw_partition_sizes,
        )
    return plan, bdm_plan


#: Stage labels stamped onto execution events (``ExecutionEvent.stage``).
STAGE_BDM = "bdm"
STAGE_MATCHING = "matching"


class ExecutingBackendBase(ExecutionBackend):
    """Runs Job 1 (when needed) and Job 2 on a runtime subclasses pick.

    The event channel, when given, is attached to the runtime so every
    job run through it emits lifecycle events; the base sets the
    workflow stage label (``"bdm"`` for Job 1, ``"matching"`` for
    Job 2) before each job, which is how the execution handle tells the
    two apart — in particular, ``"matching"`` reduce outputs are the
    streamed matches.
    """

    executes = True

    def make_runtime(self) -> LocalRuntime:
        raise NotImplementedError

    def execute(
        self, request: PipelineRequest, events=None
    ) -> PipelineResult:
        if events is not None:
            events.raise_if_cancelled()
        if not request.partitions and request.source is not None:
            # A streaming-only request: materialize the shards (one at a
            # time) — executing backends need the records in memory.
            request = replace(
                request, partitions=tuple(request.source.as_partitions())
            )
        runtime = self.make_runtime()
        runtime.events = events
        try:
            return self._execute_on(runtime, request)
        finally:
            runtime.close()

    @staticmethod
    def _set_stage(runtime: LocalRuntime, stage: str) -> None:
        if runtime.events is not None:
            runtime.events.stage = stage

    def _execute_on(self, runtime: LocalRuntime, request: PipelineRequest) -> PipelineResult:
        if request.delta is not None:
            return self._execute_delta(runtime, request)
        strategy = request.strategy
        r = request.num_reduce_tasks
        budget = request.memory_budget
        if request.dual:
            self._set_stage(runtime, STAGE_BDM)
            bdm, job1, annotated = compute_dual_bdm(
                runtime,
                request.partitions,
                request.blocking,
                num_reduce_tasks=r,
                use_combiner=request.use_bdm_combiner,
                memory_budget=budget,
            )
            job = strategy.build_dual_job(
                bdm, request.matcher, r, batch_kernel=request.batch_kernel
            )
            self._set_stage(runtime, STAGE_MATCHING)
            job2 = runtime.run(
                job, annotated, r,
                properties=request.properties, memory_budget=budget,
            )
        elif strategy.requires_bdm:
            self._set_stage(runtime, STAGE_BDM)
            bdm, job1, annotated = compute_bdm(
                runtime,
                request.partitions,
                request.blocking,
                num_reduce_tasks=r,
                use_combiner=request.use_bdm_combiner,
                memory_budget=budget,
            )
            job = strategy.build_job(
                bdm,
                request.matcher,
                r,
                blocking=request.blocking,
                batch_kernel=request.batch_kernel,
            )
            self._set_stage(runtime, STAGE_MATCHING)
            job2 = runtime.run(
                job, annotated, r,
                properties=request.properties, memory_budget=budget,
            )
        else:
            bdm, job1 = None, None
            job = strategy.build_job(
                None,
                request.matcher,
                r,
                blocking=request.blocking,
                batch_kernel=request.batch_kernel,
            )
            self._set_stage(runtime, STAGE_MATCHING)
            job2 = runtime.run(
                job, request.partitions, r,
                properties=request.properties, memory_budget=budget,
            )

        plan, bdm_plan = analytic_plans(request, bdm)
        result = PipelineResult(
            strategy=strategy.name,
            backend=self.name,
            matches=MatchResult(record.value for record in job2.output),
            bdm=bdm,
            job1=job1,
            job2=job2,
            plan=plan,
            bdm_plan=bdm_plan,
        )
        if request.cluster is not None:
            timeline = simulate_executed_workflow(
                result, request.cluster, request.cost_model
            )
            result = replace(result, timeline=timeline)
        return result

    def _execute_delta(
        self, runtime: LocalRuntime, request: PipelineRequest
    ) -> PipelineResult:
        """The incremental path: Job 1 over the *delta only*, then Job 2
        over persisted-annotated + delta-annotated partitions with a
        delta-aware matching job.

        Old records never pass through Job 1 again — their blocking keys
        and block counts come from the persisted :class:`~repro.engine.
        backend.DeltaSpec`.  Every strategy runs Job 1 on the delta
        (even Basic, which skips it on full runs): the merged BDM is
        needed to enumerate the remaining ``T(n) − T(o)`` pairs, and the
        uniform counters keep incremental results plannable.
        """
        spec = request.delta
        if spec is None:
            raise RuntimeError("_execute_delta called without request.delta")
        strategy = request.strategy
        r = request.num_reduce_tasks
        budget = request.memory_budget
        self._set_stage(runtime, STAGE_BDM)
        delta_plain, job1, delta_annotated = compute_bdm(
            runtime,
            request.partitions,
            request.blocking,
            num_reduce_tasks=r,
            use_combiner=request.use_bdm_combiner,
            memory_budget=budget,
        )
        merged = merge_delta_bdm(spec.old_bdm, delta_plain, len(request.partitions))
        # Job 2's input: the persisted annotated corpus followed by the
        # delta's fresh annotation, re-indexed contiguously — old before
        # new is what lets the delta reduces buffer old entities first.
        job2_input = [
            Partition(list(p), index=i)
            for i, p in enumerate(list(spec.old_partitions) + list(delta_annotated))
        ]
        job = strategy.build_delta_job(
            merged, request.matcher, r, batch_kernel=request.batch_kernel
        )
        self._set_stage(runtime, STAGE_MATCHING)
        job2 = runtime.run(
            job, job2_input, r,
            properties=request.properties, memory_budget=budget,
        )
        plan = (
            strategy.plan_delta(merged, r) if merged.num_blocks else None
        )
        bdm_plan = (
            plan_bdm_job(
                delta_plain,
                r,
                use_combiner=request.use_bdm_combiner,
                raw_partition_sizes=request.raw_partition_sizes,
            )
            if delta_plain.num_blocks
            else None
        )
        result = PipelineResult(
            strategy=strategy.name,
            backend=self.name,
            matches=MatchResult(record.value for record in job2.output),
            bdm=merged.matrix,
            job1=job1,
            job2=job2,
            plan=plan,
            bdm_plan=bdm_plan,
        )
        if request.cluster is not None:
            timeline = simulate_executed_workflow(
                result, request.cluster, request.cost_model
            )
            result = replace(result, timeline=timeline)
        return result
