"""The execution-backend contract and registry.

A backend receives a fully-resolved :class:`PipelineRequest` — strategy
instance, blocking function, matcher, input partitions — and returns a
:class:`~repro.engine.result.PipelineResult`.  How the work happens
(in-process, on a worker pool, on an asyncio loop, or analytically via
the planners and the cluster simulator) is entirely the backend's
business; ``ERPipeline`` never branches on the backend kind.

The contract carries an optional **event channel**: ``execute(request,
events)`` receives an :class:`~repro.mapreduce.events.EventChannel`
when the caller wants to observe the run (task lifecycle events,
per-task comparison counts, streamed reduce outputs) or cancel it
cooperatively.  Executing backends attach the channel to their runtime;
backends that do not execute (the planned backend) only honour the
cancellation flag.  ``events`` is ``None`` for fire-and-forget calls —
the whole submission API of :class:`~repro.engine.execution.
PipelineExecution` is built on this one parameter.

Backends self-register with :func:`register_backend`, mirroring the
strategy registry, so third-party backends (a real Hadoop bridge, a
distributed runner, …) plug in without touching the pipeline.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, TypeVar

from ..cluster.costmodel import CostModel
from ..cluster.simulation import ClusterSpec
from ..core.bdm import BlockDistributionMatrix
from ..core.strategy import LoadBalancingStrategy
from ..er.blocking import BlockingFunction
from ..er.matching import Matcher
from ..io.sources import RecordSource
from ..mapreduce.events import EventChannel
from ..mapreduce.types import Partition
from .result import PipelineResult


@dataclass(frozen=True, slots=True)
class DeltaSpec:
    """The persisted-corpus side of an incremental (delta) request.

    ``old_partitions`` are the corpus's *annotated* partitions — the
    Job-1 side output that produced ``old_bdm``, i.e. ``(block key,
    entity)`` records in BDM partition order.  They seed Job 2 directly:
    Job 1 never re-runs over old records.  ``old_bdm`` may be ``None``
    only for a corpus with no keyed entity (every block empty).
    """

    old_partitions: tuple[Partition, ...]
    old_bdm: BlockDistributionMatrix | None

    def __post_init__(self) -> None:
        if not self.old_partitions:
            raise ValueError(
                "a delta request needs at least one persisted corpus "
                "partition (an empty corpus is a plain full run)"
            )
        if (
            self.old_bdm is not None
            and self.old_bdm.num_blocks > 0
            and self.old_bdm.num_partitions != len(self.old_partitions)
        ):
            raise ValueError(
                f"persisted BDM spans {self.old_bdm.num_partitions} "
                f"partitions but {len(self.old_partitions)} were given"
            )


@dataclass(frozen=True, slots=True)
class PipelineRequest:
    """One resolved unit of pipeline work handed to a backend.

    ``partitions`` are the m input splits (source-homogeneous and
    R-before-S when ``dual``).  When the pipeline was fed a streaming
    :class:`~repro.io.RecordSource`, ``source`` carries it: the planned
    backend consumes only its shard-level block statistics (and
    ``partitions`` may be empty), while executing backends materialize
    shards into partitions.  ``memory_budget`` caps shuffle buffering
    for executing backends (records held in memory before spilling).
    ``cluster``/``cost_model`` are optional for executing backends (they
    enable the simulated timeline) and default to a small reference
    cluster for the planned backend.  ``batch_kernel`` (default on)
    makes the matching job score whole reduce groups through
    :meth:`~repro.er.matching.Matcher.match_batch` instead of one
    ``match_prepared`` call per pair; results are byte-identical.
    """

    strategy: LoadBalancingStrategy
    blocking: BlockingFunction
    matcher: Matcher
    partitions: tuple[Partition, ...]
    num_reduce_tasks: int
    dual: bool = False
    use_bdm_combiner: bool = True
    cluster: ClusterSpec | None = None
    cost_model: CostModel | None = None
    source: RecordSource | None = None
    memory_budget: int | None = None
    delta: DeltaSpec | None = None
    batch_kernel: bool = True
    properties: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.partitions and self.source is None:
            raise ValueError("at least one input partition is required")
        if self.delta is not None:
            if self.dual:
                raise ValueError(
                    "incremental (delta) and two-source matching cannot "
                    "be combined in one request"
                )
            if not self.partitions:
                raise ValueError(
                    "incremental (delta) requests require materialized "
                    "partitions (a streaming source alone is not supported)"
                )
        if self.dual and not self.partitions:
            # Two-source matching needs source-homogeneous, R-before-S
            # partitions; a bare record source cannot express that.
            # ERPipeline.run always materializes dual inputs.
            raise ValueError(
                "two-source matching requires materialized partitions "
                "(a streaming source alone is not supported for dual=True)"
            )
        if self.num_reduce_tasks <= 0:
            raise ValueError(
                f"num_reduce_tasks must be positive, got {self.num_reduce_tasks}"
            )
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )

    @property
    def raw_partition_sizes(self) -> tuple[int, ...]:
        """Record count per input split (streamed when only a source is set)."""
        if self.partitions:
            return tuple(len(p) for p in self.partitions)
        if self.source is None:  # unreachable: __post_init__ requires one
            raise RuntimeError("request has neither partitions nor a source")
        return self.source.shard_sizes()


class ExecutionBackend(ABC):
    """Executes (or plans) the two-job ER workflow for one request."""

    #: Registry key and display name.
    name: str = "backend"

    #: Whether :meth:`execute` actually runs the matching jobs (and thus
    #: produces matches), as opposed to analytic planning only.
    executes: bool = True

    @abstractmethod
    def execute(
        self, request: PipelineRequest, events: EventChannel | None = None
    ) -> PipelineResult:
        """Run one pipeline request to completion.

        ``events``, when given, is the observation/cancellation channel:
        emit task lifecycle events into it as the work proceeds and
        honour :meth:`~repro.mapreduce.events.EventChannel.
        raise_if_cancelled` at reasonable boundaries.  Backends are free
        to ignore the event side (a ``None``-safe no-op), but cooperative
        cancellation support is what makes
        :meth:`~repro.engine.execution.PipelineExecution.cancel` work.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Registry of available backends by name.
BACKENDS: dict[str, type[ExecutionBackend]] = {}

_B = TypeVar("_B", bound=type[ExecutionBackend])


def register_backend(cls: _B) -> _B:
    """Class decorator adding a backend to the registry under ``cls.name``."""
    if not cls.name or cls.name == ExecutionBackend.name:
        raise ValueError(f"{cls.__name__} must define a distinct `name`")
    existing = BACKENDS.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"backend name {cls.name!r} already registered by {existing.__name__}"
        )
    BACKENDS[cls.name] = cls
    return cls


def get_backend(
    backend: ExecutionBackend | type[ExecutionBackend] | str,
    **options: Any,
) -> ExecutionBackend:
    """Resolve a backend name, class or instance to a ready instance.

    ``options`` are forwarded to the backend constructor when a name or
    class is given (e.g. ``get_backend("parallel", max_workers=4)``).
    """
    if isinstance(backend, ExecutionBackend):
        if options:
            raise TypeError(
                "cannot apply constructor options to an existing "
                f"backend instance {backend!r}"
            )
        return backend
    if isinstance(backend, type) and issubclass(backend, ExecutionBackend):
        return backend(**options)
    try:
        cls = BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown backend {backend!r}; known: {known}") from None
    return cls(**options)
