"""Simulation glue: executed job results or analytic plans → timelines.

Converts per-task statistics (from executing backends) or analytic
plans (from the planners) into cluster-simulator task lists, which is
how the execution-time figures are regenerated.  Moved here from
``repro.core.workflow`` so that every backend shares one code path;
the old import locations keep working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..cluster.costmodel import CostModel
from ..cluster.simulation import (
    ClusterSimulator,
    ClusterSpec,
    map_task_specs,
    reduce_task_specs,
)
from ..cluster.timeline import WorkflowTimeline
from ..core.bdm import BlockDistributionMatrix
from ..core.planning import BdmJobPlan, StrategyPlan, plan_bdm_job
from ..core.strategy import get_strategy
from ..mapreduce.counters import StandardCounter

if TYPE_CHECKING:
    from .result import PipelineResult


def simulate_executed_workflow(
    result: "PipelineResult",
    cluster: ClusterSpec,
    cost_model: CostModel | None = None,
    *,
    avg_comparison_length: float | None = None,
) -> WorkflowTimeline:
    """Simulate cluster execution of an already-executed workflow,
    using the real per-task counters."""
    cost_model = cost_model if cost_model is not None else CostModel()
    simulator = ClusterSimulator(cluster, cost_model)
    jobs = []
    for job_result in (result.job1, result.job2):
        if job_result is None:
            continue
        maps = map_task_specs(
            cost_model,
            [t.input_records for t in job_result.map_tasks],
            [t.output_records for t in job_result.map_tasks],
            prefix=f"{job_result.job_name}-map",
        )
        reduces = reduce_task_specs(
            cost_model,
            [t.input_records for t in job_result.reduce_tasks],
            [
                t.counters.get(StandardCounter.PAIR_COMPARISONS)
                for t in job_result.reduce_tasks
            ],
            avg_comparison_length=avg_comparison_length,
            prefix=f"{job_result.job_name}-reduce",
        )
        jobs.append((job_result.job_name, maps, reduces))
    return simulator.simulate_workflow(jobs)


def simulate_planned_workflow(
    plan: StrategyPlan,
    cluster: ClusterSpec,
    cost_model: CostModel | None = None,
    *,
    bdm_plan: BdmJobPlan | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    noise_seed: int = 11,
) -> WorkflowTimeline:
    """Simulate cluster execution from analytic plans (the scalable path).

    ``bdm_plan`` adds Job 1 ahead of the matching job; pass ``None``
    for the single-job Basic strategy.
    """
    cost_model = cost_model if cost_model is not None else CostModel()
    simulator = ClusterSimulator(cluster, cost_model)
    jobs = []
    if bdm_plan is not None:
        maps = map_task_specs(
            cost_model,
            list(bdm_plan.map_input_records),
            list(bdm_plan.map_output_kv),
            prefix="job1-map",
        )
        reduces = reduce_task_specs(
            cost_model,
            list(bdm_plan.reduce_input_kv),
            [0] * bdm_plan.num_reduce_tasks,
            prefix="job1-reduce",
        )
        jobs.append(("job1-bdm", maps, reduces))
    maps = map_task_specs(
        cost_model,
        list(plan.map_input_records),
        list(plan.map_output_kv),
        prefix=f"{plan.strategy}-map",
    )
    reduces = reduce_task_specs(
        cost_model,
        list(plan.reduce_input_kv),
        list(plan.reduce_comparisons),
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
        noise_seed=noise_seed,
        prefix=f"{plan.strategy}-reduce",
    )
    jobs.append((plan.strategy, maps, reduces))
    return simulator.simulate_workflow(jobs)


def simulate_strategy(
    strategy_name: str,
    bdm: BlockDistributionMatrix,
    cluster: ClusterSpec,
    *,
    num_reduce_tasks: int,
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    noise_seed: int = 11,
    raw_partition_sizes: Sequence[int] | None = None,
    use_bdm_combiner: bool = True,
) -> tuple[WorkflowTimeline, StrategyPlan]:
    """One-call planner + simulator for the benchmark harness."""
    strategy = get_strategy(strategy_name)
    plan = strategy.plan(bdm, num_reduce_tasks)
    bdm_plan = None
    if strategy.requires_bdm:
        bdm_plan = plan_bdm_job(
            bdm,
            num_reduce_tasks,
            use_combiner=use_bdm_combiner,
            raw_partition_sizes=raw_partition_sizes,
        )
    timeline = simulate_planned_workflow(
        plan,
        cluster,
        cost_model,
        bdm_plan=bdm_plan,
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
        noise_seed=noise_seed,
    )
    return timeline, plan
