"""Execution handles: submit → observe → stream → persist.

:meth:`ERPipeline.submit` returns a :class:`PipelineExecution` — a live
handle on one pipeline run.  The backend executes on a dedicated driver
thread with an :class:`~repro.mapreduce.events.EventChannel` attached,
and everything the handle offers is derived from that one event stream:

* :meth:`~PipelineExecution.iter_matches` — matches stream out as each
  reduce task unit of the matching job completes, in deterministic
  task order (the same order ``result().matches`` is built in);
* :meth:`~PipelineExecution.progress` — a point-in-time snapshot of
  map/reduce task completion and per-task comparison counts, per
  workflow stage;
* :meth:`~PipelineExecution.cancel` — cooperative cancellation at the
  next task-unit boundary;
* :meth:`~PipelineExecution.result` — the final
  :class:`~repro.engine.result.PipelineResult`, byte-identical to what
  a plain ``run()`` returns (``run()`` *is* ``submit().result()``).

The handle also snapshots the matcher's cumulative counters at submit
time, so :meth:`~PipelineExecution.matcher_stats` reports **per-run**
numbers even when one stateful matcher instance is reused across
back-to-back runs — no manual ``reset_counters()`` needed.  The
matcher object itself still accumulates across runs (the documented
legacy behaviour, still reachable via ``matcher.comparisons``).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, AsyncIterator, Callable, Iterator

from ..mapreduce.events import (
    EventChannel,
    EventKind,
    ExecutionEvent,
    PipelineCancelled,
)
from .executing import STAGE_MATCHING

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..er.matching import Matcher, MatchPair
    from .backend import ExecutionBackend, PipelineRequest
    from .result import PipelineResult

#: Lifecycle states of a :class:`PipelineExecution`.
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass(frozen=True, slots=True)
class MatcherStats:
    """Per-run matcher counter deltas (submit snapshot → completion).

    ``cache_hits``/``cache_misses`` are the
    :class:`~repro.er.matching.ThresholdMatcher` verdict-memo counters
    (zero for matchers without a cache); like the comparison counters
    they are snapshotted at submit time, so a matcher reused across
    back-to-back runs reports *this* run's cache behaviour, never
    numbers leaked from a prior run.

    With backends that run matching in other processes (the parallel
    process pool, distributed workers), matcher instance state mutates
    in the workers and never returns to the driver, so the deltas are
    zero there — the job counters on the result
    (``result().total_comparisons()``) are the authoritative per-run
    numbers on every backend.
    """

    comparisons: int
    matches_found: int
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True, slots=True)
class StageProgress:
    """Task completion of one workflow stage (``"bdm"`` / ``"matching"``)."""

    stage: str
    job: str
    map_tasks_done: int
    map_tasks_total: int
    reduce_tasks_done: int
    reduce_tasks_total: int
    comparisons: int
    matches: int
    finished: bool


@dataclass(frozen=True, slots=True)
class ExecutionProgress:
    """A point-in-time snapshot of one execution."""

    state: str
    stages: tuple[StageProgress, ...]

    @property
    def comparisons(self) -> int:
        """Pair comparisons performed so far (across completed tasks)."""
        return sum(stage.comparisons for stage in self.stages)

    @property
    def matches(self) -> int:
        """Matches found so far (across completed reduce tasks)."""
        return sum(stage.matches for stage in self.stages)

    @property
    def tasks_done(self) -> int:
        return sum(s.map_tasks_done + s.reduce_tasks_done for s in self.stages)

    @property
    def tasks_total(self) -> int:
        return sum(s.map_tasks_total + s.reduce_tasks_total for s in self.stages)

    @property
    def current_stage(self) -> str | None:
        """The deepest stage that has started (None before any job)."""
        return self.stages[-1].stage if self.stages else None


class _StageState:
    """Mutable per-stage progress, updated by the event observer."""

    __slots__ = (
        "stage", "job", "map_done", "map_total",
        "reduce_done", "reduce_total", "comparisons", "matches", "finished",
    )

    def __init__(self, stage: str, job: str, map_total: int, reduce_total: int):
        self.stage = stage
        self.job = job
        self.map_done = 0
        self.map_total = map_total
        self.reduce_done = 0
        self.reduce_total = reduce_total
        self.comparisons = 0
        self.matches = 0
        self.finished = False

    def snapshot(self) -> StageProgress:
        return StageProgress(
            stage=self.stage,
            job=self.job,
            map_tasks_done=self.map_done,
            map_tasks_total=self.map_total,
            reduce_tasks_done=self.reduce_done,
            reduce_tasks_total=self.reduce_total,
            comparisons=self.comparisons,
            matches=self.matches,
            finished=self.finished,
        )


class ExecutionStateMirror:
    """Rebuilds the observable state of one run from its event stream.

    Feed it every :class:`~repro.mapreduce.events.ExecutionEvent` of an
    execution (in emission order) and it maintains per-stage progress
    and surfaces the matching job's streamed outputs.  It is the one
    place the event-stream → progress/matches derivation lives: the
    in-process :class:`PipelineExecution` drives it from its event
    channel, and the remote client handle of :mod:`repro.serve` drives
    an identical instance from events forwarded over the wire — which
    is why local and remote handles report byte-identical progress and
    match streams.

    Not thread-safe; callers serialize :meth:`update` themselves (both
    handles update under their condition lock).
    """

    __slots__ = ("_stages", "_stage_order")

    def __init__(self) -> None:
        self._stages: dict[str, _StageState] = {}
        self._stage_order: list[str] = []

    def update(self, event: ExecutionEvent) -> "tuple[MatchPair, ...]":
        """Absorb one event; returns any newly streamed matches.

        The matching job's reduce outputs are the matches, in emission
        order — every other event contributes to progress only.
        """
        self._update_progress(event)
        if (
            event.kind == EventKind.TASK_FINISHED
            and event.phase == "reduce"
            and event.stage == STAGE_MATCHING
        ):
            output = event.data.get("output", ())
            if output:
                return tuple(record.value for record in output)
        return ()

    def _update_progress(self, event: ExecutionEvent) -> None:
        key = event.stage or event.job
        if event.kind == EventKind.JOB_STARTED:
            state = _StageState(
                stage=key,
                job=event.job,
                map_total=event.data.get("num_map_tasks", 0),
                reduce_total=event.data.get("num_reduce_tasks", 0),
            )
            if key not in self._stages:
                self._stage_order.append(key)
            self._stages[key] = state
            return
        state = self._stages.get(key)
        if state is None:
            return
        if event.kind == EventKind.TASK_FINISHED:
            if event.phase == "map":
                state.map_done += 1
            elif event.phase == "reduce":
                state.reduce_done += 1
                state.comparisons += event.data.get("comparisons", 0)
                state.matches += event.data.get("matches", 0)
        elif event.kind == EventKind.JOB_FINISHED:
            state.finished = True

    def progress(self, state: str) -> ExecutionProgress:
        """The stages seen so far as a progress snapshot in ``state``."""
        return ExecutionProgress(
            state=state,
            stages=tuple(
                self._stages[key].snapshot() for key in self._stage_order
            ),
        )


class PipelineExecution:
    """A live handle on one submitted pipeline run.

    Created by :meth:`~repro.engine.ERPipeline.submit`; not constructed
    directly.  Execution starts immediately on a dedicated driver
    thread.  Event callbacks (``on_event``) and the internal observers
    run synchronously on that thread, in deterministic event order.
    """

    def __init__(
        self,
        backend: "ExecutionBackend",
        request: "PipelineRequest",
        *,
        matcher: "Matcher | None" = None,
        on_event: Callable[[ExecutionEvent], None] | None = None,
    ):
        self._backend = backend
        self._request = request
        self._matcher = matcher
        self._cond = threading.Condition()
        self._streamed: list["MatchPair"] = []  # guarded-by: _cond
        self._mirror = ExecutionStateMirror()  # guarded-by: _cond
        self._state = RUNNING  # guarded-by: _cond
        self._result: "PipelineResult | None" = None  # guarded-by: _cond
        self._error: BaseException | None = None  # guarded-by: _cond
        # Snapshot the (cumulative, shared) matcher counters at submit,
        # so matcher_stats() is per-run without resetting the matcher.
        self._matcher_before = self._matcher_counters()
        self._matcher_after: tuple[int, int, int, int] | None = None
        #: The event/cancellation channel of this run.
        self.events = EventChannel([self._observe])
        if on_event is not None:
            self.events.subscribe(on_event)
        # Daemon: an interrupted or abandoned run must never block
        # interpreter exit; the consumers below cancel cooperatively on
        # interrupt, so the driver winds down instead of running on.
        self._thread = threading.Thread(
            target=self._drive, name="repro-pipeline-driver", daemon=True
        )
        self._thread.start()

    # -- driving -------------------------------------------------------------

    def _drive(self) -> None:
        result: "PipelineResult | None" = None
        error: BaseException | None = None
        state = SUCCEEDED
        try:
            result = self._backend.execute(self._request, self.events)
        except PipelineCancelled as exc:
            error, state = exc, CANCELLED
        # Not swallowed: stored and re-raised from result() on the
        # caller's thread (a driver thread has nowhere else to report).
        except BaseException as exc:  # repro-lint: disable=silent-except -- re-raised by result()
            error, state = exc, FAILED
        after = self._matcher_counters()
        with self._cond:
            self._result = result
            self._error = error
            self._state = state
            self._matcher_after = after
            self._cond.notify_all()

    def _matcher_counters(self) -> tuple[int, int, int, int]:
        if self._matcher is None:
            return (0, 0, 0, 0)
        return (
            self._matcher.comparisons,
            self._matcher.matches_found,
            # The verdict-memo stats only exist on ThresholdMatcher;
            # snapshot them with the rest so matcher_stats() never
            # reports cache numbers from a previous run.
            getattr(self._matcher, "cache_hits", 0),
            getattr(self._matcher, "cache_misses", 0),
        )

    def _observe(self, event: ExecutionEvent) -> None:
        with self._cond:
            self._streamed.extend(self._mirror.update(event))
            self._cond.notify_all()

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"running"``, ``"succeeded"``, ``"failed"`` or ``"cancelled"``."""
        with self._cond:
            return self._state

    @property
    def done(self) -> bool:
        return self.state != RUNNING

    @property
    def cancelled(self) -> bool:
        """Whether the run actually ended by cancellation (a cancel that
        loses the race against completion leaves a succeeded run)."""
        return self.state == CANCELLED

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        The currently-running task units finish, nothing later starts,
        and the execution ends in the ``"cancelled"`` state with
        :meth:`result` raising :class:`~repro.mapreduce.events.
        PipelineCancelled`.  Returns ``False`` when the run had already
        finished (in which case its result stands).
        """
        with self._cond:
            if self._state != RUNNING:
                return False
        self.events.cancel()
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the run finishes; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._state != RUNNING, timeout)

    # -- results -------------------------------------------------------------

    def result(self, timeout: float | None = None) -> "PipelineResult":
        """The finished run's :class:`~repro.engine.result.PipelineResult`.

        Blocks until completion; re-raises the execution's error for
        failed runs and :class:`~repro.mapreduce.events.
        PipelineCancelled` for cancelled ones.  An interrupt while
        waiting (Ctrl-C) cancels the run cooperatively before
        propagating, so the driver thread stops at the next task-unit
        boundary instead of running to completion unattended.
        """
        try:
            finished = self.wait(timeout)
        except BaseException:
            self.events.cancel()
            raise
        if not finished:
            raise TimeoutError(
                f"execution still running after {timeout} seconds"
            )
        self._thread.join()
        with self._cond:
            if self._error is not None:
                raise self._error
            if self._result is None:
                raise RuntimeError(
                    "execution finished with neither result nor error"
                )
            return self._result

    def iter_matches(self) -> Iterator["MatchPair"]:
        """Stream matches as reduce task units complete.

        Yields every match of the run exactly once, in deterministic
        order: reduce-task-index order, emission order within a task —
        the same order ``result().matches`` is assembled in, whatever
        the backend.  May be called multiple times (later iterations
        replay the already-streamed prefix) and ends by raising the
        run's error for failed/cancelled executions.  A non-executing
        backend (planned) streams nothing.
        """
        index = 0
        while True:
            with self._cond:
                try:
                    self._cond.wait_for(
                        lambda: len(self._streamed) > index
                        or self._state != RUNNING
                    )
                except BaseException:
                    # Interrupted mid-stream: wind the driver down
                    # cooperatively before propagating.
                    self.events.cancel()
                    raise
                batch = self._streamed[index:]
                index += len(batch)
                drained = self._state != RUNNING and index == len(self._streamed)
                error = self._error
            yield from batch
            if drained:
                if error is not None:
                    raise error
                return

    # -- observation ---------------------------------------------------------

    def progress(self) -> ExecutionProgress:
        """A point-in-time snapshot of task completion per stage."""
        with self._cond:
            return self._mirror.progress(self._state)

    def matcher_stats(self) -> MatcherStats:
        """This run's matcher counter deltas (see :class:`MatcherStats`).

        Read after completion for final numbers; mid-run reads give the
        work done so far (serial/thread/async backends only).
        """
        with self._cond:
            current = (
                self._matcher_after
                if self._matcher_after is not None
                else self._matcher_counters()
            )
            before = self._matcher_before
        return MatcherStats(
            comparisons=current[0] - before[0],
            matches_found=current[1] - before[1],
            cache_hits=current[2] - before[2],
            cache_misses=current[3] - before[3],
        )

    # -- asyncio bridges ------------------------------------------------------

    async def result_async(self) -> "PipelineResult":
        """``await``-able :meth:`result` (the wait runs off-loop)."""
        return await asyncio.to_thread(self.result)

    async def aiter_matches(self) -> AsyncIterator["MatchPair"]:
        """Async variant of :meth:`iter_matches` (same order, same
        exactly-once guarantee); blocking waits run off-loop."""
        matches = self.iter_matches()
        sentinel = object()
        while True:
            item = await asyncio.to_thread(next, matches, sentinel)
            if item is sentinel:
                return
            yield item  # type: ignore[misc]

    def __repr__(self) -> str:
        return (
            f"PipelineExecution(state={self.state!r}, "
            f"backend={self._backend.name!r}, "
            f"strategy={self._request.strategy.name!r})"
        )
