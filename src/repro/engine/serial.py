"""The serial backend: the deterministic single-threaded reference path."""

from __future__ import annotations

from ..mapreduce.dfs import DistributedFileSystem
from ..mapreduce.runtime import LocalRuntime
from .backend import register_backend
from .executing import ExecutingBackendBase


@register_backend
class SerialBackend(ExecutingBackendBase):
    """Runs every task in-process, in task-index order.

    This wraps :class:`~repro.mapreduce.runtime.LocalRuntime` — exactly
    what the pre-pipeline ``ERWorkflow`` did — and is the ground truth
    the backend-equivalence tests compare the parallel backend against,
    and the hot-path equivalence suite compares the bit-parallel
    kernel / packed-key shuffle against their reference paths on (see
    ``tests/test_hotpath_equivalence.py``).
    """

    name = "serial"

    def __init__(self, dfs: DistributedFileSystem | None = None):
        self._dfs = dfs

    def make_runtime(self) -> LocalRuntime:
        return LocalRuntime(self._dfs)
