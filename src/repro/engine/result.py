"""The unified result of one pipeline run, whatever the backend.

Executing backends (serial, parallel, async) fill the match/job fields;
the planned backend leaves them ``None``.  The analytic ``plan`` is
present for every backend, so workload accessors such as
:meth:`PipelineResult.reduce_comparisons` work uniformly — callers can
swap ``"serial"`` for ``"planned"`` without touching downstream code.

Results persist: :meth:`PipelineResult.save` writes a versioned JSON
document and :meth:`PipelineResult.load` restores it — matches,
counters, per-task statistics, BDM, plans and simulated timeline all
round-trip (see :mod:`repro.engine.persistence`), which is what lets
the analysis sweeps replay a finished run from disk instead of
re-executing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..mapreduce.counters import StandardCounter

if TYPE_CHECKING:  # imports for annotations only — keeps this module cycle-free
    from ..cluster.timeline import WorkflowTimeline
    from ..core.bdm import BlockDistributionMatrix
    from ..core.planning import BdmJobPlan, StrategyPlan
    from ..core.two_source import DualSourceBDM
    from ..er.matching import MatchResult
    from ..mapreduce.runtime import JobResult


@dataclass(frozen=True, slots=True)
class PipelineResult:
    """Everything one pipeline run produced.

    ``strategy`` and ``backend`` are the registry names used;
    ``bdm`` is the executed Job 1 output (executing backends) or the
    analytically derived matrix (planned backend) — ``None`` only for
    the BDM-free Basic strategy on an executing backend.
    """

    strategy: str
    backend: str
    matches: "MatchResult | None"
    bdm: "BlockDistributionMatrix | DualSourceBDM | None"
    job1: "JobResult | None"
    job2: "JobResult | None"
    plan: "StrategyPlan | None" = None
    bdm_plan: "BdmJobPlan | None" = None
    timeline: "WorkflowTimeline | None" = None

    # -- execution-mode probes ---------------------------------------------

    @property
    def executed(self) -> bool:
        """Whether matching actually ran (vs. analytic planning only)."""
        return self.job2 is not None

    @property
    def execution_time(self) -> float | None:
        """Simulated wall-clock seconds, when a cluster was configured."""
        return self.timeline.execution_time if self.timeline is not None else None

    # -- workload accessors (uniform across backends) ----------------------

    def reduce_comparisons(self) -> list[int]:
        """Pairs compared per reduce task of Job 2 (measured or planned).

        A planned run over input with no blocked entities has no
        plannable workload (``plan is None``): report it as zero work,
        matching what the executing backends measure on the same input.
        """
        if self.job2 is not None:
            return self.job2.reduce_counter(StandardCounter.PAIR_COMPARISONS)
        if self.plan is not None:
            return list(self.plan.reduce_comparisons)
        return []

    def total_comparisons(self) -> int:
        return sum(self.reduce_comparisons())

    def map_output_kv(self) -> int:
        """Total key-value pairs emitted by Job 2's map phase (Figure 12)."""
        if self.job2 is not None:
            return self.job2.map_output_records()
        if self.plan is not None:
            return self.plan.total_map_output_kv
        return 0

    # -- persistence ---------------------------------------------------------

    def save(self, path: "str | Path") -> Path:
        """Persist this result as a versioned JSON document.

        Matches (ids and scores), all counters (job-level and
        per-task), the BDM, the analytic plans and the simulated
        timeline round-trip exactly through :meth:`load`; raw per-task
        output records (other than the matches) and job properties do
        not.  Returns the path written.
        """
        from .persistence import save_result

        return save_result(self, path)

    @classmethod
    def load(cls, path: "str | Path") -> "PipelineResult":
        """Read a result previously written by :meth:`save`.

        Raises :class:`~repro.engine.persistence.PersistenceError` for
        files that are not (a supported version of) the format.
        """
        from .persistence import load_result

        return load_result(path)
