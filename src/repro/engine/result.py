"""The unified result of one pipeline run, whatever the backend.

Executing backends (serial, parallel) fill the match/job fields;
the planned backend leaves them ``None``.  The analytic ``plan`` is
present for every backend, so workload accessors such as
:meth:`PipelineResult.reduce_comparisons` work uniformly — callers can
swap ``"serial"`` for ``"planned"`` without touching downstream code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..mapreduce.counters import StandardCounter

if TYPE_CHECKING:  # imports for annotations only — keeps this module cycle-free
    from ..cluster.timeline import WorkflowTimeline
    from ..core.bdm import BlockDistributionMatrix
    from ..core.planning import BdmJobPlan, StrategyPlan
    from ..core.two_source import DualSourceBDM
    from ..er.matching import MatchResult
    from ..mapreduce.runtime import JobResult


@dataclass(frozen=True, slots=True)
class PipelineResult:
    """Everything one pipeline run produced.

    ``strategy`` and ``backend`` are the registry names used;
    ``bdm`` is the executed Job 1 output (executing backends) or the
    analytically derived matrix (planned backend) — ``None`` only for
    the BDM-free Basic strategy on an executing backend.
    """

    strategy: str
    backend: str
    matches: "MatchResult | None"
    bdm: "BlockDistributionMatrix | DualSourceBDM | None"
    job1: "JobResult | None"
    job2: "JobResult | None"
    plan: "StrategyPlan | None" = None
    bdm_plan: "BdmJobPlan | None" = None
    timeline: "WorkflowTimeline | None" = None

    # -- execution-mode probes ---------------------------------------------

    @property
    def executed(self) -> bool:
        """Whether matching actually ran (vs. analytic planning only)."""
        return self.job2 is not None

    @property
    def execution_time(self) -> float | None:
        """Simulated wall-clock seconds, when a cluster was configured."""
        return self.timeline.execution_time if self.timeline is not None else None

    # -- workload accessors (uniform across backends) ----------------------

    def reduce_comparisons(self) -> list[int]:
        """Pairs compared per reduce task of Job 2 (measured or planned).

        A planned run over input with no blocked entities has no
        plannable workload (``plan is None``): report it as zero work,
        matching what the executing backends measure on the same input.
        """
        if self.job2 is not None:
            return self.job2.reduce_counter(StandardCounter.PAIR_COMPARISONS)
        if self.plan is not None:
            return list(self.plan.reduce_comparisons)
        return []

    def total_comparisons(self) -> int:
        return sum(self.reduce_comparisons())

    def map_output_kv(self) -> int:
        """Total key-value pairs emitted by Job 2's map phase (Figure 12)."""
        if self.job2 is not None:
            return self.job2.map_output_records()
        if self.plan is not None:
            return self.plan.total_map_output_kv
        return 0
