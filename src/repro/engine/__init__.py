"""Unified pipeline API over pluggable execution backends.

``ERPipeline`` is the single entry point for the paper's two-job
workflow (Job 1 BDM computation, Job 2 load-balanced matching): one- and
two-source matching share one ``run(r, s=None)`` code path, and the
*how* of execution is delegated to an :class:`ExecutionBackend`:

=================  ======================================================
backend            what it does
=================  ======================================================
``serial``         deterministic in-process execution (the reference)
``parallel``       map/reduce tasks fan out over a process or thread pool
``async``          the same task units as asyncio coroutines — awaitable,
                   streamable, cancellable from an event loop
``distributed``    the same task units shipped to worker *processes* over
                   loopback sockets, with heartbeats, per-task timeouts
                   and bounded requeue on worker failure
``planned``        no execution — analytic planners + cluster simulation,
                   which is what makes DS2-scale figures tractable
=================  ======================================================

All backends return a :class:`PipelineResult`; executing backends fill
``matches``/``job1``/``job2``, and every backend fills the analytic
``plan`` (and a simulated ``timeline`` when a cluster is configured).
Backends self-register via :func:`register_backend`, exactly like
strategies do via ``@register_strategy``.

``run()`` is sugar over the submission model: :meth:`ERPipeline.submit`
returns a :class:`PipelineExecution` handle that streams matches as
reduce task units complete, reports progress, and cancels
cooperatively; results persist to versioned JSON via
:meth:`PipelineResult.save` / :meth:`PipelineResult.load`, so analysis
sweeps can replan from a finished run without re-executing it.

Inputs may be entity lists, ready-made partitions, or a streaming
:class:`~repro.io.RecordSource` (CSV shards, generators); a
``memory_budget`` makes the shuffle spill sorted run files to disk
instead of buffering all map output.  See ``docs/api.md`` for the guide
with runnable examples and ``docs/architecture.md`` for the dataflow.
"""

from ..mapreduce.events import (
    EventChannel,
    EventKind,
    ExecutionEvent,
    PipelineCancelled,
)
from .async_backend import AsyncBackend, AsyncRuntime
from .backend import (
    BACKENDS,
    DeltaSpec,
    ExecutionBackend,
    PipelineRequest,
    get_backend,
    register_backend,
)
from .distributed import (
    DistributedBackend,
    DistributedExecutionError,
    DistributedRuntime,
)
from .execution import (
    ExecutionProgress,
    ExecutionStateMirror,
    MatcherStats,
    PipelineExecution,
    StageProgress,
)
from .incremental import CorpusState, ingest
from .parallel import ParallelBackend, ParallelRuntime
from .persistence import (
    PersistenceError,
    load_result,
    load_state,
    result_from_dict,
    result_to_dict,
    save_result,
    save_state,
    state_from_dict,
    state_to_dict,
)
from .pipeline import ERPipeline
from .planned import PlannedBackend
from .result import PipelineResult
from .serial import SerialBackend
from .simulate import (
    simulate_executed_workflow,
    simulate_planned_workflow,
    simulate_strategy,
)

__all__ = [
    "BACKENDS",
    "AsyncBackend",
    "AsyncRuntime",
    "CorpusState",
    "DeltaSpec",
    "DistributedBackend",
    "DistributedExecutionError",
    "DistributedRuntime",
    "ERPipeline",
    "EventChannel",
    "EventKind",
    "ExecutionBackend",
    "ExecutionEvent",
    "ExecutionProgress",
    "ExecutionStateMirror",
    "MatcherStats",
    "ParallelBackend",
    "ParallelRuntime",
    "PersistenceError",
    "PipelineCancelled",
    "PipelineExecution",
    "PipelineRequest",
    "PipelineResult",
    "PlannedBackend",
    "SerialBackend",
    "StageProgress",
    "get_backend",
    "ingest",
    "load_result",
    "load_state",
    "register_backend",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "save_state",
    "state_from_dict",
    "state_to_dict",
    "simulate_executed_workflow",
    "simulate_planned_workflow",
    "simulate_strategy",
]
