"""Unified pipeline API over pluggable execution backends.

``ERPipeline`` is the single entry point for the paper's two-job
workflow (Job 1 BDM computation, Job 2 load-balanced matching): one- and
two-source matching share one ``run(r, s=None)`` code path, and the
*how* of execution is delegated to an :class:`ExecutionBackend`:

=============  ==========================================================
backend        what it does
=============  ==========================================================
``serial``     deterministic in-process execution (the reference path)
``parallel``   map/reduce tasks fan out over a process or thread pool
``planned``    no execution — analytic planners + cluster simulation,
               which is what makes DS2-scale figures tractable
=============  ==========================================================

All backends return a :class:`PipelineResult`; executing backends fill
``matches``/``job1``/``job2``, and every backend fills the analytic
``plan`` (and a simulated ``timeline`` when a cluster is configured).
Backends self-register via :func:`register_backend`, exactly like
strategies do via ``@register_strategy``.

Inputs may be entity lists, ready-made partitions, or a streaming
:class:`~repro.io.RecordSource` (CSV shards, generators); a
``memory_budget`` makes the shuffle spill sorted run files to disk
instead of buffering all map output.  See ``docs/api.md`` for the guide
with runnable examples and ``docs/architecture.md`` for the dataflow.
"""

from .backend import (
    BACKENDS,
    ExecutionBackend,
    PipelineRequest,
    get_backend,
    register_backend,
)
from .parallel import ParallelBackend, ParallelRuntime
from .pipeline import ERPipeline
from .planned import PlannedBackend
from .result import PipelineResult
from .serial import SerialBackend
from .simulate import (
    simulate_executed_workflow,
    simulate_planned_workflow,
    simulate_strategy,
)

__all__ = [
    "BACKENDS",
    "ERPipeline",
    "ExecutionBackend",
    "ParallelBackend",
    "ParallelRuntime",
    "PipelineRequest",
    "PipelineResult",
    "PlannedBackend",
    "SerialBackend",
    "get_backend",
    "register_backend",
    "simulate_executed_workflow",
    "simulate_planned_workflow",
    "simulate_strategy",
]
