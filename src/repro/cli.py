"""Command-line interface.

Nine subcommands cover the library's main entry points::

    repro-er generate  --kind products --num 5000 --output products.csv
    repro-er pack      --input products.csv --out products.cols
    repro-er dedup     --input products.csv --output matches.csv
    repro-er link      --input-r a.csv --input-s b.csv --output links.csv
    repro-er ingest    --state state/ --input batch.csv --output new.csv
    repro-er serve     --workers 4 --port 7311
    repro-er submit    --server HOST:PORT --input products.csv --output m.csv
    repro-er simulate  --dataset ds1 --nodes 10 --reduce-tasks 100
    repro-er recommend --input products.csv

``dedup``/``link`` run the real two-job workflow through
:class:`~repro.engine.ERPipeline` — ``--backend parallel`` fans the
map/reduce tasks out over a worker pool (``async`` over an asyncio
loop, ``distributed`` over worker processes connected by loopback
sockets, with ``--task-timeout`` guarding against hung workers and
``--max-worker-respawns`` letting the pool heal after losses),
``--input-format csv-shards`` streams the input through the
:mod:`repro.io` record-source layer (``columnar`` serves it from a
memory-mapped dataset written by ``pack``), ``--no-batch-kernel``
disables the batched similarity kernel (results are byte-identical
either way), ``--memory-budget`` bounds shuffle
buffering by spilling sorted run files to disk, ``--progress`` streams
task lifecycle events to stderr as they happen, and ``--save-result``
persists the full :class:`~repro.engine.PipelineResult` as versioned
JSON.  The ``--output`` CSV is a **streaming sink**: match rows are
written as reduce task units complete, not buffered until the end — so
a long run's output is inspectable while it executes, and local and
remote runs of the same pipeline produce byte-identical files.

``ingest`` is the incremental path: ``dedup --save-state DIR`` seeds a
persisted :class:`~repro.engine.CorpusState`, and each later ``ingest
--state DIR --input batch.csv`` matches only the *new* records against
it (delta runs — new-vs-old and new-vs-new pairs per block, never
old-vs-old again), appends the new matches to the state atomically,
and writes them to ``--output``.  The union of the seed's and every
ingest's output CSVs equals a full ``dedup`` of all records combined.
With ``--server`` the ingest runs against a *server-resident* state
instead (a daemon started with ``--state-root``; ``--state`` then
names the state, not a local directory).

``serve`` runs the persistent ER daemon (one shared worker pool, many
concurrent jobs over TCP — see :mod:`repro.serve`); ``submit`` ships a
dedup run to such a daemon and streams the matches back into
``--output`` exactly like a local ``dedup`` would.

``simulate`` uses the analytic planners + cluster simulator and
therefore handles DS2 scale in seconds — with ``--from-result`` it
replans straight from a previously saved result file, no re-execution;
``recommend`` profiles a file's blocking skew (streaming, with
``csv-shards``) and picks a strategy using the paper's findings.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Sequence

from .analysis.experiments import bdm_for_block_sizes, simulate_run
from .analysis.metrics import WorkloadStats
from .analysis.reporting import format_table
from .core.missing_keys import resolve_with_missing_keys
from .core.statistics import bdm_statistics, recommend_strategy
from .engine.pipeline import ERPipeline
from .datasets.generators import (
    DS1_PROFILE,
    DS2_PROFILE,
    generate_products,
    generate_publications,
)
from .datasets.loaders import load_entities_csv, save_entities_csv
from .datasets.skew import zipf_block_sizes
from .er.blocking import PrefixBlocking
from .er.matching import MatchResult, ThresholdMatcher
from .io.sources import CsvShardSource, RecordSource


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-er",
        description="Load-balanced MapReduce-style entity resolution "
        "(Kolb/Thor/Rahm, ICDE 2012 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset CSV")
    generate.add_argument("--kind", choices=["products", "publications"], default="products")
    generate.add_argument("--num", type=int, default=1_000)
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--output", required=True)

    pack = subparsers.add_parser(
        "pack",
        help="pack a CSV dataset into memory-mapped columnar shards",
    )
    pack.add_argument("--input", required=True, help="entity CSV to pack")
    pack.add_argument("--out", required=True, metavar="DIR",
                      help="output directory for the columnar dataset "
                           "(must not already hold one)")
    pack.add_argument("--shards", type=_positive_int, default=4,
                      help="shard count preserved in the packed dataset "
                           "(default: 4, matching the dedup -m default)")

    for name, helptext in (
        ("dedup", "deduplicate one CSV source"),
        ("link", "link two CSV sources (R x S)"),
    ):
        sub = subparsers.add_parser(name, help=helptext)
        if name == "dedup":
            sub.add_argument("--input", required=True)
            sub.add_argument("--allow-missing-keys", action="store_true",
                             help="apply the Section III Cartesian fallback "
                                  "for entities without a blocking key")
            sub.add_argument("--input-format",
                             choices=["memory", "csv-shards", "columnar"],
                             default="memory",
                             help="memory = load the CSV up front; "
                                  "csv-shards = stream it as --shards "
                                  "contiguous shards (RecordSource layer); "
                                  "columnar = --input is a memory-mapped "
                                  "dataset directory written by 'pack'")
            sub.add_argument("--shards", type=_positive_int, default=None,
                             help="shard count for --input-format csv-shards "
                                  "(default: --map-tasks); invalid with "
                                  "columnar, whose manifest fixes the shards")
        else:
            sub.add_argument("--input-r", required=True)
            sub.add_argument("--input-s", required=True)
            sub.add_argument("--input-format", choices=["memory", "columnar"],
                             default="memory",
                             help="memory = CSV inputs; columnar = both "
                                  "inputs are dataset directories written "
                                  "by 'pack'")
        sub.add_argument("--output", required=True)
        sub.add_argument("--strategy", choices=["basic", "blocksplit", "pairrange"],
                         default="blocksplit")
        sub.add_argument("--attribute", default="title")
        sub.add_argument("--prefix-length", type=int, default=3)
        sub.add_argument("--threshold", type=float, default=0.8)
        sub.add_argument("-m", "--map-tasks", type=int, default=4)
        sub.add_argument("-r", "--reduce-tasks", type=int, default=8)
        sub.add_argument("--backend",
                         choices=["serial", "parallel", "async", "distributed"],
                         default="serial",
                         help="execution backend (parallel = worker pool, "
                              "async = asyncio task units, distributed = "
                              "worker processes over sockets)")
        sub.add_argument("--workers", type=_positive_int, default=None,
                         help="pool size for --backend parallel/async "
                              "(default: all cores) or worker-process count "
                              "for --backend distributed (default: 2)")
        sub.add_argument("--task-timeout", type=_positive_float, default=None,
                         help="for --backend distributed: seconds one task "
                              "may run on a worker before the worker is "
                              "presumed hung, killed, and the task requeued")
        sub.add_argument("--max-worker-respawns", type=int, default=None,
                         metavar="N",
                         help="for --backend distributed: replacement "
                              "workers that may be spawned after losses "
                              "(default 0: the pool only shrinks)")
        sub.add_argument("--memory-budget", type=_positive_int, default=None,
                         help="max map-output records buffered in memory "
                              "during the shuffle; the rest spills through "
                              "sorted run files on disk (same results)")
        sub.add_argument("--no-batch-kernel", action="store_true",
                         help="score pairs one at a time instead of through "
                              "the batched similarity kernel (byte-identical "
                              "results; mainly for benchmarking)")
        sub.add_argument("--progress", action="store_true",
                         help="stream task lifecycle events to stderr while "
                              "the pipeline runs")
        sub.add_argument("--save-result", metavar="PATH", default=None,
                         help="persist the full PipelineResult as versioned "
                              "JSON (replayable with 'simulate "
                              "--from-result PATH')")
        if name == "dedup":
            sub.add_argument("--save-state", metavar="DIR", default=None,
                             help="seed a persisted corpus state in DIR "
                                  "from this run, for later incremental "
                                  "'ingest --state DIR' batches (DIR must "
                                  "not already hold a state)")

    ingest = subparsers.add_parser(
        "ingest",
        help="incrementally match a batch of new records against a "
             "persisted corpus state (delta run; old records never "
             "re-compare)",
    )
    ingest.add_argument("--state", required=True, metavar="DIR",
                        help="state directory (seeded by 'dedup "
                             "--save-state' or a first ingest into an "
                             "empty directory); with --server: the name "
                             "of a server-resident state instead")
    ingest.add_argument("--input", required=True,
                        help="CSV of the *new* records only")
    ingest.add_argument("--input-format", choices=["memory", "columnar"],
                        default="memory",
                        help="memory = CSV input; columnar = --input is a "
                             "dataset directory written by 'pack'")
    ingest.add_argument("--output", required=True,
                        help="CSV of the newly found matches (the "
                             "cumulative set lives in the state)")
    ingest.add_argument("--server", default=None, metavar="HOST:PORT",
                        help="run the ingest on a remote ER server "
                             "started with --state-root (the state "
                             "stays server-resident)")
    ingest.add_argument("--token", default=None,
                        help="service token for --server (default: the "
                             "REPRO_SERVE_TOKEN environment variable)")
    ingest.add_argument("--strategy", choices=["basic", "blocksplit", "pairrange"],
                        default="blocksplit")
    ingest.add_argument("--attribute", default="title")
    ingest.add_argument("--prefix-length", type=int, default=3)
    ingest.add_argument("--threshold", type=float, default=0.8)
    ingest.add_argument("-m", "--map-tasks", type=int, default=4)
    ingest.add_argument("-r", "--reduce-tasks", type=int, default=8)
    ingest.add_argument("--backend",
                        choices=["serial", "parallel", "async", "distributed"],
                        default="serial",
                        help="execution backend for the delta run "
                             "(ignored with --server: the daemon's "
                             "shared pool executes)")
    ingest.add_argument("--workers", type=_positive_int, default=None,
                        help="pool size for --backend parallel/async, "
                             "worker-process count for distributed")
    ingest.add_argument("--task-timeout", type=_positive_float, default=None,
                        help="for --backend distributed: per-task "
                             "timeout before a worker is presumed hung")
    ingest.add_argument("--max-worker-respawns", type=int, default=None,
                        metavar="N",
                        help="for --backend distributed: replacement "
                             "workers after losses (default 0)")
    ingest.add_argument("--memory-budget", type=_positive_int, default=None,
                        help="max map-output records buffered in memory "
                             "during the shuffle (rest spills to disk)")
    ingest.add_argument("--no-batch-kernel", action="store_true",
                        help="score pairs one at a time instead of through "
                             "the batched similarity kernel (byte-identical "
                             "results)")
    ingest.add_argument("--progress", action="store_true",
                        help="stream task lifecycle events to stderr")

    serve = subparsers.add_parser(
        "serve",
        help="run the persistent ER service daemon (shared worker pool, "
             "concurrent jobs over TCP)",
    )
    from .serve.__main__ import add_server_arguments

    add_server_arguments(serve)

    submit = subparsers.add_parser(
        "submit",
        help="run a dedup on a remote ER server (started with 'serve')",
    )
    submit.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="address printed by the daemon at startup")
    submit.add_argument("--token", default=None,
                        help="service token (default: the REPRO_SERVE_TOKEN "
                             "environment variable)")
    submit.add_argument("--input", required=True)
    submit.add_argument("--input-format", choices=["memory", "columnar"],
                        default="memory",
                        help="memory = CSV input; columnar = --input is a "
                             "dataset directory written by 'pack'")
    submit.add_argument("--output", required=True)
    submit.add_argument("--no-batch-kernel", action="store_true",
                        help="ask the server to score pairs one at a time "
                             "instead of through the batched similarity "
                             "kernel (byte-identical results)")
    submit.add_argument("--strategy", choices=["basic", "blocksplit", "pairrange"],
                        default="blocksplit")
    submit.add_argument("--attribute", default="title")
    submit.add_argument("--prefix-length", type=int, default=3)
    submit.add_argument("--threshold", type=float, default=0.8)
    submit.add_argument("-m", "--map-tasks", type=int, default=4)
    submit.add_argument("-r", "--reduce-tasks", type=int, default=8)
    submit.add_argument("--progress", action="store_true",
                        help="stream forwarded task lifecycle events to "
                             "stderr while the job runs remotely")

    simulate = subparsers.add_parser(
        "simulate", help="simulate strategies on a cluster (analytic planners)"
    )
    simulate.add_argument("--dataset", choices=["ds1", "ds2"], default="ds1")
    simulate.add_argument("--from-result", metavar="PATH", default=None,
                          help="replan from a persisted PipelineResult JSON "
                               "(written by dedup/link --save-result) instead "
                               "of a synthetic --dataset; nothing re-executes")
    simulate.add_argument("--nodes", type=int, default=10)
    simulate.add_argument("--map-tasks", type=int, default=None,
                          help="default: 2 x nodes")
    simulate.add_argument("--reduce-tasks", type=int, default=None,
                          help="default: 10 x nodes")
    simulate.add_argument(
        "--strategies", nargs="+",
        choices=["basic", "blocksplit", "pairrange"],
        default=["basic", "blocksplit", "pairrange"],
    )

    recommend = subparsers.add_parser(
        "recommend",
        help="analyse a CSV's blocking skew and recommend a strategy",
    )
    recommend.add_argument("--input", required=True)
    recommend.add_argument("--attribute", default="title")
    recommend.add_argument("--prefix-length", type=int, default=3)
    recommend.add_argument("-m", "--map-tasks", type=int, default=4)
    recommend.add_argument("-r", "--reduce-tasks", type=int, default=8)
    recommend.add_argument("--sorted-input", action="store_true",
                           help="the file is sorted by the blocking key")
    recommend.add_argument("--input-format", choices=["memory", "csv-shards"],
                           default="memory",
                           help="csv-shards computes the skew profile in one "
                                "streaming pass (no materialization)")
    recommend.add_argument("--shards", type=_positive_int, default=None,
                           help="shard count for --input-format csv-shards "
                                "(default: --map-tasks)")

    # Listed here for --help; parsing is delegated wholesale to
    # repro.devtools.lint (see main()), which owns its own flags.
    subparsers.add_parser(
        "lint",
        help="run the invariant lint suite (see docs/lint.md)",
        add_help=False,
    )
    return parser


def _backend(args: argparse.Namespace):
    """Resolve the --backend/--workers/--task-timeout flags to a backend."""
    from .engine.backend import get_backend

    task_timeout = getattr(args, "task_timeout", None)
    if task_timeout is not None and args.backend != "distributed":
        raise SystemExit(
            f"repro-er {args.command}: error: --task-timeout requires "
            "--backend distributed"
        )
    max_worker_respawns = getattr(args, "max_worker_respawns", None)
    if max_worker_respawns is not None and args.backend != "distributed":
        raise SystemExit(
            f"repro-er {args.command}: error: --max-worker-respawns "
            "requires --backend distributed"
        )
    if args.backend == "parallel":
        return get_backend("parallel", max_workers=args.workers)
    if args.backend == "async":
        return get_backend("async", max_concurrency=args.workers)
    if args.backend == "distributed":
        return get_backend(
            "distributed",
            num_workers=args.workers,
            task_timeout=task_timeout,
            max_worker_respawns=(
                max_worker_respawns if max_worker_respawns is not None else 0
            ),
        )
    if args.workers is not None:
        raise SystemExit(
            f"repro-er {args.command}: error: --workers requires "
            "--backend parallel, async or distributed"
        )
    return get_backend(args.backend)


def _progress_printer(stream):
    """An on_event callback that narrates the run, one line per event
    worth telling (job boundaries + reduce task completions)."""
    from .mapreduce.events import EventKind

    def on_event(event):
        label = event.stage or event.job
        if event.kind == EventKind.JOB_STARTED:
            print(
                f"[{label}] {event.job}: "
                f"{event.data['num_map_tasks']} map / "
                f"{event.data['num_reduce_tasks']} reduce tasks",
                file=stream,
            )
        elif event.kind == EventKind.TASK_FINISHED and event.phase == "reduce":
            comparisons = event.data.get("comparisons", 0)
            matches = event.data.get("matches", 0)
            detail = f", {comparisons:,} comparisons" if comparisons else ""
            if matches:
                detail += f", {matches} matches"
            print(
                f"[{label}] reduce task {event.task_index} done: "
                f"{event.data['input_records']} records{detail}",
                file=stream,
            )
        elif event.kind == EventKind.JOB_FINISHED:
            print(f"[{label}] {event.job} finished", file=stream)

    return on_event


def _stream_matches(execution, path: str) -> int:
    """Drain ``execution.iter_matches()`` into a CSV as rows arrive.

    This is the streaming ``--output`` sink: each match is written (and
    flushed) the moment its reduce task unit completes, so the file
    grows while the run executes instead of appearing at the end.  The
    row order is the deterministic stream order — identical across
    local backends and remote submission for the same pipeline.  Works
    with any handle offering ``iter_matches()`` (a local
    ``PipelineExecution`` or a remote ``RemoteExecution``).  Returns
    the number of matches written.
    """
    count = 0
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2", "similarity"])
        for pair in execution.iter_matches():
            writer.writerow([pair.id1, pair.id2, f"{pair.similarity:.6f}"])
            handle.flush()
            count += 1
    return count


def _run_pipeline(pipeline: ERPipeline, args: argparse.Namespace, *run_args, **run_kwargs):
    """Submit, stream matches into --output, persist on request.

    Returns ``(result, match_count)``; the output CSV is already
    written (streamed during execution) when this returns.
    """
    on_event = _progress_printer(sys.stderr) if args.progress else None
    execution = pipeline.submit(*run_args, on_event=on_event, **run_kwargs)
    count = _stream_matches(execution, args.output)
    result = execution.result()
    if args.save_result:
        path = result.save(args.save_result)
        print(f"saved result to {path}")
    return result, count


def _columnar_source(path: str, command: str, *, source: str | None = None):
    """Open a packed dataset, turning layout errors into pinned exits."""
    from .io.columnar import ColumnarShardSource

    try:
        return ColumnarShardSource(path, source=source)
    except ValueError as exc:
        raise SystemExit(f"repro-er {command}: error: {exc}") from None


def _load_entities(args: argparse.Namespace, path: str, *, source: str | None = None):
    """Materialize one entity input honouring --input-format
    (``memory`` = CSV, ``columnar`` = packed dataset directory)."""
    if getattr(args, "input_format", "memory") == "columnar":
        return list(
            _columnar_source(path, args.command, source=source).iter_records()
        )
    return load_entities_csv(path, source=source)


def _write_matches(matches: MatchResult, path: str) -> None:
    """Buffered sink for code paths without an execution handle (the
    missing-keys fallback merges several runs into bare matches)."""
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id1", "id2", "similarity"])
        for pair in matches:
            writer.writerow([pair.id1, pair.id2, f"{pair.similarity:.6f}"])


def cmd_pack(args: argparse.Namespace) -> int:
    from .io.columnar import write_columnar

    source = CsvShardSource(args.input, num_shards=args.shards)
    try:
        out = write_columnar(source, args.out)
    except (OSError, ValueError) as exc:
        print(f"repro-er pack: error: {exc}", file=sys.stderr)
        return 2
    sizes = source.shard_sizes()
    print(
        f"packed {sum(sizes)} entities into {len(sizes)} columnar "
        f"shard(s) at {out}"
    )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "products":
        entities = generate_products(args.num, seed=args.seed)
    else:
        entities = generate_publications(args.num, seed=args.seed)
    save_entities_csv(entities, args.output)
    print(f"wrote {len(entities)} {args.kind} to {args.output}")
    return 0


def cmd_dedup(args: argparse.Namespace) -> int:
    blocking = PrefixBlocking(args.attribute, args.prefix_length)
    if args.save_state is not None:
        from .engine.persistence import STATE_FILE

        if args.allow_missing_keys:
            print(
                "error: --save-state is not supported with "
                "--allow-missing-keys (the Cartesian fallback merges "
                "several pipeline runs; a corpus state tracks one)",
                file=sys.stderr,
            )
            return 2
        if (Path(args.save_state) / STATE_FILE).exists():
            print(
                f"error: {args.save_state} already holds a corpus state; "
                "append batches to it with 'repro-er ingest --state "
                f"{args.save_state}'",
                file=sys.stderr,
            )
            return 2
    if args.shards is not None and args.input_format != "csv-shards":
        raise SystemExit(
            f"repro-er {args.command}: error: --shards requires "
            "--input-format csv-shards (a columnar dataset's manifest "
            "fixes its shard count)"
        )
    if args.input_format == "csv-shards":
        shards = args.shards if args.shards is not None else args.map_tasks
        record_input: RecordSource | list = CsvShardSource(
            args.input, num_shards=shards
        )
        num_entities = sum(record_input.shard_sizes())
        input_note = f"{num_entities} entities ({shards} csv shards)"
    elif args.input_format == "columnar":
        record_input = _columnar_source(args.input, args.command)
        num_entities = sum(record_input.shard_sizes())
        input_note = (
            f"{num_entities} entities "
            f"({record_input.num_shards} columnar shards)"
        )
    else:
        record_input = load_entities_csv(args.input)
        num_entities = len(record_input)
        input_note = f"{num_entities} entities"
    if args.allow_missing_keys:
        if args.save_result:
            print(
                "error: --save-result is not supported with "
                "--allow-missing-keys (the Cartesian fallback merges "
                "several pipeline runs into bare matches)",
                file=sys.stderr,
            )
            return 2
        if args.progress:
            print(
                "note: --progress has no effect with "
                "--allow-missing-keys (the fallback runs its internal "
                "pipelines without an event channel)",
                file=sys.stderr,
            )
        entities = (
            list(record_input.iter_records())
            if isinstance(record_input, RecordSource)
            else record_input
        )
        matches = resolve_with_missing_keys(
            entities,
            blocking,
            strategy=args.strategy,
            matcher_factory=lambda: ThresholdMatcher(args.attribute, args.threshold),
            num_map_tasks=args.map_tasks,
            num_reduce_tasks=args.reduce_tasks,
            backend=_backend(args),
            memory_budget=args.memory_budget,
            batch_kernel=not args.no_batch_kernel,
        )
        print(f"{input_note}, {len(matches)} duplicate pairs")
        _write_matches(matches, args.output)
    else:
        pipeline = ERPipeline(
            args.strategy,
            blocking,
            ThresholdMatcher(args.attribute, args.threshold),
            num_map_tasks=args.map_tasks,
            num_reduce_tasks=args.reduce_tasks,
            backend=_backend(args),
            memory_budget=args.memory_budget,
            batch_kernel=not args.no_batch_kernel,
        )
        run_input = record_input
        partitions = None
        if args.save_state is not None:
            # Seeding a state needs the raw partitions for the
            # analytic advance, so a streamed input is materialized.
            from .mapreduce.types import make_partitions

            entities = (
                list(record_input.iter_records())
                if isinstance(record_input, RecordSource)
                else record_input
            )
            partitions = make_partitions(entities, args.map_tasks)
            run_input = partitions
        result, count = _run_pipeline(pipeline, args, run_input)
        stats = WorkloadStats.from_workloads(result.reduce_comparisons())
        print(
            f"{input_note}, {result.total_comparisons():,} comparisons "
            f"(imbalance {stats.imbalance:.2f}), {count} duplicate pairs"
        )
        if args.save_state is not None:
            from .engine.incremental import CorpusState
            from .engine.persistence import save_state

            if partitions is None:
                raise RuntimeError(
                    "--save-state needs materialized partitions; "
                    "streamed sources cannot seed a corpus state here"
                )
            state = CorpusState.empty().advanced(result, partitions, blocking)
            save_state(state, args.save_state)
            print(
                f"seeded corpus state in {args.save_state} "
                f"({state.num_entities} keyed entities, "
                f"{state.num_matches} matches)"
            )
    print(f"wrote matches to {args.output}")
    return 0


def cmd_link(args: argparse.Namespace) -> int:
    r_entities = _load_entities(args, args.input_r, source="R")
    s_entities = _load_entities(args, args.input_s, source="S")
    if args.strategy == "basic":
        print("error: two-source matching requires blocksplit or pairrange",
              file=sys.stderr)
        return 2
    pipeline = ERPipeline(
        args.strategy,
        PrefixBlocking(args.attribute, args.prefix_length),
        ThresholdMatcher(args.attribute, args.threshold),
        num_reduce_tasks=args.reduce_tasks,
        backend=_backend(args),
        memory_budget=args.memory_budget,
        batch_kernel=not args.no_batch_kernel,
    )
    result, count = _run_pipeline(
        pipeline,
        args,
        r_entities,
        s_entities,
        num_r_partitions=max(1, args.map_tasks // 2),
        num_s_partitions=max(1, args.map_tasks // 2),
    )
    print(
        f"|R|={len(r_entities)}, |S|={len(s_entities)}, "
        f"{result.total_comparisons():,} cross-source comparisons, "
        f"{count} links"
    )
    print(f"wrote links to {args.output}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    blocking = PrefixBlocking(args.attribute, args.prefix_length)
    entities = _load_entities(args, args.input)
    if args.server is not None:
        # Remote ingest: the state lives under the daemon's
        # --state-root and --state names it; the local backend flags
        # are irrelevant (the server's shared pool executes).
        from .serve.client import (
            ServeClient,
            ServeConnectionError,
            SubmissionRejected,
        )

        host, _, port_text = args.server.rpartition(":")
        if not host or not port_text.isdigit():
            print(f"error: --server must be HOST:PORT, got {args.server!r}",
                  file=sys.stderr)
            return 2
        pipeline = ERPipeline(
            args.strategy,
            blocking,
            ThresholdMatcher(args.attribute, args.threshold),
            num_map_tasks=args.map_tasks,
            num_reduce_tasks=args.reduce_tasks,
            batch_kernel=not args.no_batch_kernel,
        )
        on_event = _progress_printer(sys.stderr) if args.progress else None
        try:
            with ServeClient(
                host, int(port_text), token=args.token, on_event=on_event
            ) as client:
                execution = client.submit_delta(pipeline, entities, args.state)
                count = _stream_matches(execution, args.output)
                result = execution.result()
        except ValueError as exc:  # no token available
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (ServeConnectionError, SubmissionRejected) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"ingested {len(entities)} new entities into state "
            f"{args.state!r} on {args.server}: "
            f"{result.total_comparisons():,} delta comparisons, "
            f"{count} new duplicate pairs"
        )
        print(f"wrote new matches to {args.output}")
        return 0

    from .engine.incremental import CorpusState
    from .engine.persistence import (
        STATE_FILE,
        PersistenceError,
        load_state,
        save_state,
    )
    from .mapreduce.types import make_partitions

    directory = Path(args.state)
    try:
        if (directory / STATE_FILE).exists():
            state = load_state(directory)
        else:
            state = CorpusState.empty()
    except PersistenceError as exc:
        print(f"error: cannot load state from {args.state}: {exc}",
              file=sys.stderr)
        return 2
    pipeline = ERPipeline(
        args.strategy,
        blocking,
        ThresholdMatcher(args.attribute, args.threshold),
        num_map_tasks=args.map_tasks,
        num_reduce_tasks=args.reduce_tasks,
        backend=_backend(args),
        memory_budget=args.memory_budget,
        batch_kernel=not args.no_batch_kernel,
    )
    partitions = make_partitions(entities, args.map_tasks)
    on_event = _progress_printer(sys.stderr) if args.progress else None
    execution = pipeline.submit_delta(partitions, state, on_event=on_event)
    count = _stream_matches(execution, args.output)
    result = execution.result()
    # The state only advances after the run fully succeeded (a raised
    # result above leaves the directory untouched), and the save itself
    # is write-then-rename with state.json as the commit point.
    advanced = state.advanced(result, partitions, blocking)
    save_state(advanced, directory)
    print(
        f"ingested {len(entities)} new entities: "
        f"{result.total_comparisons():,} delta comparisons, "
        f"{count} new duplicate pairs"
    )
    print(
        f"state {args.state}: {advanced.num_entities} entities, "
        f"{advanced.num_matches} matches over {advanced.num_ingests} "
        f"ingest(s), {advanced.comparisons:,} cumulative comparisons"
    )
    print(f"wrote new matches to {args.output}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve.__main__ import run_server, server_from_args

    return run_server(server_from_args(args))


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve.client import (
        ServeClient,
        ServeConnectionError,
        SubmissionRejected,
    )

    host, _, port_text = args.server.rpartition(":")
    if not host or not port_text.isdigit():
        print(f"error: --server must be HOST:PORT, got {args.server!r}",
              file=sys.stderr)
        return 2
    entities = _load_entities(args, args.input)
    # The pipeline's own backend is irrelevant for remote submission:
    # only the resolved request ships, the server's shared pool runs it
    # (the batch-kernel flag rides along inside the request).
    pipeline = ERPipeline(
        args.strategy,
        PrefixBlocking(args.attribute, args.prefix_length),
        ThresholdMatcher(args.attribute, args.threshold),
        num_map_tasks=args.map_tasks,
        num_reduce_tasks=args.reduce_tasks,
        batch_kernel=not args.no_batch_kernel,
    )
    on_event = _progress_printer(sys.stderr) if args.progress else None
    try:
        with ServeClient(
            host, int(port_text), token=args.token, on_event=on_event
        ) as client:
            execution = client.submit(pipeline, entities)
            count = _stream_matches(execution, args.output)
            result = execution.result()
    except ValueError as exc:  # no token available
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ServeConnectionError, SubmissionRejected) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = WorkloadStats.from_workloads(result.reduce_comparisons())
    print(
        f"{len(entities)} entities, {result.total_comparisons():,} "
        f"comparisons (imbalance {stats.imbalance:.2f}), "
        f"{count} duplicate pairs (served by {args.server})"
    )
    print(f"wrote matches to {args.output}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    r = args.reduce_tasks if args.reduce_tasks is not None else 10 * args.nodes
    if args.from_result is not None:
        # Replan from a persisted run: the saved BDM is all the
        # planners need, so no data is loaded and nothing re-executes.
        from .analysis.experiments import bdm_from_result
        from .engine.persistence import PersistenceError

        try:
            bdm = bdm_from_result(args.from_result)
        except FileNotFoundError:
            print(f"error: no such result file: {args.from_result}",
                  file=sys.stderr)
            return 2
        except (PersistenceError, ValueError) as exc:
            print(f"error: cannot replan from {args.from_result}: {exc}",
                  file=sys.stderr)
            return 2
        m = bdm.num_partitions
        source_note = args.from_result
    else:
        profile = DS1_PROFILE if args.dataset == "ds1" else DS2_PROFILE
        sizes = zipf_block_sizes(
            profile.num_entities, profile.num_blocks, profile.zipf_exponent
        )
        m = args.map_tasks if args.map_tasks is not None else 2 * args.nodes
        bdm = bdm_for_block_sizes(sizes, m)
        source_note = profile.name
    rows = []
    for name in args.strategies:
        run = simulate_run(name, bdm, num_nodes=args.nodes, num_reduce_tasks=r)
        rows.append(
            [
                name,
                round(run.execution_time, 1),
                round(run.reduce_stats.imbalance, 2),
                run.map_output_kv,
            ]
        )
    print(
        format_table(
            ["strategy", "simulated time [s]", "imbalance", "map output KV"],
            rows,
            title=(
                f"{source_note}: n={args.nodes}, m={m}, r={r}, "
                f"{bdm.pairs():,} pairs"
            ),
        )
    )
    return 0


def cmd_recommend(args: argparse.Namespace) -> int:
    from .core.bdm import analytic_bdm
    from .mapreduce.types import make_partitions

    blocking = PrefixBlocking(args.attribute, args.prefix_length)
    if args.input_format == "csv-shards":
        shards = args.shards if args.shards is not None else args.map_tasks
        source = CsvShardSource(args.input, num_shards=shards)
        # One streaming pass yields the shard-level block counts the
        # whole skew profile (and strategy planning) derives from.
        bdm = source.block_statistics(blocking).to_bdm()
    else:
        entities = load_entities_csv(args.input)
        bdm = analytic_bdm(make_partitions(entities, args.map_tasks), blocking)
    stats = bdm_statistics(bdm)
    rows = [[name, round(value, 4)] for name, value in stats.as_dict().items()]
    print(format_table(["statistic", "value"], rows,
                       title=f"Blocking skew profile ({args.input})"))
    recommendation = recommend_strategy(
        bdm, args.reduce_tasks, input_sorted_by_key=args.sorted_input
    )
    print(f"\nrecommended strategy: {recommendation.strategy}")
    for reason in recommendation.reasons:
        print(f"  - {reason}")
    return 0


COMMANDS = {
    "generate": cmd_generate,
    "pack": cmd_pack,
    "dedup": cmd_dedup,
    "link": cmd_link,
    "ingest": cmd_ingest,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "simulate": cmd_simulate,
    "recommend": cmd_recommend,
}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # The lint CLI owns its full flag surface (--json, --baseline,
        # --select, ...); hand everything after "lint" straight to it.
        from .devtools.lint import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
