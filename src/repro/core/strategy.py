"""Common strategy interface and registry.

A :class:`LoadBalancingStrategy` bundles the pieces the workflow needs:
whether Job 1 (BDM) is required, how to build the matching job, and how
to produce the analytic :class:`~repro.core.planning.StrategyPlan`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from ..er.matching import Matcher
from ..mapreduce.job import MapReduceJob
from .basic import BasicMatchJob
from .bdm import BlockDistributionMatrix
from .blocksplit import BlockSplitJob
from .pairrange import PairRangeJob
from .planning import (
    StrategyPlan,
    plan_basic,
    plan_blocksplit,
    plan_dual_blocksplit,
    plan_dual_pairrange,
    plan_pairrange,
)
from .two_source import DualBlockSplitJob, DualPairRangeJob, DualSourceBDM


class LoadBalancingStrategy(ABC):
    """One of the paper's entity redistribution schemes."""

    #: Registry key and display name.
    name: str = "strategy"

    #: Whether Job 2 needs the BDM (and hence Job 1).  The Basic
    #: strategy is a single job; it still *accepts* annotated input so
    #: all strategies can be compared on identical inputs.
    requires_bdm: bool = True

    @abstractmethod
    def build_job(
        self,
        bdm: BlockDistributionMatrix,
        matcher: Matcher,
        num_reduce_tasks: int,
    ) -> MapReduceJob:
        """The matching job (Job 2) for the one-source case."""

    @abstractmethod
    def plan(
        self,
        bdm: BlockDistributionMatrix,
        num_reduce_tasks: int,
        *,
        map_input_records: Sequence[int] | None = None,
    ) -> StrategyPlan:
        """The analytic workload plan for the one-source case."""

    def build_dual_job(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
    ) -> MapReduceJob:
        """The matching job for the two-source case (Appendix I)."""
        raise NotImplementedError(
            f"strategy {self.name!r} has no two-source variant"
        )

    def plan_dual(
        self,
        bdm: DualSourceBDM,
        num_reduce_tasks: int,
        *,
        map_input_records: Sequence[int] | None = None,
    ) -> StrategyPlan:
        raise NotImplementedError(
            f"strategy {self.name!r} has no two-source planner"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class BasicStrategy(LoadBalancingStrategy):
    """Section III's baseline — no skew handling."""

    name = "basic"
    requires_bdm = False

    def build_job(self, bdm, matcher, num_reduce_tasks):
        return BasicMatchJob(matcher)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_basic(bdm, num_reduce_tasks, map_input_records=map_input_records)


class BlockSplitStrategy(LoadBalancingStrategy):
    """Section IV's block-based load balancing."""

    name = "blocksplit"

    def build_job(self, bdm, matcher, num_reduce_tasks):
        return BlockSplitJob(bdm, matcher, num_reduce_tasks)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_blocksplit(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_dual_job(self, bdm, matcher, num_reduce_tasks):
        return DualBlockSplitJob(bdm, matcher, num_reduce_tasks)

    def plan_dual(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_dual_blocksplit(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )


class PairRangeStrategy(LoadBalancingStrategy):
    """Section V's pair-based load balancing."""

    name = "pairrange"

    def build_job(self, bdm, matcher, num_reduce_tasks):
        return PairRangeJob(bdm, matcher, num_reduce_tasks)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_pairrange(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_dual_job(self, bdm, matcher, num_reduce_tasks):
        return DualPairRangeJob(bdm, matcher, num_reduce_tasks)

    def plan_dual(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_dual_pairrange(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )


#: Registry of available strategies by name.
STRATEGIES: dict[str, type[LoadBalancingStrategy]] = {
    cls.name: cls
    for cls in (BasicStrategy, BlockSplitStrategy, PairRangeStrategy)
}


def get_strategy(name: str) -> LoadBalancingStrategy:
    """Instantiate a strategy by registry name."""
    try:
        return STRATEGIES[name]()
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(f"unknown strategy {name!r}; known: {known}") from None
