"""Common strategy interface and registry.

A :class:`LoadBalancingStrategy` bundles the pieces the pipeline needs:
whether Job 1 (BDM) is required, how to build the matching job, and how
to produce the analytic :class:`~repro.core.planning.StrategyPlan`.

Strategies self-register via the :func:`register_strategy` decorator;
:func:`get_strategy` resolves a name, class or ready instance, so
callers can pass configured instances (``ERPipeline(PairRangeStrategy(),
…)``) or plain registry names (``ERPipeline("pairrange", …)``)
interchangeably.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence, TypeVar

from ..er.blocking import BlockingFunction
from ..er.matching import Matcher
from ..mapreduce.job import MapReduceJob
from .basic import BasicMatchJob
from .bdm import BlockDistributionMatrix
from .blocksplit import BlockSplitJob
from .delta import DeltaBasicJob, DeltaBDM, DeltaBlockSplitJob, DeltaPairRangeJob
from .pairrange import PairRangeJob
from .planning import (
    StrategyPlan,
    plan_basic,
    plan_blocksplit,
    plan_delta_basic,
    plan_delta_blocksplit,
    plan_delta_pairrange,
    plan_dual_blocksplit,
    plan_dual_pairrange,
    plan_pairrange,
)
from .two_source import DualBlockSplitJob, DualPairRangeJob, DualSourceBDM


class LoadBalancingStrategy(ABC):
    """One of the paper's entity redistribution schemes."""

    #: Registry key and display name.
    name: str = "strategy"

    #: Whether Job 2 needs the BDM (and hence Job 1).  The Basic
    #: strategy is a single job; it still *accepts* annotated input so
    #: all strategies can be compared on identical inputs.
    requires_bdm: bool = True

    @abstractmethod
    def build_job(
        self,
        bdm: BlockDistributionMatrix | None,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        blocking: BlockingFunction | None = None,
        batch_kernel: bool = False,
    ) -> MapReduceJob:
        """The matching job (Job 2) for the one-source case.

        ``blocking`` is the workflow's blocking function; strategies
        that consume raw (un-annotated) input — currently only Basic —
        use it to derive keys in their map phase, the rest ignore it.
        ``batch_kernel`` turns on the batched reduce loops (whole
        groups scored through ``Matcher.match_batch`` — see
        :mod:`repro.er.batch_kernel`); results are byte-identical
        either way.
        """

    @abstractmethod
    def plan(
        self,
        bdm: BlockDistributionMatrix,
        num_reduce_tasks: int,
        *,
        map_input_records: Sequence[int] | None = None,
    ) -> StrategyPlan:
        """The analytic workload plan for the one-source case."""

    def build_dual_job(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ) -> MapReduceJob:
        """The matching job for the two-source case (Appendix I)."""
        raise NotImplementedError(
            f"strategy {self.name!r} has no two-source variant"
        )

    def plan_dual(
        self,
        bdm: DualSourceBDM,
        num_reduce_tasks: int,
        *,
        map_input_records: Sequence[int] | None = None,
    ) -> StrategyPlan:
        raise NotImplementedError(
            f"strategy {self.name!r} has no two-source planner"
        )

    def build_delta_job(
        self,
        bdm: DeltaBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ) -> MapReduceJob:
        """The matching job for the incremental (delta) case: new
        records against a persisted corpus, comparing only new-vs-old
        and new-vs-new pairs per block."""
        raise NotImplementedError(
            f"strategy {self.name!r} has no incremental (delta) variant"
        )

    def plan_delta(
        self,
        bdm: DeltaBDM,
        num_reduce_tasks: int,
        *,
        map_input_records: Sequence[int] | None = None,
    ) -> StrategyPlan:
        raise NotImplementedError(
            f"strategy {self.name!r} has no incremental (delta) planner"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Registry of available strategies by name.
STRATEGIES: dict[str, type[LoadBalancingStrategy]] = {}

_S = TypeVar("_S", bound=type[LoadBalancingStrategy])


def register_strategy(cls: _S) -> _S:
    """Class decorator adding a strategy to the registry under ``cls.name``.

    Third-party strategies register the same way the built-ins do::

        @register_strategy
        class MyStrategy(LoadBalancingStrategy):
            name = "mine"
            ...
    """
    if not cls.name or cls.name == LoadBalancingStrategy.name:
        raise ValueError(f"{cls.__name__} must define a distinct `name`")
    existing = STRATEGIES.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"strategy name {cls.name!r} already registered by "
            f"{existing.__name__}"
        )
    STRATEGIES[cls.name] = cls
    return cls


@register_strategy
class BasicStrategy(LoadBalancingStrategy):
    """Section III's baseline — no skew handling."""

    name = "basic"
    requires_bdm = False

    def build_job(
        self, bdm, matcher, num_reduce_tasks, *, blocking=None, batch_kernel=False
    ):
        return BasicMatchJob(matcher, blocking=blocking, batch_kernel=batch_kernel)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_basic(bdm, num_reduce_tasks, map_input_records=map_input_records)

    def build_delta_job(self, bdm, matcher, num_reduce_tasks, *, batch_kernel=False):
        # The delta path always has the merged BDM in hand (it needs
        # the delta's block counts anyway), so even Basic consumes
        # annotated input here.
        return DeltaBasicJob(bdm, matcher, batch_kernel=batch_kernel)

    def plan_delta(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_delta_basic(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )


@register_strategy
class BlockSplitStrategy(LoadBalancingStrategy):
    """Section IV's block-based load balancing."""

    name = "blocksplit"

    def build_job(
        self, bdm, matcher, num_reduce_tasks, *, blocking=None, batch_kernel=False
    ):
        return BlockSplitJob(bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_blocksplit(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_dual_job(self, bdm, matcher, num_reduce_tasks, *, batch_kernel=False):
        return DualBlockSplitJob(
            bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel
        )

    def plan_dual(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_dual_blocksplit(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_delta_job(self, bdm, matcher, num_reduce_tasks, *, batch_kernel=False):
        return DeltaBlockSplitJob(
            bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel
        )

    def plan_delta(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_delta_blocksplit(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )


@register_strategy
class PairRangeStrategy(LoadBalancingStrategy):
    """Section V's pair-based load balancing."""

    name = "pairrange"

    def build_job(
        self, bdm, matcher, num_reduce_tasks, *, blocking=None, batch_kernel=False
    ):
        return PairRangeJob(bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel)

    def plan(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_pairrange(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_dual_job(self, bdm, matcher, num_reduce_tasks, *, batch_kernel=False):
        return DualPairRangeJob(
            bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel
        )

    def plan_dual(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_dual_pairrange(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )

    def build_delta_job(self, bdm, matcher, num_reduce_tasks, *, batch_kernel=False):
        return DeltaPairRangeJob(
            bdm, matcher, num_reduce_tasks, batch_kernel=batch_kernel
        )

    def plan_delta(self, bdm, num_reduce_tasks, *, map_input_records=None):
        return plan_delta_pairrange(
            bdm, num_reduce_tasks, map_input_records=map_input_records
        )


def get_strategy(
    strategy: LoadBalancingStrategy | type[LoadBalancingStrategy] | str,
    **options: Any,
) -> LoadBalancingStrategy:
    """Resolve a strategy name, class or instance to a ready instance.

    ``options`` are forwarded to the strategy constructor when a name
    or class is given; passing options alongside an already-built
    instance is an error.
    """
    if isinstance(strategy, LoadBalancingStrategy):
        if options:
            raise TypeError(
                "cannot apply constructor options to an existing "
                f"strategy instance {strategy!r}"
            )
        return strategy
    if isinstance(strategy, type) and issubclass(strategy, LoadBalancingStrategy):
        return strategy(**options)
    try:
        cls = STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(f"unknown strategy {strategy!r}; known: {known}") from None
    return cls(**options)
