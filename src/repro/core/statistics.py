"""BDM-level skew diagnostics and strategy recommendation.

Before paying for a 100-node cluster, a user wants to know: *how skewed
is my blocking, and do I need load balancing at all?*  This module
answers that from the BDM alone — the same information Job 1 computes —
with the skew statistics the paper's analysis revolves around and a
simple decision rule derived from its findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from .bdm import BlockDistributionMatrix, analytic_bdm_from_counts
from .enumeration import block_pair_count
from .planning import plan_basic


@dataclass(frozen=True, slots=True)
class BdmStatistics:
    """Skew profile of a block distribution."""

    num_entities: int
    num_blocks: int
    total_pairs: int
    largest_block_size: int
    largest_block_entity_share: float
    largest_block_pair_share: float
    top10_pair_share: float
    gini_coefficient: float
    mean_block_size: float
    median_block_size: float

    def as_dict(self) -> dict[str, float]:
        return {
            "entities": float(self.num_entities),
            "blocks": float(self.num_blocks),
            "pairs": float(self.total_pairs),
            "largest_block_size": float(self.largest_block_size),
            "largest_block_entity_share": self.largest_block_entity_share,
            "largest_block_pair_share": self.largest_block_pair_share,
            "top10_pair_share": self.top10_pair_share,
            "gini_coefficient": self.gini_coefficient,
            "mean_block_size": self.mean_block_size,
            "median_block_size": self.median_block_size,
        }


def bdm_statistics(bdm: BlockDistributionMatrix) -> BdmStatistics:
    """Compute the skew profile of a BDM."""
    sizes = sorted(bdm.block_sizes())
    n = len(sizes)
    total_entities = sum(sizes)
    pairs = [block_pair_count(size) for size in sizes]
    total_pairs = sum(pairs)
    largest = sizes[-1]
    pair_shares = sorted(pairs, reverse=True)
    top10 = sum(pair_shares[:10])
    median = (
        sizes[n // 2]
        if n % 2 == 1
        else (sizes[n // 2 - 1] + sizes[n // 2]) / 2
    )
    return BdmStatistics(
        num_entities=total_entities,
        num_blocks=n,
        total_pairs=total_pairs,
        largest_block_size=largest,
        largest_block_entity_share=largest / total_entities if total_entities else 0.0,
        largest_block_pair_share=(
            block_pair_count(largest) / total_pairs if total_pairs else 0.0
        ),
        top10_pair_share=top10 / total_pairs if total_pairs else 0.0,
        gini_coefficient=_gini(sizes),
        mean_block_size=total_entities / n if n else 0.0,
        median_block_size=float(median) if n else 0.0,
    )


def _gini(sorted_sizes: list[int]) -> float:
    """Gini coefficient of the block-size distribution (0 = uniform)."""
    n = len(sorted_sizes)
    total = sum(sorted_sizes)
    if n == 0 or total == 0:
        return 0.0
    # Standard formula for ascending-sorted values.
    weighted = sum((i + 1) * size for i, size in enumerate(sorted_sizes))
    return (2 * weighted) / (n * total) - (n + 1) / n


def bdm_statistics_from_counts(
    counts: Mapping[tuple[object, int], int], num_shards: int
) -> BdmStatistics:
    """Skew profile straight from shard-level block counts.

    This is how a streaming input (:class:`~repro.io.RecordSource`)
    feeds the diagnostics without materializing records: its
    ``block_statistics`` pass yields exactly the ``(block key, shard)``
    counts Job 1 would compute, and every statistic here (as well as
    BlockSplit/PairRange pair enumeration) derives from them.
    """
    return bdm_statistics(analytic_bdm_from_counts(counts, num_shards))


@dataclass(frozen=True, slots=True)
class StrategyRecommendation:
    """Outcome of the decision rule, with its reasoning."""

    strategy: str
    expected_basic_imbalance: float
    largest_block_pair_share: float
    reasons: tuple[str, ...]


def recommend_strategy(
    bdm: BlockDistributionMatrix,
    num_reduce_tasks: int,
    *,
    input_sorted_by_key: bool = False,
    imbalance_tolerance: float = 1.5,
) -> StrategyRecommendation:
    """Pick a strategy from the paper's findings.

    * near-uniform blocks → **basic** (skip the BDM job, Figure 9's
      s=0 observation);
    * skewed + input order independent of the key → **blocksplit**
      ("conceptionally simpler ... already excellent results", §VIII);
    * skewed + key-sorted input, or extreme skew → **pairrange**
      (partitioning-independent, perfectly uniform ranges).
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    stats = bdm_statistics(bdm)
    plan = plan_basic(bdm, num_reduce_tasks)
    loads = plan.reduce_comparisons
    mean = sum(loads) / len(loads) if loads else 0.0
    imbalance = max(loads) / mean if mean > 0 else 1.0

    reasons: list[str] = []
    if imbalance <= imbalance_tolerance:
        reasons.append(
            f"hash partitioning is already balanced "
            f"(max/mean {imbalance:.2f} <= {imbalance_tolerance}); "
            "the BDM job would only add overhead"
        )
        strategy = "basic"
    elif input_sorted_by_key:
        reasons.append(
            "input is sorted by the blocking key: BlockSplit's "
            "per-partition sub-blocks would degenerate (Figure 11)"
        )
        strategy = "pairrange"
    elif stats.largest_block_pair_share > 0.9:
        reasons.append(
            "a single block dominates the pair count; PairRange's "
            "uniform ranges are the safest choice"
        )
        strategy = "pairrange"
    else:
        reasons.append(
            f"skewed blocks (Basic max/mean {imbalance:.1f}) with "
            "key-independent input order: BlockSplit balances well at "
            "lower shuffle volume"
        )
        strategy = "blocksplit"
    return StrategyRecommendation(
        strategy=strategy,
        expected_basic_imbalance=imbalance,
        largest_block_pair_share=stats.largest_block_pair_share,
        reasons=tuple(reasons),
    )
