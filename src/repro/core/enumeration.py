"""Pair enumeration (Section V) and interval algebra for analytic planning.

One-source scheme
-----------------
Within a block of ``N`` entities (indexes ``0..N-1``) every unordered
pair ``(x, y)`` with ``x < y`` receives the *cell index*

    ``c(x, y, N) = x·(2N − x − 3)/2 + y − 1``

which enumerates the strict upper triangle **column by column**: column
``x`` holds the contiguous cell indexes of pairs ``(x, x+1) … (x, N−1)``.
Adding the block offset ``o(i) = Σ_{k<i} |Φk|(|Φk|−1)/2`` yields the
global pair index.  Reduce task ``k`` owns the contiguous *pair range*
``[k·⌈P/r⌉, (k+1)·⌈P/r⌉)`` (Algorithm 2; the paper's closed formula (2)
disagrees with its own running example, see DESIGN.md).

Two-source scheme (Appendix I-B)
--------------------------------
For a block with ``NR`` R-entities and ``NS`` S-entities every cell of
the ``NR × NS`` matrix is enumerated: ``c(x, y, NS) = x·NS + y`` — the
pairs of R-entity ``x`` are contiguous, those of S-entity ``y`` form a
stride-``NS`` progression.  The paper's printed offset contains a
spurious "−1" (see DESIGN.md erratum list); we use the consistent
``o(i) = Σ_{k<i} |Φk,R|·|Φk,S|``.

This module also provides *interval algebra* helpers that answer "which
entities participate in pairs ``[lo, hi]`` of this block?" in O(1) —
the key to planning DS2-scale workloads without materialising ~10⁹
pairs.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Sequence

# ---------------------------------------------------------------------------
# Cell-index arithmetic (one source)
# ---------------------------------------------------------------------------


def cell_index(x: int, y: int, n: int) -> int:
    """``c(x, y, N)`` — position of pair (x, y), x < y, in the column-wise
    enumeration of an N×N upper triangle."""
    _validate_pair(x, y, n)
    # x·(2N−x−3) is always even: x and (2N−x−3) have opposite parity.
    return (x * (2 * n - x - 3)) // 2 + y - 1


def column_start(x: int, n: int) -> int:
    """Cell index of the first pair of column ``x``, i.e. ``c(x, x+1, N)``."""
    if not 0 <= x < n - 1:
        raise ValueError(f"column {x} out of range for block size {n}")
    return (x * (2 * n - x - 3)) // 2 + x

def cell_of(p: int, n: int) -> tuple[int, int]:
    """Inverse of :func:`cell_index`: the pair ``(x, y)`` at cell ``p``.

    Used by tests (bijectivity) and by the analytic planner to locate
    range boundaries inside a block.
    """
    total = block_pair_count(n)
    if not 0 <= p < total:
        raise ValueError(f"cell index {p} outside [0, {total})")
    # Column x spans [column_start(x), column_start(x) + (N-1-x) - 1].
    # Solve by binary search over the monotone column_start.
    lo, hi = 0, n - 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if column_start(mid, n) <= p:
            lo = mid
        else:
            hi = mid - 1
    x = lo
    y = x + 1 + (p - column_start(x, n))
    return x, y


def block_pair_count(n: int) -> int:
    """Number of pairs in a block of ``n`` entities: n·(n−1)/2."""
    if n < 0:
        raise ValueError(f"block size must be non-negative, got {n}")
    return n * (n - 1) // 2


def _validate_pair(x: int, y: int, n: int) -> None:
    if not 0 <= x < y < n:
        raise ValueError(f"invalid pair ({x}, {y}) for block size {n}")


# ---------------------------------------------------------------------------
# Entity-interval algebra (one source)
# ---------------------------------------------------------------------------


def merge_intervals(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Union of inclusive integer intervals, merged and sorted.

    Adjacent intervals (``hi + 1 == lo``) are coalesced; empty inputs
    (``hi < lo``) are ignored.
    """
    cleaned = sorted((lo, hi) for lo, hi in intervals if hi >= lo)
    merged: list[tuple[int, int]] = []
    for lo, hi in cleaned:
        if merged and lo <= merged[-1][1] + 1:
            last_lo, last_hi = merged[-1]
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def interval_total(intervals: Sequence[tuple[int, int]]) -> int:
    """Total number of integers covered by merged intervals."""
    return sum(hi - lo + 1 for lo, hi in intervals)


def entities_in_cell_interval(n: int, lo: int, hi: int) -> list[tuple[int, int]]:
    """Entity indexes participating in pairs with cell indexes in [lo, hi].

    Returns merged inclusive intervals of entity indexes.  An entity
    participates if it appears as the column (``x``) or the row (``y``)
    of at least one cell in the interval.  O(log n).
    """
    if hi < lo:
        return []
    cl, rl = cell_of(lo, n)
    ch, rh = cell_of(hi, n)
    intervals: list[tuple[int, int]] = []
    if cl == ch:
        # One (partial) column: entity cl plus rows rl..rh.
        intervals.append((cl, cl))
        intervals.append((rl, rh))
    elif ch == cl + 1:
        # Two partial columns, no full middle column.
        intervals.append((cl, cl))          # first column head
        intervals.append((rl, n - 1))       # first column tail rows
        intervals.append((ch, rh))          # second column head + rows
    else:
        # At least one full middle column (cl+1): it alone contributes
        # entities cl+1..n-1, which subsumes every other contribution
        # except the first column head.
        intervals.append((cl, n - 1))
    return merge_intervals(intervals)


def entity_count_in_cell_interval(n: int, lo: int, hi: int) -> int:
    return interval_total(entities_in_cell_interval(n, lo, hi))


def sorted_run_bounds(
    sorted_values: Sequence[int], lo: int, hi: int
) -> tuple[int, int]:
    """Positions ``[start, stop)`` of values within ``[lo, hi]``.

    ``sorted_values`` must be ascending; the qualifying values form one
    contiguous run located by two binary searches.  This turns the
    inclusive entity-index intervals of :meth:`PairEnumeration.row_span`
    / :meth:`DualPairEnumeration.r_span` into *buffer index ranges* —
    the form the batched reduce loops record in a
    :class:`~repro.er.batch_kernel.SpanPairs` spec instead of
    materialising the pairs.
    """
    start = bisect_left(sorted_values, lo)
    stop = bisect_right(sorted_values, hi, start)
    return start, stop


# ---------------------------------------------------------------------------
# Entity-interval algebra (two sources)
# ---------------------------------------------------------------------------


def dual_cell_index(x: int, y: int, n_s: int) -> int:
    """Two-source cell index ``c(x, y, |Φi,S|) = x·|Φi,S| + y``."""
    if n_s <= 0:
        raise ValueError(f"S-side block size must be positive, got {n_s}")
    if x < 0 or not 0 <= y < n_s:
        raise ValueError(f"invalid dual pair ({x}, {y}) for NS={n_s}")
    return x * n_s + y


def dual_cell_of(p: int, n_s: int) -> tuple[int, int]:
    """Inverse of :func:`dual_cell_index`."""
    if p < 0:
        raise ValueError(f"cell index must be non-negative, got {p}")
    return divmod(p, n_s)


def dual_entities_in_cell_interval(
    n_r: int, n_s: int, lo: int, hi: int
) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
    """Entities of R and S participating in dual cells [lo, hi].

    Returns ``(r_intervals, s_intervals)`` of entity indexes.  O(1).
    """
    if hi < lo:
        return [], []
    total = n_r * n_s
    if not (0 <= lo and hi < total):
        raise ValueError(f"cell interval [{lo}, {hi}] outside [0, {total})")
    xl, yl = divmod(lo, n_s)
    xh, yh = divmod(hi, n_s)
    r_intervals = [(xl, xh)]
    if xl == xh:
        s_intervals = [(yl, yh)]
    elif xh == xl + 1:
        s_intervals = merge_intervals([(yl, n_s - 1), (0, yh)])
    else:
        s_intervals = [(0, n_s - 1)]
    return merge_intervals(r_intervals), s_intervals


# ---------------------------------------------------------------------------
# Global enumerations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PairRangeSpec:
    """The division of ``total_pairs`` into ``num_ranges`` ranges.

    Range ``k`` covers global pair indexes
    ``[k·pairs_per_range, min((k+1)·pairs_per_range, P))`` with
    ``pairs_per_range = ⌈P/r⌉`` (Algorithm 2).  All but the last
    non-empty range hold exactly ``pairs_per_range`` pairs.
    """

    total_pairs: int
    num_ranges: int

    def __post_init__(self) -> None:
        if self.total_pairs < 0:
            raise ValueError(f"total_pairs must be >= 0, got {self.total_pairs}")
        if self.num_ranges <= 0:
            raise ValueError(f"num_ranges must be positive, got {self.num_ranges}")

    @property
    def pairs_per_range(self) -> int:
        """``⌈P/r⌉`` — the paper's ``compsPerReduceTask``."""
        if self.total_pairs == 0:
            return 1  # avoid div-by-zero; every range is empty anyway
        return math.ceil(self.total_pairs / self.num_ranges)

    def range_of(self, pair_index: int) -> int:
        """The range (= reduce task) owning a global pair index."""
        if not 0 <= pair_index < self.total_pairs:
            raise ValueError(
                f"pair index {pair_index} outside [0, {self.total_pairs})"
            )
        return pair_index // self.pairs_per_range

    def bounds(self, range_index: int) -> tuple[int, int]:
        """Global pair interval ``[lo, hi]`` (inclusive) of a range;
        returns ``(0, -1)`` for empty trailing ranges."""
        if not 0 <= range_index < self.num_ranges:
            raise ValueError(
                f"range index {range_index} outside [0, {self.num_ranges})"
            )
        lo = range_index * self.pairs_per_range
        hi = min(lo + self.pairs_per_range, self.total_pairs) - 1
        if lo > hi:
            return (0, -1)
        return (lo, hi)

    def size_of(self, range_index: int) -> int:
        lo, hi = self.bounds(range_index)
        return hi - lo + 1

    def sizes(self) -> list[int]:
        return [self.size_of(k) for k in range(self.num_ranges)]


class PairEnumeration:
    """Global one-source pair enumeration over a sequence of block sizes.

    Wraps the per-block cell arithmetic with the block offsets ``o(i)``
    and provides both directions (pair → index, index → pair) plus the
    per-entity relevant-range computation of Algorithm 2.
    """

    def __init__(self, block_sizes: Sequence[int]):
        if any(n < 0 for n in block_sizes):
            raise ValueError("block sizes must be non-negative")
        self.block_sizes = list(block_sizes)
        self._offsets = [0]
        for n in self.block_sizes:
            self._offsets.append(self._offsets[-1] + block_pair_count(n))

    @property
    def total_pairs(self) -> int:
        return self._offsets[-1]

    def offset(self, block: int) -> int:
        """``o(i)`` — pairs in all preceding blocks."""
        if not 0 <= block < len(self.block_sizes):
            raise ValueError(f"block {block} out of range")
        return self._offsets[block]

    def block_bounds(self, block: int) -> tuple[int, int]:
        """Inclusive global pair interval of a block (``(0, -1)`` if empty)."""
        lo = self._offsets[block]
        hi = self._offsets[block + 1] - 1
        return (lo, hi) if hi >= lo else (0, -1)

    def pair_index(self, block: int, x: int, y: int) -> int:
        """``π_i(x, y)`` — global index of pair (x, y) of ``block``."""
        return self._offsets[block] + cell_index(x, y, self.block_sizes[block])

    def pair_at(self, pair_index: int) -> tuple[int, int, int]:
        """Inverse: ``(block, x, y)`` of a global pair index."""
        if not 0 <= pair_index < self.total_pairs:
            raise ValueError(
                f"pair index {pair_index} outside [0, {self.total_pairs})"
            )
        block = bisect_right(self._offsets, pair_index) - 1
        # Skip empty blocks that share the same offset.
        while self._offsets[block + 1] == self._offsets[block]:
            block += 1
        x, y = cell_of(pair_index - self._offsets[block], self.block_sizes[block])
        return block, x, y

    def row_span(self, block: int, y: int, lo: int, hi: int) -> tuple[int, int]:
        """Columns ``x < y`` whose pair ``(x, y)`` has a global index in
        ``[lo, hi]``, as an inclusive interval (``(0, -1)`` when empty).

        The cell index ``c(x, y, N)`` is strictly increasing in ``x``
        for fixed ``y``, so the qualifying columns form one contiguous
        run, found here by binary search in O(log y).  This is the
        reduce-side inverse of the PairRange routing: instead of
        computing a pair index and a range per buffered pair, the
        reduce function asks once per incoming entity which buffered
        indexes are in range and iterates exactly that slice.
        """
        n = self.block_sizes[block]
        if not 0 <= y < n:
            raise ValueError(f"entity index {y} outside block of size {n}")
        if y == 0 or hi < lo:
            return (0, -1)
        offset = self._offsets[block]
        rel_lo = lo - offset
        rel_hi = hi - offset
        base = y - 1  # c(x, y, n) = x·(2n − x − 3)/2 + y − 1
        first = base  # c(0, y, n)
        last = ((y - 1) * (2 * n - y - 2)) // 2 + base  # c(y−1, y, n)
        if last < rel_lo or first > rel_hi:
            return (0, -1)
        # Smallest x with c(x) >= rel_lo.
        a, b = 0, y - 1
        while a < b:
            mid = (a + b) // 2
            if (mid * (2 * n - mid - 3)) // 2 + base >= rel_lo:
                b = mid
            else:
                a = mid + 1
        x_lo = a
        if (x_lo * (2 * n - x_lo - 3)) // 2 + base > rel_hi:
            return (0, -1)
        # Largest x with c(x) <= rel_hi.
        a, b = x_lo, y - 1
        while a < b:
            mid = (a + b + 1) // 2
            if (mid * (2 * n - mid - 3)) // 2 + base <= rel_hi:
                a = mid
            else:
                b = mid - 1
        return (x_lo, a)

    def relevant_ranges(
        self, block: int, entity_index: int, spec: PairRangeSpec
    ) -> list[int]:
        """All ranges containing at least one pair of this entity.

        Mirrors Algorithm 2's map-side computation: the *row* pairs
        ``(k, x)`` for ``k < x`` are probed individually (their cell
        indexes are scattered), the *column* pairs ``(x, x+1)…(x, N−1)``
        are contiguous so only their boundary ranges matter.
        """
        n = self.block_sizes[block]
        if not 0 <= entity_index < n:
            raise ValueError(f"entity index {entity_index} outside block of size {n}")
        if n < 2:
            return []
        o = self._offsets[block]
        x = entity_index
        ppr = spec.pairs_per_range
        # Row pairs (k, x), k < x: their cells are scattered across the
        # earlier columns but strictly non-decreasing in k, with the
        # closed increment c(k+1, x) − c(k, x) = n − k − 2 — so the walk
        # is one add per pair and the range ids come out pre-sorted.
        ranges: list[int] = []
        last = -1
        cell = o + x - 1  # c(0, x, n) = x − 1
        for k in range(x):
            rid = cell // ppr
            if rid != last:
                ranges.append(rid)
                last = rid
            cell += n - k - 2
        # Column pairs (x, x+1) … (x, n−1) are one contiguous cell run,
        # entirely after every row cell (they live in column x, the row
        # cells in columns k < x) — only the boundary ranges matter.
        if x < n - 1:
            start = (x * (2 * n - x - 3)) // 2  # column_start(x, n) − x
            first = (o + start + x) // ppr
            col_last = (o + start + n - 2) // ppr  # c(x, n−1, n)
            ranges.extend(range(first if first != last else first + 1, col_last + 1))
        return ranges


class DualPairEnumeration:
    """Two-source pair enumeration over per-block ``(NR, NS)`` sizes."""

    def __init__(self, block_sizes: Sequence[tuple[int, int]]):
        self.block_sizes = [(int(r), int(s)) for r, s in block_sizes]
        if any(r < 0 or s < 0 for r, s in self.block_sizes):
            raise ValueError("block sizes must be non-negative")
        self._offsets = [0]
        for n_r, n_s in self.block_sizes:
            self._offsets.append(self._offsets[-1] + n_r * n_s)

    @property
    def total_pairs(self) -> int:
        return self._offsets[-1]

    def offset(self, block: int) -> int:
        if not 0 <= block < len(self.block_sizes):
            raise ValueError(f"block {block} out of range")
        return self._offsets[block]

    def block_bounds(self, block: int) -> tuple[int, int]:
        lo = self._offsets[block]
        hi = self._offsets[block + 1] - 1
        return (lo, hi) if hi >= lo else (0, -1)

    def pair_index(self, block: int, x: int, y: int) -> int:
        n_r, n_s = self.block_sizes[block]
        if not 0 <= x < n_r:
            raise ValueError(f"R index {x} outside block with NR={n_r}")
        return self._offsets[block] + dual_cell_index(x, y, n_s)

    def pair_at(self, pair_index: int) -> tuple[int, int, int]:
        if not 0 <= pair_index < self.total_pairs:
            raise ValueError(
                f"pair index {pair_index} outside [0, {self.total_pairs})"
            )
        block = bisect_right(self._offsets, pair_index) - 1
        while self._offsets[block + 1] == self._offsets[block]:
            block += 1
        x, y = dual_cell_of(
            pair_index - self._offsets[block], self.block_sizes[block][1]
        )
        return block, x, y

    def r_span(self, block: int, y: int, lo: int, hi: int) -> tuple[int, int]:
        """R indexes ``x`` whose pair ``(x, y)`` has a global index in
        ``[lo, hi]``, as an inclusive interval (``(0, -1)`` when empty).

        Dual cell indexes for a fixed S index ``y`` form the arithmetic
        progression ``o + x·NS + y``, so the interval bounds are a pair
        of integer divisions — O(1), no search needed.
        """
        n_r, n_s = self.block_sizes[block]
        if not 0 <= y < n_s:
            raise ValueError(f"S index {y} outside block with NS={n_s}")
        if hi < lo or n_r == 0:
            return (0, -1)
        offset = self._offsets[block] + y
        x_lo = -((offset - lo) // n_s)  # ceil((lo − offset) / NS)
        x_hi = (hi - offset) // n_s
        if x_lo < 0:
            x_lo = 0
        if x_hi > n_r - 1:
            x_hi = n_r - 1
        return (x_lo, x_hi) if x_lo <= x_hi else (0, -1)

    def relevant_ranges_r(
        self, block: int, x: int, spec: PairRangeSpec
    ) -> list[int]:
        """Ranges of R-entity ``x``: its pairs are one contiguous run."""
        n_r, n_s = self.block_sizes[block]
        if not 0 <= x < n_r:
            raise ValueError(f"R index {x} outside block with NR={n_r}")
        if n_s == 0:
            return []
        o = self._offsets[block]
        first = spec.range_of(o + dual_cell_index(x, 0, n_s))
        last = spec.range_of(o + dual_cell_index(x, n_s - 1, n_s))
        return list(range(first, last + 1))

    def relevant_ranges_s(
        self, block: int, y: int, spec: PairRangeSpec
    ) -> list[int]:
        """Ranges of S-entity ``y``: a stride-``NS`` progression.

        The progression is strictly increasing, so the range ids are
        produced pre-sorted by one add + one div per cell (no set, no
        per-cell function calls).
        """
        n_r, n_s = self.block_sizes[block]
        if not 0 <= y < n_s:
            raise ValueError(f"S index {y} outside block with NS={n_s}")
        if n_r == 0:
            return []
        ppr = spec.pairs_per_range
        ranges: list[int] = []
        last = -1
        cell = self._offsets[block] + y  # c(0, y) = y
        for _ in range(n_r):
            rid = cell // ppr
            if rid != last:
                ranges.append(rid)
                last = rid
            cell += n_s
        return ranges
