"""Incremental (delta) matching: new records against a persisted corpus.

A full run compares every pair of every block.  When a corpus has
already been matched and a *batch of new records* arrives, the only
pairs that can produce new matches are **new-vs-old** and **new-vs-new**
inside each block — the old-vs-old pairs were all evaluated by the run
that produced the persisted state.  This module carries that idea
through the paper's whole load-balancing machinery:

* :class:`DeltaBDM` wraps the *merged* block distribution matrix (the
  persisted BDM's partitions followed by the delta's Job-1 counts) and
  exposes the delta quantities: per block with ``o`` old and ``n``
  total entities the remaining work is ``T(n) − T(o)`` pairs, with
  ``T(k) = k·(k−1)/2``.
* :class:`DeltaPairEnumeration` enumerates exactly those pairs
  **row-major over the new entities**: pair ``(x, y)`` with ``y`` new
  gets the block-local cell index ``c(x, y) = T(y) − T(o) + x``.  A new
  entity's own row is one contiguous cell run; its appearances in later
  rows (and every old entity's appearances) form a strictly increasing
  walk — so the map side emits pre-sorted range ids and the reduce side
  has an O(1) closed-form partner span, mirroring
  :class:`~repro.core.enumeration.PairEnumeration` /
  :class:`~repro.core.enumeration.DualPairEnumeration`.
* :func:`generate_delta_match_tasks` is BlockSplit's match-task
  generation over the delta matrix: sub-block self-joins only for *new*
  partitions and cross products that skip old×old — the incremental
  analogue of the two-source generator skipping same-source pairs.
* :class:`DeltaBasicJob` / :class:`DeltaBlockSplitJob` /
  :class:`DeltaPairRangeJob` are the matching jobs, consuming the
  persisted annotated partitions (indices ``0 .. m_old−1``) followed by
  the delta's Job-1-annotated partitions — old entities are buffered,
  never compared against each other.

Old partitions always precede delta partitions, so the stable shuffle
delivers every block's old entities before its new ones — the same
partition-order guarantee BlockSplit's cross-product reduce already
relies on.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence

from ..er.batch_kernel import CrossPairs, SpanPairs, TrianglePairs
from ..er.blocking import BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext, stable_hash
from ..mapreduce.types import KeyCodec, PackedProjection, packed_keys_enabled
from .bdm import BlockDistributionMatrix
from .enumeration import (
    PairRangeSpec,
    block_pair_count,
    merge_intervals,
    sorted_run_bounds,
)
from .keys import BlockSplitKey, PairRangeKey
from .match_tasks import MatchTask, leading_run_split, run_batched_group


class DeltaBDM:
    """The merged BDM of old corpus + delta, with the old/new boundary.

    Wraps a plain :class:`~repro.core.bdm.BlockDistributionMatrix` whose
    first ``num_old_partitions`` columns are the persisted corpus
    partitions and whose remaining columns are the delta's partitions —
    the incremental analogue of
    :class:`~repro.core.two_source.DualSourceBDM`'s partition → source
    map, with "old" and "new" playing the roles of R and S (except that
    new-vs-new pairs *are* compared).
    """

    def __init__(self, bdm: BlockDistributionMatrix, num_old_partitions: int):
        if num_old_partitions < 0:
            raise ValueError(
                f"num_old_partitions must be >= 0, got {num_old_partitions}"
            )
        if bdm.num_blocks > 0 and num_old_partitions > bdm.num_partitions:
            raise ValueError(
                f"{num_old_partitions} old partitions but the merged matrix "
                f"has only {bdm.num_partitions}"
            )
        self._bdm = bdm
        self.num_old_partitions = num_old_partitions

    @property
    def matrix(self) -> BlockDistributionMatrix:
        """The underlying merged plain matrix (what results persist)."""
        return self._bdm

    # -- delegation --------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self._bdm.num_blocks

    @property
    def num_partitions(self) -> int:
        return self._bdm.num_partitions

    @property
    def block_keys(self) -> list[BlockKey]:
        return self._bdm.block_keys

    def block_index(self, block_key: BlockKey) -> int:
        return self._bdm.block_index(block_key)

    def key_of(self, block: int) -> BlockKey:
        return self._bdm.key_of(block)

    def size(self, block: int, partition: int | None = None) -> int:
        return self._bdm.size(block, partition)

    def partition_sizes(self) -> list[int]:
        return self._bdm.partition_sizes()

    def entity_index_offset(self, block: int, partition: int) -> int:
        return self._bdm.entity_index_offset(block, partition)

    def occupied_partitions(self, block: int) -> list[int]:
        return self._bdm.occupied_partitions(block)

    # -- delta quantities --------------------------------------------------

    def is_new_partition(self, partition: int) -> bool:
        return partition >= self.num_old_partitions

    def old_size(self, block: int) -> int:
        """Entities of ``block`` already in the persisted corpus."""
        return sum(
            self._bdm.size(block, p) for p in range(self.num_old_partitions)
        )

    def new_size(self, block: int) -> int:
        return self._bdm.size(block) - self.old_size(block)

    def block_pairs(self, block: int) -> int:
        """Remaining pairs of ``block``: ``T(n) − T(o)``."""
        return block_pair_count(self._bdm.size(block)) - block_pair_count(
            self.old_size(block)
        )

    def pairs(self) -> int:
        return sum(self.block_pairs(k) for k in range(self.num_blocks))

    def delta_block_sizes(self) -> list[tuple[int, int]]:
        """Per block: ``(old entities, total entities)``."""
        return [
            (self.old_size(k), self._bdm.size(k)) for k in range(self.num_blocks)
        ]

    def __repr__(self) -> str:
        return (
            f"DeltaBDM(blocks={self.num_blocks}, "
            f"partitions={self.num_partitions}, "
            f"old_partitions={self.num_old_partitions}, pairs={self.pairs()})"
        )


def merge_delta_bdm(
    old_bdm: BlockDistributionMatrix | None,
    delta_bdm: BlockDistributionMatrix,
    num_delta_partitions: int,
) -> DeltaBDM:
    """Merge the persisted BDM with the delta's Job-1 counts.

    The merged matrix has the old partitions as columns
    ``0 .. m_old−1`` and the delta partitions shifted after them — the
    exact partition order of the matching job's input.  Built from the
    count dicts (not the matrices' ``num_partitions`` properties, which
    collapse to 0 for empty matrices).
    """
    if num_delta_partitions < 0:
        raise ValueError(
            f"num_delta_partitions must be >= 0, got {num_delta_partitions}"
        )
    num_old = 0 if old_bdm is None else old_bdm.num_partitions
    counts: dict[tuple[BlockKey, int], int] = {}
    if old_bdm is not None:
        for k in range(old_bdm.num_blocks):
            key = old_bdm.key_of(k)
            for p in range(num_old):
                size = old_bdm.size(k, p)
                if size:
                    counts[(key, p)] = size
    for k in range(delta_bdm.num_blocks):
        key = delta_bdm.key_of(k)
        for p in range(delta_bdm.num_partitions):
            size = delta_bdm.size(k, p)
            if size:
                counts[(key, num_old + p)] = counts.get((key, num_old + p), 0) + size
    total = num_old + num_delta_partitions
    if not counts:
        merged = BlockDistributionMatrix([], [])
    else:
        merged = BlockDistributionMatrix.from_counts(counts, total)
    return DeltaBDM(merged, num_old)


# ---------------------------------------------------------------------------
# Delta pair enumeration
# ---------------------------------------------------------------------------


def delta_pair_count(old: int, total: int) -> int:
    """Remaining pairs of one block: ``T(total) − T(old)``."""
    if not 0 <= old <= total:
        raise ValueError(f"invalid delta block sizes ({old}, {total})")
    return block_pair_count(total) - block_pair_count(old)


def delta_cell_index(x: int, y: int, old: int) -> int:
    """Block-local delta cell of pair ``(x, y)``, ``x < y``, ``y >= old``.

    Row-major over the new rows: ``c(x, y) = T(y) − T(old) + x``.
    """
    if not 0 <= x < y:
        raise ValueError(f"invalid pair ({x}, {y})")
    if y < old:
        raise ValueError(f"pair ({x}, {y}) is old-vs-old (old={old})")
    return block_pair_count(y) - block_pair_count(old) + x


def delta_cell_of(cell: int, old: int, total: int) -> tuple[int, int]:
    """Inverse of :func:`delta_cell_index`: the pair ``(x, y)`` at ``cell``."""
    pairs = delta_pair_count(old, total)
    if not 0 <= cell < pairs:
        raise ValueError(f"cell index {cell} outside [0, {pairs})")
    import math

    # Largest y with T(y) − T(old) <= cell.
    target = cell + block_pair_count(old)
    y = (1 + math.isqrt(1 + 8 * target)) // 2
    while block_pair_count(y) > target:
        y -= 1
    while block_pair_count(y + 1) <= target:
        y += 1
    x = cell - (block_pair_count(y) - block_pair_count(old))
    return x, y


def delta_entities_in_cell_interval(
    old: int, total: int, lo: int, hi: int
) -> list[tuple[int, int]]:
    """Entity indexes participating in delta cells ``[lo, hi]`` of one
    block, as merged inclusive intervals (the incremental analogue of
    :func:`~repro.core.enumeration.entities_in_cell_interval`)."""
    if hi < lo:
        return []
    xl, yl = delta_cell_of(lo, old, total)
    xh, yh = delta_cell_of(hi, old, total)
    intervals: list[tuple[int, int]] = [(yl, yh)]  # the rows' own entities
    if yl == yh:
        intervals.append((xl, xh))
    else:
        intervals.append((xl, yl - 1))  # tail of the first (partial) row
        intervals.append((0, xh))       # head of the last (partial) row
        if yh - 1 > yl:
            # The largest full middle row covers columns 0 .. yh−2,
            # subsuming every other middle row's contribution.
            intervals.append((0, yh - 2))
    return merge_intervals(intervals)


class DeltaPairEnumeration:
    """Global delta pair enumeration over per-block ``(old, total)`` sizes.

    Mirrors :class:`~repro.core.enumeration.PairEnumeration` for the
    delta cell scheme: block offsets, both index directions, the
    map-side relevant-range computation and the reduce-side partner
    span.
    """

    def __init__(self, block_sizes: Sequence[tuple[int, int]]):
        self.block_sizes = [(int(o), int(n)) for o, n in block_sizes]
        for o, n in self.block_sizes:
            if not 0 <= o <= n:
                raise ValueError(f"invalid delta block sizes ({o}, {n})")
        self._offsets = [0]
        for o, n in self.block_sizes:
            self._offsets.append(self._offsets[-1] + delta_pair_count(o, n))

    @property
    def total_pairs(self) -> int:
        return self._offsets[-1]

    def offset(self, block: int) -> int:
        if not 0 <= block < len(self.block_sizes):
            raise ValueError(f"block {block} out of range")
        return self._offsets[block]

    def block_bounds(self, block: int) -> tuple[int, int]:
        lo = self._offsets[block]
        hi = self._offsets[block + 1] - 1
        return (lo, hi) if hi >= lo else (0, -1)

    def pair_index(self, block: int, x: int, y: int) -> int:
        old, _total = self.block_sizes[block]
        return self._offsets[block] + delta_cell_index(x, y, old)

    def pair_at(self, pair_index: int) -> tuple[int, int, int]:
        if not 0 <= pair_index < self.total_pairs:
            raise ValueError(
                f"pair index {pair_index} outside [0, {self.total_pairs})"
            )
        block = bisect_right(self._offsets, pair_index) - 1
        while self._offsets[block + 1] == self._offsets[block]:
            block += 1
        old, total = self.block_sizes[block]
        x, y = delta_cell_of(pair_index - self._offsets[block], old, total)
        return block, x, y

    def partner_span(self, block: int, y: int, lo: int, hi: int) -> tuple[int, int]:
        """Partners ``x < y`` of *new* entity ``y`` whose pair has a
        global index in ``[lo, hi]``, as an inclusive interval
        (``(0, -1)`` when empty — in particular for old ``y``).

        Row ``y``'s cells are the contiguous run ``base + x`` with
        ``base = offset + T(y) − T(old)``, so the span is two
        subtractions — O(1), no search (the incremental counterpart of
        :meth:`~repro.core.enumeration.DualPairEnumeration.r_span`).
        """
        old, total = self.block_sizes[block]
        if not 0 <= y < total:
            raise ValueError(f"entity index {y} outside block of size {total}")
        if y < old or y == 0 or hi < lo:
            return (0, -1)
        base = self._offsets[block] + block_pair_count(y) - block_pair_count(old)
        x_lo = max(0, lo - base)
        x_hi = min(y - 1, hi - base)
        return (x_lo, x_hi) if x_lo <= x_hi else (0, -1)

    def relevant_ranges(
        self, block: int, entity_index: int, spec: PairRangeSpec
    ) -> list[int]:
        """All ranges containing at least one delta pair of this entity.

        A new entity's own-row cells are one contiguous run (only the
        boundary ranges matter); its later-row cells — and all of an
        old entity's cells — are a strictly increasing walk with the
        closed per-row increment ``c(x, y+1) − c(x, y) = y``, so the
        range ids come out pre-sorted with one add per *new* row (old
        rows are never walked: the cost per entity is bounded by the
        delta, not the corpus).
        """
        old, total = self.block_sizes[block]
        x = entity_index
        if not 0 <= x < total:
            raise ValueError(
                f"entity index {x} outside block of size {total}"
            )
        if delta_pair_count(old, total) == 0:
            return []
        o = self._offsets[block]
        ppr = spec.pairs_per_range
        ranges: list[int] = []
        last = -1
        if x >= old and x > 0:
            # Own row: cells base .. base + x − 1, one contiguous run.
            base = o + block_pair_count(x) - block_pair_count(old)
            first = base // ppr
            run_last = (base + x - 1) // ppr
            ranges.extend(range(first, run_last + 1))
            last = run_last
        # Later rows y > max(x, old−1): cell o + T(y) − T(old) + x,
        # strictly after every own-row cell, increasing by y per step.
        y = max(x + 1, old)
        if y < total:
            cell = o + block_pair_count(y) - block_pair_count(old) + x
            while y < total:
                rid = cell // ppr
                if rid != last:
                    ranges.append(rid)
                    last = rid
                cell += y
                y += 1
        return ranges


# ---------------------------------------------------------------------------
# Delta Basic
# ---------------------------------------------------------------------------


def _batched_whole_delta(job, values, emit, context) -> None:
    """Batched whole-block delta group: each new entity vs the prefix.

    Old partitions precede delta partitions in the stable shuffle, so
    entity ``t`` being new means every earlier arrival (old or new) is
    its comparison partner — the span ``(t, 0, t)``.  Shared by
    :class:`DeltaBasicJob` and :class:`DeltaBlockSplitJob`'s unsplit
    (``k.*``) groups.
    """
    num_old = job.bdm.num_old_partitions
    prepare = job.matcher.prepare
    prepared: list = []
    spans: list[tuple[int, int, int]] = []
    for t, (entity, p) in enumerate(values):
        prepared.append(prepare(entity))
        if p >= num_old and t > 0:
            spans.append((t, 0, t))
    run_batched_group(job.matcher, prepared, SpanPairs(spans), emit, context)


class DeltaBasicJob(MapReduceJob):
    """Basic matching of a delta: whole blocks, old entities buffered.

    Same routing as :class:`~repro.core.basic.BasicMatchJob` — hash the
    blocking key, ship whole blocks — but blocks without any new entity
    are skipped entirely, and reduce compares only the new entities
    (each against everything buffered before it).
    """

    name = "job2-basic-delta"

    def __init__(
        self, bdm: DeltaBDM, matcher: Matcher, *, batch_kernel: bool = False
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.batch_kernel = batch_kernel

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        k = self.bdm.block_index(key)
        if self.bdm.block_pairs(k) == 0:
            return  # no new entity in this block — nothing left to compare
        emit(key, (value, context.partition_index))

    def partition(self, key: BlockKey, num_reduce_tasks: int) -> int:
        return stable_hash(key) % num_reduce_tasks

    def sort_key(self, key: BlockKey) -> Any:
        return repr(key)

    def reduce(
        self,
        key: BlockKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        # Old partitions precede delta partitions, so every old entity
        # is buffered before the first new one arrives (stable shuffle,
        # partition order).
        if self.batch_kernel:
            _batched_whole_delta(self, values, emit, context)
            return
        num_old = self.bdm.num_old_partitions
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for entity, p in values:
            prepared = prepare(entity)
            if p >= num_old:
                for p1 in buffer:
                    pair = match_prepared(p1, prepared)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += len(buffer)
            buffer.append(prepared)
        flush_pair_counters(context, comparisons, matched)


# ---------------------------------------------------------------------------
# Delta BlockSplit
# ---------------------------------------------------------------------------


def generate_delta_match_tasks(
    bdm: DeltaBDM, num_reduce_tasks: int
) -> tuple[list[MatchTask], frozenset[int], float]:
    """Match tasks over the delta comparison matrix.

    Blocks with no remaining pairs yield nothing.  Unsplit blocks yield
    one ``k.*`` task with ``T(n) − T(o)`` comparisons (all entities
    shipped, the delta-aware reduce skips old-vs-old).  Split blocks
    yield sub-block self-joins only for *new* partitions (including
    zero-comparison singletons, mirroring the one-source generator's
    bookkeeping) and cross products that skip old×old — the incremental
    analogue of the two-source generator skipping same-source pairs.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    threshold = bdm.pairs() / num_reduce_tasks
    tasks: list[MatchTask] = []
    split_blocks: set[int] = set()
    m = bdm.num_partitions
    for k in range(bdm.num_blocks):
        comps = bdm.block_pairs(k)
        if comps == 0:
            continue
        if comps <= threshold:
            tasks.append(MatchTask(k, 0, 0, comps))
            continue
        split_blocks.add(k)
        for i in range(m):
            size_i = bdm.size(k, i)
            if size_i == 0:
                continue
            if bdm.is_new_partition(i):
                tasks.append(MatchTask(k, i, i, block_pair_count(size_i)))
            for j in range(i):
                size_j = bdm.size(k, j)
                if size_j == 0:
                    continue
                if not bdm.is_new_partition(i) and not bdm.is_new_partition(j):
                    continue  # old×old — already matched
                tasks.append(MatchTask(k, i, j, size_i * size_j))
    return tasks, frozenset(split_blocks), threshold


class DeltaBlockSplitJob(MapReduceJob):
    """BlockSplit over the delta comparison matrix.

    Unsplit blocks run a delta-aware self-join (old entities buffered
    without comparing); split blocks reuse the plain sub-block
    self-join (new sub-blocks only) and cross-product reduces — a
    cross product of an old and a new sub-block is exactly the
    new-vs-old work.
    """

    name = "job2-blocksplit-delta"

    def __init__(
        self,
        bdm: DeltaBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        from .match_tasks import assign_greedy  # local import avoids cycle

        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        tasks, split_blocks, threshold = generate_delta_match_tasks(
            bdm, num_reduce_tasks
        )
        assignment, loads = assign_greedy(tasks, num_reduce_tasks)
        self.tasks = tuple(tasks)
        self.reduce_of = assignment
        self.reduce_comparisons = tuple(loads)
        self.split_blocks = split_blocks
        self.threshold = threshold
        if packed_keys_enabled():
            m = max(1, bdm.num_partitions)
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                m,
                m,
            )
            self.packed_projection = PackedProjection.full_key(codec)

    # -- map phase ---------------------------------------------------------

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        if k not in self.split_blocks:
            reduce_index = self.reduce_of.get((k, 0, 0))
            if reduce_index is None:
                return  # no remaining pairs in this block
            emit(BlockSplitKey(reduce_index, k, 0, 0), (value, p))
            return
        for i in range(bdm.num_partitions):
            hi, lo = max(p, i), min(p, i)
            reduce_index = self.reduce_of.get((k, hi, lo))
            if reduce_index is None:
                continue  # empty sub-block, or an old×old / old-self task
            emit(BlockSplitKey(reduce_index, k, hi, lo), (value, p))

    def partition(self, key: BlockSplitKey, num_reduce_tasks: int) -> int:
        return key.reduce_index

    # -- reduce phase ------------------------------------------------------

    def reduce(
        self,
        key: BlockSplitKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        if key.i != key.j:
            self._match_cross(values, emit, context)
        elif key.block in self.split_blocks:
            self._match_self(values, emit, context)  # a new sub-block
        else:
            self._match_whole_delta(values, emit, context)

    def _match_self(self, values, emit, context: TaskContext) -> None:
        """All-pairs self-join of one *new* sub-block (``k.i``)."""
        if self.batch_kernel:
            prepare = self.matcher.prepare
            prepared = [prepare(e) for e, _partition in values]
            run_batched_group(
                self.matcher, prepared, TrianglePairs(len(prepared)), emit, context
            )
            return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for e2, _partition in values:
            p2 = prepare(e2)
            for p1 in buffer:
                pair = match_prepared(p1, p2)
                if pair is not None:
                    matched += 1
                    emit(None, pair)
            comparisons += len(buffer)
            buffer.append(p2)
        flush_pair_counters(context, comparisons, matched)

    def _match_whole_delta(self, values, emit, context: TaskContext) -> None:
        """Whole unsplit block (``k.*``): old entities buffer silently.

        Old partitions precede delta partitions in the stable shuffle,
        so the buffer holds the full old sub-corpus before any new
        entity streams through.
        """
        if self.batch_kernel:
            _batched_whole_delta(self, values, emit, context)
            return
        num_old = self.bdm.num_old_partitions
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for entity, p in values:
            prepared = prepare(entity)
            if p >= num_old:
                for p1 in buffer:
                    pair = match_prepared(p1, prepared)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += len(buffer)
            buffer.append(prepared)
        flush_pair_counters(context, comparisons, matched)

    def _match_cross(self, values, emit, context: TaskContext) -> None:
        """Cartesian product of two sub-blocks (``k.i×j``) — identical
        to the full BlockSplit cross reduce: the first partition index
        delimits the buffered sub-block."""
        if self.batch_kernel and values:
            split = leading_run_split([partition for _e, partition in values])
            if split is not None:
                prepare = self.matcher.prepare
                prepared = [prepare(e) for e, _partition in values]
                run_batched_group(
                    self.matcher,
                    prepared,
                    CrossPairs(split, len(prepared)),
                    emit,
                    context,
                )
                return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        iterator = iter(values)
        try:
            first_entity, first_partition = next(iterator)
        except StopIteration:
            return
        buffer = [prepare(first_entity)]
        comparisons = 0
        matched = 0
        for e2, partition in iterator:
            if partition == first_partition:
                buffer.append(prepare(e2))
            else:
                p2 = prepare(e2)
                for p1 in buffer:
                    pair = match_prepared(p1, p2)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += len(buffer)
        flush_pair_counters(context, comparisons, matched)


# ---------------------------------------------------------------------------
# Delta PairRange
# ---------------------------------------------------------------------------


class DeltaPairRangeJob(MapReduceJob):
    """PairRange over the delta enumeration.

    Same routing as the full :class:`~repro.core.pairrange.PairRangeJob`
    — entities globally enumerated per block via the merged BDM's
    offsets, keys carry ``range . block . entity index`` — but ranges
    divide only the ``T(n) − T(o)`` remaining pairs, and reduce compares
    an incoming entity only when it is new.
    """

    name = "job2-pairrange-delta"

    def __init__(
        self,
        bdm: DeltaBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        self.enumeration = DeltaPairEnumeration(bdm.delta_block_sizes())
        self.spec = PairRangeSpec(self.enumeration.total_pairs, num_reduce_tasks)
        if packed_keys_enabled():
            sizes = [n for _o, n in self.enumeration.block_sizes]
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                max(1, max(sizes, default=1)),
            )
            self.packed_projection = PackedProjection.prefix(codec, 2)

    # -- map phase ---------------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        context.next_entity_index = {}  # type: ignore[attr-defined]

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        k = self.bdm.block_index(key)
        state: dict[int, int] = context.next_entity_index  # type: ignore[attr-defined]
        x = state.get(k)
        if x is None:
            x = self.bdm.entity_index_offset(k, context.partition_index)
        state[k] = x + 1
        if self.bdm.block_pairs(k) == 0:
            return  # no new entity in this block
        for range_index in self.enumeration.relevant_ranges(k, x, self.spec):
            emit(PairRangeKey(range_index, k, x), (value, x))

    def partition(self, key: PairRangeKey, num_reduce_tasks: int) -> int:
        return key.range_index

    def group_key(self, key: PairRangeKey) -> Any:
        if self.packed_projection is not None:
            return super().group_key(key)
        return (key.range_index, key.block)

    # -- reduce phase ------------------------------------------------------

    def reduce(
        self,
        key: PairRangeKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        # Entities arrive in ascending entity-index order (old indexes
        # precede new ones by construction), so the buffered indexes
        # form a sorted int array; each *new* incoming entity's
        # qualifying partners are one contiguous run (`partner_span`,
        # O(1) closed form).  Old incoming entities only buffer: every
        # shipped old entity has at least one of its cells in this
        # range, so it will be somebody's partner.
        block = key.block
        old = self.enumeration.block_sizes[block][0]
        lo, hi = self.spec.bounds(key.range_index)
        partner_span = self.enumeration.partner_span
        if self.batch_kernel:
            prepare = self.matcher.prepare
            buffer_x: list[int] = []
            prepared: list = []
            spans: list[tuple[int, int, int]] = []
            for t, (e2, x2) in enumerate(values):
                prepared.append(prepare(e2))
                if x2 >= old:
                    x_lo, x_hi = partner_span(block, x2, lo, hi)
                    if x_lo <= x_hi:
                        start, stop = sorted_run_bounds(buffer_x, x_lo, x_hi)
                        if stop > start:
                            spans.append((t, start, stop))
                buffer_x.append(x2)
            run_batched_group(self.matcher, prepared, SpanPairs(spans), emit, context)
            return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer_x: list[int] = []
        buffer_p: list = []
        for e2, x2 in values:
            p2 = prepare(e2)
            if x2 >= old:
                x_lo, x_hi = partner_span(block, x2, lo, hi)
                if x_lo <= x_hi:
                    start = bisect_left(buffer_x, x_lo)
                    stop = bisect_right(buffer_x, x_hi, start)
                    for i in range(start, stop):
                        pair = match_prepared(buffer_p[i], p2)
                        if pair is not None:
                            matched += 1
                            emit(None, pair)
                    comparisons += stop - start
            buffer_x.append(x2)
            buffer_p.append(p2)
        flush_pair_counters(context, comparisons, matched)
