"""The block distribution matrix (BDM) and the MR job that computes it.

The BDM is a ``b × m`` matrix holding the number of entities of each of
``b`` blocks in each of ``m`` input partitions (Section III-B).  Both
load-balancing strategies read it during map-task initialisation: it is
what lets a map task compute *global* entity indexes and comparison
counts from purely local information.

Job 1 (Algorithm 3) computes the BDM and, as a side output, writes each
entity annotated with its blocking key to the DFS, one file per map
task, so that Job 2 can consume the identical partitioning.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..er.blocking import BlockingFunction, BlockKey
from ..er.entity import Entity
from ..mapreduce.job import MapReduceJob, TaskContext, stable_hash
from ..mapreduce.runtime import JobResult, LocalRuntime
from ..mapreduce.types import Partition
from .keys import BdmKey

#: DFS directory for Job 1's annotated-entity side output.
ANNOTATED_DIR = "job1/annotated"

#: Counter name for entities skipped because they had no blocking key.
MISSING_KEY_COUNTER = "bdm.entities.without.blocking.key"


class BlockDistributionMatrix:
    """Entities per (block, input partition).

    Block indices are assigned by sorting the blocking keys — the paper
    uses "the (arbitrary) order of the blocks from the reduce output";
    sorting makes runs deterministic without changing any property the
    algorithms rely on.
    """

    def __init__(self, block_keys: Sequence[BlockKey], sizes: Sequence[Sequence[int]]):
        if len(block_keys) != len(sizes):
            raise ValueError(
                f"{len(block_keys)} block keys but {len(sizes)} size rows"
            )
        if len(set(block_keys)) != len(block_keys):
            raise ValueError("block keys must be unique")
        widths = {len(row) for row in sizes}
        if len(widths) > 1:
            raise ValueError(f"ragged size rows: widths {sorted(widths)}")
        self._block_keys = list(block_keys)
        self._sizes = [list(row) for row in sizes]
        for key, row in zip(self._block_keys, self._sizes):
            if any(s < 0 for s in row):
                raise ValueError(f"negative size in block {key!r}")
            if sum(row) == 0:
                raise ValueError(f"block {key!r} is empty")
        self._index: dict[BlockKey, int] = {
            key: k for k, key in enumerate(self._block_keys)
        }
        self._row_sums = [sum(row) for row in self._sizes]

    # -- construction -----------------------------------------------------

    @classmethod
    def from_counts(
        cls,
        counts: dict[tuple[BlockKey, int], int],
        num_partitions: int,
    ) -> "BlockDistributionMatrix":
        """Build from ``(block key, partition index) → count`` triples."""
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        keys = sorted({key for key, _ in counts}, key=repr)
        sizes = [[0] * num_partitions for _ in keys]
        index = {key: k for k, key in enumerate(keys)}
        for (key, partition), count in counts.items():
            if not 0 <= partition < num_partitions:
                raise ValueError(
                    f"partition index {partition} outside [0, {num_partitions})"
                )
            sizes[index[key]][partition] += count
        return cls(keys, sizes)

    @classmethod
    def from_blocks(
        cls,
        partitioned_blocks: Iterable[tuple[BlockKey, int, int]],
        num_partitions: int,
    ) -> "BlockDistributionMatrix":
        """Build from ``(block key, partition index, count)`` triples —
        the exact shape of Job 1's reduce output."""
        counts: dict[tuple[BlockKey, int], int] = {}
        for key, partition, count in partitioned_blocks:
            counts[(key, partition)] = counts.get((key, partition), 0) + count
        return cls.from_counts(counts, num_partitions)

    # -- paper API (Appendix II function list) -----------------------------

    def block_index(self, block_key: BlockKey) -> int:
        """``BDM.blockIndex(blockKey)``."""
        try:
            return self._index[block_key]
        except KeyError:
            raise KeyError(f"unknown block key {block_key!r}") from None

    def size(self, block: int, partition: int | None = None) -> int:
        """``BDM.size(blockIndex[, partitionIndex])``."""
        if partition is None:
            return self._row_sums[block]
        return self._sizes[block][partition]

    def pairs(self) -> int:
        """``BDM.pairs()`` — total comparisons P over all blocks."""
        return sum(n * (n - 1) // 2 for n in self._row_sums)

    # -- additional accessors ------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._block_keys)

    @property
    def num_partitions(self) -> int:
        return len(self._sizes[0]) if self._sizes else 0

    @property
    def block_keys(self) -> list[BlockKey]:
        return list(self._block_keys)

    def key_of(self, block: int) -> BlockKey:
        return self._block_keys[block]

    def block_sizes(self) -> list[int]:
        return list(self._row_sums)

    def block_pairs(self, block: int) -> int:
        n = self._row_sums[block]
        return n * (n - 1) // 2

    def partition_sizes(self) -> list[int]:
        """Column sums — the number of keyed entities per input partition."""
        return [
            sum(self._sizes[k][i] for k in range(self.num_blocks))
            for i in range(self.num_partitions)
        ]

    def total_entities(self) -> int:
        return sum(self._row_sums)

    def entity_index_offset(self, block: int, partition: int) -> int:
        """Number of entities of ``block`` in partitions before ``partition``.

        This is the offset a map task adds to its local per-block counter
        to obtain global entity indexes (Section V / Algorithm 2 lines 4-8).
        """
        return sum(self._sizes[block][:partition])

    def occupied_partitions(self, block: int) -> list[int]:
        """Partitions that contain at least one entity of ``block``."""
        return [i for i, s in enumerate(self._sizes[block]) if s > 0]

    def largest_block(self) -> tuple[int, int]:
        """``(block index, size)`` of the largest block."""
        block = max(range(self.num_blocks), key=lambda k: self._row_sums[k])
        return block, self._row_sums[block]

    def __repr__(self) -> str:
        return (
            f"BlockDistributionMatrix(blocks={self.num_blocks}, "
            f"partitions={self.num_partitions}, entities={self.total_entities()}, "
            f"pairs={self.pairs()})"
        )


class BdmJob(MapReduceJob):
    """MR Job 1 (Algorithm 3): count entities per (block, partition).

    map
        emits ``(BdmKey(blockKey, partitionIndex), 1)`` per entity and
        side-writes ``(blockKey, entity)`` to :data:`ANNOTATED_DIR`.
    combine
        sums the 1s per map task (the paper's footnote 2 optimisation);
        disabled via ``use_combiner=False`` for the ablation benchmark.
    partition
        on the blocking key only, so a block's counts meet in one task.
    reduce
        sums counts and emits ``(blockKey, partitionIndex, count)``.
    """

    name = "job1-bdm"

    def __init__(self, blocking: BlockingFunction, *, use_combiner: bool = True):
        self.blocking = blocking
        self.use_combiner = use_combiner

    def map(self, key: Any, value: Entity, emit, context: TaskContext) -> None:
        block_key = self.blocking.key_for(value)
        if block_key is None:
            context.counters.increment(MISSING_KEY_COUNTER)
            return
        context.side_output(ANNOTATED_DIR, block_key, value)
        emit(BdmKey(block_key, context.partition_index), 1)

    def combine(self, key: BdmKey, values: Sequence[int]):
        if not self.use_combiner:
            return None
        return [(key, sum(values))]

    def partition(self, key: BdmKey, num_reduce_tasks: int) -> int:
        return stable_hash(key.block_key) % num_reduce_tasks

    def sort_key(self, key: BdmKey) -> tuple:
        return (repr(key.block_key), key.partition_index)

    def reduce(self, key: BdmKey, values: Sequence[int], emit, context: TaskContext) -> None:
        emit(None, (key.block_key, key.partition_index, sum(values)))


def analytic_bdm(
    partitions: Sequence[Sequence[Entity]] | Sequence[Partition],
    blocking: BlockingFunction,
) -> BlockDistributionMatrix:
    """Compute the BDM directly (what Job 1 would output), for planning."""
    counts: dict[tuple, int] = {}
    for index, partition in enumerate(partitions):
        records = (
            (record.value for record in partition)
            if isinstance(partition, Partition)
            else iter(partition)
        )
        for entity in records:
            key = blocking.key_for(entity)
            if key is None:
                continue
            counts[(key, index)] = counts.get((key, index), 0) + 1
    return BlockDistributionMatrix.from_counts(counts, num_partitions=len(partitions))


def analytic_bdm_from_counts(
    counts: Mapping[tuple[BlockKey, int], int],
    num_partitions: int,
) -> BlockDistributionMatrix:
    """Build a BDM from shard-level ``(block key, shard index) → count``
    statistics.

    This is the contract between the streaming input layer
    (:meth:`repro.io.RecordSource.block_statistics`) and the planners:
    a :class:`~repro.io.RecordSource` reports per-shard block counts
    without materializing any records, and those counts *are* what Job 1
    would have produced — one shard per input partition.  The resulting
    matrix is identical to :func:`analytic_bdm` over the materialized
    partitions.
    """
    return BlockDistributionMatrix.from_counts(dict(counts), num_partitions)


def analytic_bdm_from_block_sizes(
    block_partition_sizes: Sequence[Sequence[int]],
) -> BlockDistributionMatrix:
    """Build a BDM straight from a ``b × m`` size matrix.

    Benchmarks use this to study block-size distributions without
    generating entities at all; block keys are synthesized as
    ``"b<k>"``.
    """
    keys = [f"b{k}" for k in range(len(block_partition_sizes))]
    return BlockDistributionMatrix(keys, block_partition_sizes)


def compute_bdm(
    runtime: LocalRuntime,
    partitions: Sequence[Partition],
    blocking: BlockingFunction,
    *,
    num_reduce_tasks: int,
    use_combiner: bool = True,
    memory_budget: int | None = None,
) -> tuple[BlockDistributionMatrix, JobResult, list[Partition]]:
    """Run Job 1 and return the BDM, the job result, and the annotated
    partitions Job 2 must consume.

    ``partitions`` hold raw entities as values.  The returned annotated
    partitions hold ``(blocking key, entity)`` records, partitioned
    identically to the input.  ``memory_budget`` caps the number of map
    output records buffered in memory during the shuffle (spilling the
    rest through sorted run files, see
    :class:`~repro.mapreduce.ExternalShuffle`).
    """
    job = BdmJob(blocking, use_combiner=use_combiner)
    result = runtime.run(
        job, partitions, num_reduce_tasks, memory_budget=memory_budget
    )
    triples = [record.value for record in result.output]
    bdm = BlockDistributionMatrix.from_blocks(triples, num_partitions=len(partitions))
    # A partition whose entities all lack blocking keys writes no side
    # file; materialise an empty one so Job 2 sees contiguous indices.
    for partition in partitions:
        path = runtime.dfs.task_path(ANNOTATED_DIR, partition.index)
        if not runtime.dfs.exists(path):
            runtime.dfs.write_records(path, [])
    annotated = runtime.dfs.read_as_partitions(ANNOTATED_DIR)
    return bdm, result, annotated
