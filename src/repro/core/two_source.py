"""Two-source matching (Appendix I): R × S linkage with load balancing.

Matching two sources R and S compares only *cross-source* pairs within
each block.  Input partitions are homogeneous — each holds entities of
exactly one source (Hadoop's ``MultipleInputs``); the number of
partitions may differ per source.

The BDM keeps its ``b × m`` shape but every block's pair count becomes
``|Φk,R| · |Φk,S|`` and entity enumeration runs per (block, source).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..er.blocking import BlockingFunction, BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import StandardCounter
from ..mapreduce.job import MapReduceJob, TaskContext
from ..mapreduce.runtime import JobResult, LocalRuntime
from ..mapreduce.types import Partition
from .bdm import (
    ANNOTATED_DIR,
    BdmJob,
    BlockDistributionMatrix,
    analytic_bdm,
    compute_bdm,
)
from .enumeration import DualPairEnumeration, PairRangeSpec
from .keys import DualBlockSplitKey, DualPairRangeKey
from .match_tasks import MatchTask

SOURCE_R = "R"
SOURCE_S = "S"


class DualSourceBDM:
    """BDM for two sources: block × partition counts plus a partition →
    source map (Figure 15(a))."""

    def __init__(
        self,
        bdm: BlockDistributionMatrix,
        partition_sources: Sequence[str],
    ):
        if len(partition_sources) != bdm.num_partitions:
            raise ValueError(
                f"expected {bdm.num_partitions} partition sources, "
                f"got {len(partition_sources)}"
            )
        bad = set(partition_sources) - {SOURCE_R, SOURCE_S}
        if bad:
            raise ValueError(f"unknown source tags: {sorted(bad)}")
        self._bdm = bdm
        self.partition_sources = list(partition_sources)
        self.r_partitions = [
            i for i, s in enumerate(partition_sources) if s == SOURCE_R
        ]
        self.s_partitions = [
            i for i, s in enumerate(partition_sources) if s == SOURCE_S
        ]

    # -- delegation --------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self._bdm.num_blocks

    @property
    def num_partitions(self) -> int:
        return self._bdm.num_partitions

    @property
    def block_keys(self) -> list[BlockKey]:
        return self._bdm.block_keys

    def block_index(self, block_key: BlockKey) -> int:
        return self._bdm.block_index(block_key)

    def key_of(self, block: int) -> BlockKey:
        return self._bdm.key_of(block)

    def size(self, block: int, partition: int | None = None) -> int:
        return self._bdm.size(block, partition)

    def partition_sizes(self) -> list[int]:
        return self._bdm.partition_sizes()

    # -- two-source quantities -------------------------------------------------

    def size_r(self, block: int) -> int:
        return sum(self._bdm.size(block, i) for i in self.r_partitions)

    def size_s(self, block: int) -> int:
        return sum(self._bdm.size(block, i) for i in self.s_partitions)

    def block_pairs(self, block: int) -> int:
        return self.size_r(block) * self.size_s(block)

    def pairs(self) -> int:
        return sum(self.block_pairs(k) for k in range(self.num_blocks))

    def dual_block_sizes(self) -> list[tuple[int, int]]:
        return [(self.size_r(k), self.size_s(k)) for k in range(self.num_blocks)]

    def source_of(self, partition: int) -> str:
        return self.partition_sources[partition]

    def entity_index_offset(self, block: int, partition: int) -> int:
        """Entities of ``block`` in *same-source* partitions before
        ``partition`` — enumeration runs per (block, source)."""
        source = self.partition_sources[partition]
        same_source = (
            self.r_partitions if source == SOURCE_R else self.s_partitions
        )
        return sum(
            self._bdm.size(block, i) for i in same_source if i < partition
        )

    def occupied_partitions(self, block: int, source: str) -> list[int]:
        partitions = self.r_partitions if source == SOURCE_R else self.s_partitions
        return [i for i in partitions if self._bdm.size(block, i) > 0]

    def __repr__(self) -> str:
        return (
            f"DualSourceBDM(blocks={self.num_blocks}, "
            f"partitions={self.num_partitions}, pairs={self.pairs()})"
        )


def compute_dual_bdm(
    runtime: LocalRuntime,
    partitions: Sequence[Partition],
    blocking: BlockingFunction,
    *,
    num_reduce_tasks: int,
    use_combiner: bool = True,
    memory_budget: int | None = None,
) -> tuple[DualSourceBDM, JobResult, list[Partition]]:
    """Job 1 for two sources.

    Each input partition must be source-homogeneous; the source map is
    derived from the entities themselves.
    """
    sources: list[str] = []
    for partition in partitions:
        tags = {record.value.source for record in partition}
        if len(tags) > 1:
            raise ValueError(
                f"partition {partition.index} mixes sources {sorted(tags)}"
            )
        sources.append(tags.pop() if tags else SOURCE_R)
    bdm, job_result, annotated = compute_bdm(
        runtime,
        partitions,
        blocking,
        num_reduce_tasks=num_reduce_tasks,
        use_combiner=use_combiner,
        memory_budget=memory_budget,
    )
    return DualSourceBDM(bdm, sources), job_result, annotated


def analytic_dual_bdm(
    partitions: Sequence[Partition],
    blocking: BlockingFunction,
) -> DualSourceBDM:
    """Compute the two-source BDM directly (no MR execution), for planning.

    Mirrors :func:`compute_dual_bdm`: partitions must be
    source-homogeneous and the source map is derived from the entities.
    """
    sources: list[str] = []
    for partition in partitions:
        tags = {record.value.source for record in partition}
        if len(tags) > 1:
            raise ValueError(
                f"partition {partition.index} mixes sources {sorted(tags)}"
            )
        sources.append(tags.pop() if tags else SOURCE_R)
    return DualSourceBDM(analytic_bdm(partitions, blocking), sources)


# ---------------------------------------------------------------------------
# Dual-source BlockSplit (Appendix I-A)
# ---------------------------------------------------------------------------


def generate_dual_match_tasks(
    bdm: DualSourceBDM, num_reduce_tasks: int
) -> tuple[list[MatchTask], frozenset[int], float]:
    """Match tasks for two sources.

    Unsplit blocks yield one ``k.*`` task with ``|Φk,R|·|Φk,S|``
    comparisons; split blocks yield only cross tasks ``k.i×j`` with
    ``Πi ∈ R`` and ``Πj ∈ S`` (no same-source sub-block self-joins).
    Blocks without any cross-source pair yield nothing.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    threshold = bdm.pairs() / num_reduce_tasks
    tasks: list[MatchTask] = []
    split_blocks: set[int] = set()
    for k in range(bdm.num_blocks):
        comps = bdm.block_pairs(k)
        if comps == 0:
            continue
        if comps <= threshold:
            tasks.append(MatchTask(k, 0, 0, comps))
            continue
        split_blocks.add(k)
        for i in bdm.r_partitions:
            size_i = bdm.size(k, i)
            if size_i == 0:
                continue
            for j in bdm.s_partitions:
                size_j = bdm.size(k, j)
                if size_j == 0:
                    continue
                tasks.append(MatchTask(k, i, j, size_i * size_j))
    return tasks, frozenset(split_blocks), threshold


class DualBlockSplitJob(MapReduceJob):
    """MR Job 2 for two-source BlockSplit.

    Keys add the source tag; full-key sorting delivers each match
    task's R entities before its S entities, so reduce buffers R and
    streams S (Appendix I-A).
    """

    name = "job2-blocksplit-2src"

    def __init__(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
    ):
        from .match_tasks import assign_greedy  # local import avoids cycle

        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        tasks, split_blocks, threshold = generate_dual_match_tasks(
            bdm, num_reduce_tasks
        )
        assignment, loads = assign_greedy(tasks, num_reduce_tasks)
        self.tasks = tuple(tasks)
        self.reduce_of = assignment
        self.reduce_comparisons = tuple(loads)
        self.split_blocks = split_blocks
        self.threshold = threshold

    # -- map phase ---------------------------------------------------------

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        source = bdm.source_of(p)
        if k not in self.split_blocks:
            reduce_index = self.reduce_of.get((k, 0, 0))
            if reduce_index is None:
                return  # block has no cross-source pairs
            emit(DualBlockSplitKey(reduce_index, k, 0, 0, source), value)
            return
        if source == SOURCE_R:
            partner_tasks = [(k, p, j) for j in bdm.occupied_partitions(k, SOURCE_S)]
        else:
            partner_tasks = [(k, i, p) for i in bdm.occupied_partitions(k, SOURCE_R)]
        for block, i, j in partner_tasks:
            reduce_index = self.reduce_of.get((block, i, j))
            if reduce_index is None:
                continue
            emit(DualBlockSplitKey(reduce_index, block, i, j, source), value)

    def partition(self, key: DualBlockSplitKey, num_reduce_tasks: int) -> int:
        return key.reduce_index

    def group_key(self, key: DualBlockSplitKey) -> tuple[int, int, int]:
        return (key.block, key.i, key.j)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: DualBlockSplitKey,
        values: Sequence[Entity],
        emit,
        context: TaskContext,
    ) -> None:
        buffer: list[Entity] = []
        for entity in values:
            if entity.source == SOURCE_R:
                buffer.append(entity)
            else:
                for e1 in buffer:
                    context.counters.increment(StandardCounter.PAIR_COMPARISONS)
                    pair = self.matcher.match(e1, entity)
                    if pair is not None:
                        context.counters.increment(StandardCounter.PAIRS_MATCHED)
                        emit(None, pair)


# ---------------------------------------------------------------------------
# Dual-source PairRange (Appendix I-B)
# ---------------------------------------------------------------------------


class DualPairRangeJob(MapReduceJob):
    """MR Job 2 for two-source PairRange.

    Pair enumeration covers every cell of each block's ``NR × NS``
    matrix; keys carry ``range . block . source . entity index`` and
    reduce matches each S entity against the buffered R entities,
    filtering by the task's pair range.
    """

    name = "job2-pairrange-2src"

    def __init__(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.enumeration = DualPairEnumeration(bdm.dual_block_sizes())
        self.spec = PairRangeSpec(self.enumeration.total_pairs, num_reduce_tasks)

    # -- map phase ---------------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        context.next_entity_index = {}  # type: ignore[attr-defined]

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        source = bdm.source_of(p)
        state: dict[int, int] = context.next_entity_index  # type: ignore[attr-defined]
        index = state.get(k)
        if index is None:
            index = bdm.entity_index_offset(k, p)
        state[k] = index + 1
        if bdm.block_pairs(k) == 0:
            return  # one side empty — no cross-source pairs (Figure 15(b))
        if source == SOURCE_R:
            ranges = self.enumeration.relevant_ranges_r(k, index, self.spec)
        else:
            ranges = self.enumeration.relevant_ranges_s(k, index, self.spec)
        for range_index in ranges:
            emit(DualPairRangeKey(range_index, k, source, index), (value, index))

    def partition(self, key: DualPairRangeKey, num_reduce_tasks: int) -> int:
        return key.range_index

    def group_key(self, key: DualPairRangeKey) -> tuple[int, int]:
        return (key.range_index, key.block)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: DualPairRangeKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        task_range = key.range_index
        block = key.block
        enumeration = self.enumeration
        spec = self.spec
        buffer: list[tuple[Entity, int]] = []
        for entity, index in values:
            if entity.source == SOURCE_R:
                buffer.append((entity, index))
                continue
            for e1, x in buffer:
                pair_index = enumeration.pair_index(block, x, index)
                pair_range = spec.range_of(pair_index)
                if pair_range == task_range:
                    context.counters.increment(StandardCounter.PAIR_COMPARISONS)
                    pair = self.matcher.match(e1, entity)
                    if pair is not None:
                        context.counters.increment(StandardCounter.PAIRS_MATCHED)
                        emit(None, pair)
                elif pair_range > task_range:
                    break  # pair indexes grow with the R index x
