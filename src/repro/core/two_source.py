"""Two-source matching (Appendix I): R × S linkage with load balancing.

Matching two sources R and S compares only *cross-source* pairs within
each block.  Input partitions are homogeneous — each holds entities of
exactly one source (Hadoop's ``MultipleInputs``); the number of
partitions may differ per source.

The BDM keeps its ``b × m`` shape but every block's pair count becomes
``|Φk,R| · |Φk,S|`` and entity enumeration runs per (block, source).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence

from ..er.blocking import BlockingFunction, BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext
from ..mapreduce.runtime import JobResult, LocalRuntime
from ..mapreduce.types import (
    KeyCodec,
    PackedProjection,
    Partition,
    packed_keys_enabled,
)
from .bdm import (
    ANNOTATED_DIR,
    BdmJob,
    BlockDistributionMatrix,
    analytic_bdm,
    compute_bdm,
)
from ..er.batch_kernel import CrossPairs, SpanPairs
from .enumeration import DualPairEnumeration, PairRangeSpec, sorted_run_bounds
from .keys import DualBlockSplitKey, DualPairRangeKey
from .match_tasks import MatchTask, run_batched_group

SOURCE_R = "R"
SOURCE_S = "S"

#: Packed-key rank of each source tag ("R" < "S" ⇒ 0 < 1, so packed
#: order matches the tuple order the dual reduce functions rely on).
_SOURCE_RANKS = {SOURCE_R: 0, SOURCE_S: 1}


def _r_prefix_length(sources) -> int | None:
    """Length of the leading R run; ``None`` when an R follows an S.

    The dual reduce groups rely on full-key sorting to deliver every R
    entity before any S entity, which makes buffer positions equal
    arrival positions.  The batched paths verify that shape holds —
    falling back to the scalar streaming loops (which define the
    semantics for out-of-order input) when it does not.
    """
    split = 0
    streamed = False
    for position, source in enumerate(sources):
        if source == SOURCE_R:
            if streamed:
                return None
            split = position + 1
        else:
            streamed = True
    return split


class DualSourceBDM:
    """BDM for two sources: block × partition counts plus a partition →
    source map (Figure 15(a))."""

    def __init__(
        self,
        bdm: BlockDistributionMatrix,
        partition_sources: Sequence[str],
    ):
        if len(partition_sources) != bdm.num_partitions:
            raise ValueError(
                f"expected {bdm.num_partitions} partition sources, "
                f"got {len(partition_sources)}"
            )
        bad = set(partition_sources) - {SOURCE_R, SOURCE_S}
        if bad:
            raise ValueError(f"unknown source tags: {sorted(bad)}")
        self._bdm = bdm
        self.partition_sources = list(partition_sources)
        self.r_partitions = [
            i for i, s in enumerate(partition_sources) if s == SOURCE_R
        ]
        self.s_partitions = [
            i for i, s in enumerate(partition_sources) if s == SOURCE_S
        ]

    # -- delegation --------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self._bdm.num_blocks

    @property
    def num_partitions(self) -> int:
        return self._bdm.num_partitions

    @property
    def block_keys(self) -> list[BlockKey]:
        return self._bdm.block_keys

    def block_index(self, block_key: BlockKey) -> int:
        return self._bdm.block_index(block_key)

    def key_of(self, block: int) -> BlockKey:
        return self._bdm.key_of(block)

    def size(self, block: int, partition: int | None = None) -> int:
        return self._bdm.size(block, partition)

    def partition_sizes(self) -> list[int]:
        return self._bdm.partition_sizes()

    # -- two-source quantities -------------------------------------------------

    def size_r(self, block: int) -> int:
        return sum(self._bdm.size(block, i) for i in self.r_partitions)

    def size_s(self, block: int) -> int:
        return sum(self._bdm.size(block, i) for i in self.s_partitions)

    def block_pairs(self, block: int) -> int:
        return self.size_r(block) * self.size_s(block)

    def pairs(self) -> int:
        return sum(self.block_pairs(k) for k in range(self.num_blocks))

    def dual_block_sizes(self) -> list[tuple[int, int]]:
        return [(self.size_r(k), self.size_s(k)) for k in range(self.num_blocks)]

    def source_of(self, partition: int) -> str:
        return self.partition_sources[partition]

    def entity_index_offset(self, block: int, partition: int) -> int:
        """Entities of ``block`` in *same-source* partitions before
        ``partition`` — enumeration runs per (block, source)."""
        source = self.partition_sources[partition]
        same_source = (
            self.r_partitions if source == SOURCE_R else self.s_partitions
        )
        return sum(
            self._bdm.size(block, i) for i in same_source if i < partition
        )

    def occupied_partitions(self, block: int, source: str) -> list[int]:
        partitions = self.r_partitions if source == SOURCE_R else self.s_partitions
        return [i for i in partitions if self._bdm.size(block, i) > 0]

    def __repr__(self) -> str:
        return (
            f"DualSourceBDM(blocks={self.num_blocks}, "
            f"partitions={self.num_partitions}, pairs={self.pairs()})"
        )


def compute_dual_bdm(
    runtime: LocalRuntime,
    partitions: Sequence[Partition],
    blocking: BlockingFunction,
    *,
    num_reduce_tasks: int,
    use_combiner: bool = True,
    memory_budget: int | None = None,
) -> tuple[DualSourceBDM, JobResult, list[Partition]]:
    """Job 1 for two sources.

    Each input partition must be source-homogeneous; the source map is
    derived from the entities themselves.
    """
    sources: list[str] = []
    for partition in partitions:
        tags = {record.value.source for record in partition}
        if len(tags) > 1:
            raise ValueError(
                f"partition {partition.index} mixes sources {sorted(tags)}"
            )
        sources.append(tags.pop() if tags else SOURCE_R)
    bdm, job_result, annotated = compute_bdm(
        runtime,
        partitions,
        blocking,
        num_reduce_tasks=num_reduce_tasks,
        use_combiner=use_combiner,
        memory_budget=memory_budget,
    )
    return DualSourceBDM(bdm, sources), job_result, annotated


def analytic_dual_bdm(
    partitions: Sequence[Partition],
    blocking: BlockingFunction,
) -> DualSourceBDM:
    """Compute the two-source BDM directly (no MR execution), for planning.

    Mirrors :func:`compute_dual_bdm`: partitions must be
    source-homogeneous and the source map is derived from the entities.
    """
    sources: list[str] = []
    for partition in partitions:
        tags = {record.value.source for record in partition}
        if len(tags) > 1:
            raise ValueError(
                f"partition {partition.index} mixes sources {sorted(tags)}"
            )
        sources.append(tags.pop() if tags else SOURCE_R)
    return DualSourceBDM(analytic_bdm(partitions, blocking), sources)


# ---------------------------------------------------------------------------
# Dual-source BlockSplit (Appendix I-A)
# ---------------------------------------------------------------------------


def generate_dual_match_tasks(
    bdm: DualSourceBDM, num_reduce_tasks: int
) -> tuple[list[MatchTask], frozenset[int], float]:
    """Match tasks for two sources.

    Unsplit blocks yield one ``k.*`` task with ``|Φk,R|·|Φk,S|``
    comparisons; split blocks yield only cross tasks ``k.i×j`` with
    ``Πi ∈ R`` and ``Πj ∈ S`` (no same-source sub-block self-joins).
    Blocks without any cross-source pair yield nothing.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    threshold = bdm.pairs() / num_reduce_tasks
    tasks: list[MatchTask] = []
    split_blocks: set[int] = set()
    for k in range(bdm.num_blocks):
        comps = bdm.block_pairs(k)
        if comps == 0:
            continue
        if comps <= threshold:
            tasks.append(MatchTask(k, 0, 0, comps))
            continue
        split_blocks.add(k)
        for i in bdm.r_partitions:
            size_i = bdm.size(k, i)
            if size_i == 0:
                continue
            for j in bdm.s_partitions:
                size_j = bdm.size(k, j)
                if size_j == 0:
                    continue
                tasks.append(MatchTask(k, i, j, size_i * size_j))
    return tasks, frozenset(split_blocks), threshold


class DualBlockSplitJob(MapReduceJob):
    """MR Job 2 for two-source BlockSplit.

    Keys add the source tag; full-key sorting delivers each match
    task's R entities before its S entities, so reduce buffers R and
    streams S (Appendix I-A).
    """

    name = "job2-blocksplit-2src"

    def __init__(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        from .match_tasks import assign_greedy  # local import avoids cycle

        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        tasks, split_blocks, threshold = generate_dual_match_tasks(
            bdm, num_reduce_tasks
        )
        assignment, loads = assign_greedy(tasks, num_reduce_tasks)
        self.tasks = tuple(tasks)
        self.reduce_of = assignment
        self.reduce_comparisons = tuple(loads)
        self.split_blocks = split_blocks
        self.threshold = threshold
        if packed_keys_enabled():
            m = max(1, bdm.num_partitions)
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                m,
                m,
                2,
                field_maps={4: _SOURCE_RANKS},
            )
            # Grouped on (block, i, j) — the mid-span of the sort fields.
            self.packed_projection = PackedProjection.span(codec, 1, 4)

    # -- map phase ---------------------------------------------------------

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        source = bdm.source_of(p)
        if k not in self.split_blocks:
            reduce_index = self.reduce_of.get((k, 0, 0))
            if reduce_index is None:
                return  # block has no cross-source pairs
            emit(DualBlockSplitKey(reduce_index, k, 0, 0, source), value)
            return
        if source == SOURCE_R:
            partner_tasks = [(k, p, j) for j in bdm.occupied_partitions(k, SOURCE_S)]
        else:
            partner_tasks = [(k, i, p) for i in bdm.occupied_partitions(k, SOURCE_R)]
        for block, i, j in partner_tasks:
            reduce_index = self.reduce_of.get((block, i, j))
            if reduce_index is None:
                continue
            emit(DualBlockSplitKey(reduce_index, block, i, j, source), value)

    def partition(self, key: DualBlockSplitKey, num_reduce_tasks: int) -> int:
        return key.reduce_index

    def group_key(self, key: DualBlockSplitKey) -> Any:
        if self.packed_projection is not None:
            return super().group_key(key)
        return (key.block, key.i, key.j)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: DualBlockSplitKey,
        values: Sequence[Entity],
        emit,
        context: TaskContext,
    ) -> None:
        if self.batch_kernel:
            split = _r_prefix_length(entity.source for entity in values)
            if split is not None:
                # R prefix × S suffix — one cross batch.
                prepare = self.matcher.prepare
                prepared = [prepare(e) for e in values]
                run_batched_group(
                    self.matcher,
                    prepared,
                    CrossPairs(split, len(prepared)),
                    emit,
                    context,
                )
                return
            # An R arrived after an S (full-key sort would not produce
            # this): the scalar loop below defines the semantics.
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for entity in values:
            if entity.source == SOURCE_R:
                buffer.append(prepare(entity))
            else:
                p2 = prepare(entity)
                for p1 in buffer:
                    pair = match_prepared(p1, p2)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += len(buffer)
        flush_pair_counters(context, comparisons, matched)


# ---------------------------------------------------------------------------
# Dual-source PairRange (Appendix I-B)
# ---------------------------------------------------------------------------


class DualPairRangeJob(MapReduceJob):
    """MR Job 2 for two-source PairRange.

    Pair enumeration covers every cell of each block's ``NR × NS``
    matrix; keys carry ``range . block . source . entity index`` and
    reduce matches each S entity against the buffered R entities,
    filtering by the task's pair range.
    """

    name = "job2-pairrange-2src"

    def __init__(
        self,
        bdm: DualSourceBDM,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        self.enumeration = DualPairEnumeration(bdm.dual_block_sizes())
        self.spec = PairRangeSpec(self.enumeration.total_pairs, num_reduce_tasks)
        if packed_keys_enabled():
            max_index = max(
                (max(r, s) for r, s in self.enumeration.block_sizes),
                default=1,
            )
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                2,
                max(1, max_index),
                field_maps={2: _SOURCE_RANKS},
            )
            # Grouped on (range_index, block) — the first two sort fields.
            self.packed_projection = PackedProjection.prefix(codec, 2)

    # -- map phase ---------------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        context.next_entity_index = {}  # type: ignore[attr-defined]

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        source = bdm.source_of(p)
        state: dict[int, int] = context.next_entity_index  # type: ignore[attr-defined]
        index = state.get(k)
        if index is None:
            index = bdm.entity_index_offset(k, p)
        state[k] = index + 1
        if bdm.block_pairs(k) == 0:
            return  # one side empty — no cross-source pairs (Figure 15(b))
        if source == SOURCE_R:
            ranges = self.enumeration.relevant_ranges_r(k, index, self.spec)
        else:
            ranges = self.enumeration.relevant_ranges_s(k, index, self.spec)
        for range_index in ranges:
            emit(DualPairRangeKey(range_index, k, source, index), (value, index))

    def partition(self, key: DualPairRangeKey, num_reduce_tasks: int) -> int:
        return key.range_index

    def group_key(self, key: DualPairRangeKey) -> Any:
        if self.packed_projection is not None:
            return super().group_key(key)
        return (key.range_index, key.block)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: DualPairRangeKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        # All R entities precede all S entities ("R" < "S" in the sort)
        # and arrive in ascending R-index order, so the buffered R
        # indexes form a sorted int array.  For each S entity the
        # qualifying R indexes are one contiguous interval (`r_span`,
        # O(1) closed form) — bisect the buffer and walk exactly that
        # slice, as in the one-source PairRange reduce.
        block = key.block
        lo, hi = self.spec.bounds(key.range_index)
        r_span = self.enumeration.r_span
        if self.batch_kernel:
            split = _r_prefix_length(entity.source for entity, _index in values)
            if split is not None:
                # R's occupy positions [0, split), so buffer positions
                # equal prepared positions; each S entity's qualifying
                # R run becomes one index span.
                prepare = self.matcher.prepare
                buffer_x: list[int] = []
                prepared: list = []
                spans: list[tuple[int, int, int]] = []
                for t, (entity, index) in enumerate(values):
                    prepared.append(prepare(entity))
                    if entity.source == SOURCE_R:
                        buffer_x.append(index)
                        continue
                    x_lo, x_hi = r_span(block, index, lo, hi)
                    if x_lo <= x_hi:
                        start, stop = sorted_run_bounds(buffer_x, x_lo, x_hi)
                        if stop > start:
                            spans.append((t, start, stop))
                run_batched_group(
                    self.matcher, prepared, SpanPairs(spans), emit, context
                )
                return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer_x: list[int] = []
        buffer_p: list = []
        for entity, index in values:
            if entity.source == SOURCE_R:
                buffer_x.append(index)
                buffer_p.append(prepare(entity))
                continue
            p2 = prepare(entity)
            x_lo, x_hi = r_span(block, index, lo, hi)
            if x_lo <= x_hi:
                start = bisect_left(buffer_x, x_lo)
                stop = bisect_right(buffer_x, x_hi, start)
                for i in range(start, stop):
                    pair = match_prepared(buffer_p[i], p2)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += stop - start
        flush_pair_counters(context, comparisons, matched)
