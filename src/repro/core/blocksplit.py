"""The BlockSplit strategy (Section IV, Algorithm 1).

Map-task initialisation reads the BDM, creates match tasks and assigns
them greedily to reduce tasks (shared logic in
:mod:`repro.core.match_tasks`).  The map function then routes every
entity to the match task(s) it participates in via composite
``reduce index . block . split`` keys; entities of split blocks are
replicated once per occupied input partition of their block.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..er.batch_kernel import CrossPairs, TrianglePairs
from ..er.blocking import BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext
from ..mapreduce.types import KeyCodec, PackedProjection, packed_keys_enabled
from .bdm import BlockDistributionMatrix
from .keys import BlockSplitKey
from .match_tasks import (
    MatchTaskAssignment,
    leading_run_split,
    plan_block_split,
    run_batched_group,
)


class BlockSplitJob(MapReduceJob):
    """MR Job 2 for BlockSplit.

    Input: Job-1-annotated records ``(blocking key, entity)`` in the
    same partitioning as Job 1 (enforced by the DFS side-output chain).

    Routing:

    * partition — on ``reduce_index`` only;
    * sort / group — on the full key, whose ``(block, i, j)`` component
      identifies the match task (Algorithm 1's comments).  Both
      projections are packed into a single int per key (the key fields
      are all bounded, so the packed ints compare exactly like the
      tuples — see :class:`~repro.mapreduce.types.KeyCodec`).
    """

    name = "job2-blocksplit"

    def __init__(
        self,
        bdm: BlockDistributionMatrix,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        # The paper computes this in every map task's configure(); the
        # computation is deterministic, so hoisting it is equivalent.
        self.assignment: MatchTaskAssignment = plan_block_split(bdm, num_reduce_tasks)
        if packed_keys_enabled():
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                max(1, bdm.num_partitions),
                max(1, bdm.num_partitions),
            )
            # Full-key sort and grouping (the packed form is bijective,
            # so the groups are identical); the base-class sort_key /
            # group_key read this projection.
            self.packed_projection = PackedProjection.full_key(codec)

    # -- map phase ---------------------------------------------------------

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        bdm = self.bdm
        k = bdm.block_index(key)
        p = context.partition_index
        if not self.assignment.is_split(k):
            if bdm.block_pairs(k) == 0:
                return  # singleton block: nothing to compare (line 33)
            reduce_index = self.assignment.task_reduce_index(k, 0, 0)
            emit(BlockSplitKey(reduce_index, k, 0, 0), (value, p))
            return
        for i in range(bdm.num_partitions):
            hi, lo = max(p, i), min(p, i)
            reduce_index = self.assignment.task_reduce_index(k, hi, lo)
            if reduce_index is None:
                continue  # other sub-block is empty — no such match task
            emit(BlockSplitKey(reduce_index, k, hi, lo), (value, p))

    def partition(self, key: BlockSplitKey, num_reduce_tasks: int) -> int:
        return key.reduce_index

    # (reduce_index is constant per task and (block, i, j) determines
    # it, so full key ≡ the paper's k.i.j.)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: BlockSplitKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        if key.i == key.j:
            self._match_self(values, emit, context)
        else:
            self._match_cross(values, emit, context)

    def _match_self(self, values, emit, context: TaskContext) -> None:
        """Self-join: a whole block (``k.*``) or one sub-block (``k.i``)."""
        if self.batch_kernel:
            prepare = self.matcher.prepare
            prepared = [prepare(e) for e, _partition in values]
            run_batched_group(
                self.matcher, prepared, TrianglePairs(len(prepared)), emit, context
            )
            return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for e2, _partition in values:
            p2 = prepare(e2)
            for p1 in buffer:
                pair = match_prepared(p1, p2)
                if pair is not None:
                    matched += 1
                    emit(None, pair)
            comparisons += len(buffer)
            buffer.append(p2)
        flush_pair_counters(context, comparisons, matched)

    def _match_cross(self, values, emit, context: TaskContext) -> None:
        """Cartesian product of two sub-blocks (``k.i×j``).

        Values arrive partition-contiguously (stable shuffle), so the
        first partition index delimits the buffered sub-block —
        Algorithm 1 lines 56-65.
        """
        if self.batch_kernel and values:
            split = leading_run_split([partition for _e, partition in values])
            if split is not None:
                # One buffered run × one streamed run — a cross batch.
                prepare = self.matcher.prepare
                prepared = [prepare(e) for e, _partition in values]
                run_batched_group(
                    self.matcher,
                    prepared,
                    CrossPairs(split, len(prepared)),
                    emit,
                    context,
                )
                return
            # Interleaved partitions (not produced by the stable
            # shuffle): the scalar loop below defines the semantics.
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        iterator = iter(values)
        try:
            first_entity, first_partition = next(iterator)
        except StopIteration:
            return
        buffer = [prepare(first_entity)]
        comparisons = 0
        matched = 0
        for e2, partition in iterator:
            if partition == first_partition:
                buffer.append(prepare(e2))
            else:
                p2 = prepare(e2)
                for p1 in buffer:
                    pair = match_prepared(p1, p2)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += len(buffer)
        flush_pair_counters(context, comparisons, matched)
