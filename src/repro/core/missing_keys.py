"""Matching in the presence of entities without a blocking key.

Section III: "All entities R∅ ⊆ R without blocking key need to be
matched with all entities, i.e., the Cartesian product of R × R∅ needs
to be determined which is a special case of ER between two sources."
Appendix I generalises to two sources:

    matchB(R, S) = matchB(R − R∅, S − S∅)
                 ∪ match⊥(R, S∅)
                 ∪ match⊥(R∅, S − S∅)

This module implements both decompositions on top of the existing
workflows, using :class:`~repro.er.blocking.ConstantBlocking` ("⊥") for
the Cartesian-product legs — so even the degenerate single-block legs
are load-balanced by BlockSplit/PairRange.
"""

from __future__ import annotations

from typing import Sequence

from ..er.blocking import BlockingFunction, ConstantBlocking
from ..er.entity import Entity
from ..er.matching import Matcher, MatchResult, ThresholdMatcher
from ..engine.backend import ExecutionBackend
from ..engine.pipeline import ERPipeline


def split_by_key(
    entities: Sequence[Entity], blocking: BlockingFunction
) -> tuple[list[Entity], list[Entity]]:
    """Partition entities into (keyed, keyless) under ``blocking``."""
    keyed: list[Entity] = []
    keyless: list[Entity] = []
    for entity in entities:
        (keyed if blocking.key_for(entity) is not None else keyless).append(entity)
    return keyed, keyless


def resolve_with_missing_keys(
    entities: Sequence[Entity],
    blocking: BlockingFunction,
    *,
    strategy: str = "blocksplit",
    matcher_factory=None,
    num_map_tasks: int = 2,
    num_reduce_tasks: int = 3,
    backend: ExecutionBackend | str = "serial",
    memory_budget: int | None = None,
    batch_kernel: bool = True,
) -> MatchResult:
    """One-source dedup where some entities lack a blocking key.

    Decomposition: blocked matching of the keyed entities, plus the
    Cartesian product legs ``keyed × keyless`` (two-source with the
    constant key) and ``keyless × keyless`` (one-source with the
    constant key).  Every qualifying pair is compared exactly once.
    """
    factory = matcher_factory if matcher_factory is not None else ThresholdMatcher
    keyed, keyless = split_by_key(entities, blocking)
    result = MatchResult()

    if len(keyed) >= 2:
        pipeline = ERPipeline(
            strategy,
            blocking,
            factory(),
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            backend=backend,
            memory_budget=memory_budget,
            batch_kernel=batch_kernel,
        )
        result.merge(pipeline.run(keyed).matches)

    constant = ConstantBlocking()
    if keyed and keyless:
        cross = ERPipeline(
            strategy,
            constant,
            factory(),
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            backend=backend,
            memory_budget=memory_budget,
            batch_kernel=batch_kernel,
        )
        cross_result = cross.run(
            keyed,
            keyless,
            num_r_partitions=max(1, num_map_tasks // 2),
            num_s_partitions=max(1, num_map_tasks // 2),
        )
        result.merge(_strip_source_retagging(cross_result.matches, keyed, keyless))

    if len(keyless) >= 2:
        within = ERPipeline(
            strategy,
            constant,
            factory(),
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=num_reduce_tasks,
            backend=backend,
            memory_budget=memory_budget,
            batch_kernel=batch_kernel,
        )
        result.merge(within.run(keyless).matches)
    return result


def link_with_missing_keys(
    r_entities: Sequence[Entity],
    s_entities: Sequence[Entity],
    blocking: BlockingFunction,
    *,
    strategy: str = "blocksplit",
    matcher_factory=None,
    num_reduce_tasks: int = 3,
    backend: ExecutionBackend | str = "serial",
    memory_budget: int | None = None,
    batch_kernel: bool = True,
) -> MatchResult:
    """Two-source linkage with keyless entities (Appendix I's union).

    ``matchB(R−R∅, S−S∅) ∪ match⊥(R, S∅) ∪ match⊥(R∅, S−S∅)``.
    """
    factory = matcher_factory if matcher_factory is not None else ThresholdMatcher
    keyed_r, keyless_r = split_by_key(r_entities, blocking)
    keyed_s, keyless_s = split_by_key(s_entities, blocking)
    constant = ConstantBlocking()
    result = MatchResult()

    legs = [
        (keyed_r, keyed_s, blocking),        # matchB(R−R∅, S−S∅)
        (list(r_entities), keyless_s, constant),  # match⊥(R, S∅)
        (keyless_r, keyed_s, constant),      # match⊥(R∅, S−S∅)
    ]
    for r_leg, s_leg, leg_blocking in legs:
        if not r_leg or not s_leg:
            continue
        pipeline = ERPipeline(
            strategy,
            leg_blocking,
            factory(),
            num_reduce_tasks=num_reduce_tasks,
            backend=backend,
            memory_budget=memory_budget,
            batch_kernel=batch_kernel,
        )
        leg_result = pipeline.run(r_leg, s_leg, num_r_partitions=1, num_s_partitions=1)
        result.merge(leg_result.matches)
    return result


def _strip_source_retagging(
    matches: MatchResult, keyed: Sequence[Entity], keyless: Sequence[Entity]
) -> MatchResult:
    """Map the cross leg's temporary R:/S: tags back to original sources.

    Two-source runs re-tag their inputs as R and S; for the one-source
    decomposition both legs are really the same source, so we rewrite
    the qualified ids back to the entities' true source tags.
    """
    from ..er.matching import MatchPair

    true_source = {}
    for entity in keyed:
        true_source[("R", entity.entity_id)] = entity.source
    for entity in keyless:
        true_source[("S", entity.entity_id)] = entity.source

    def rewrite(qualified: str) -> str:
        tag, _, entity_id = qualified.partition(":")
        return f"{true_source.get((tag, entity_id), tag)}:{entity_id}"

    rewritten = MatchResult()
    for pair in matches:
        a, b = sorted((rewrite(pair.id1), rewrite(pair.id2)))
        rewritten.add(MatchPair(a, b, pair.similarity))
    return rewritten
