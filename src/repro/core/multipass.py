"""Multi-pass blocking (the paper's future work, Section VIII).

Multi-pass blocking assigns *several* blocking keys per entity (e.g.
title prefix in one pass, manufacturer in another) so that true matches
missed by one key can be caught by another.  The natural MR realisation
keeps the machinery of this library unchanged: each pass's key is
tagged with its pass index, the tagged keys define disjoint block
universes, and the existing strategies balance the union of all blocks.

Two entities sharing keys in several passes are co-located in several
blocks; the pair is then *compared* once per shared block.  The
``deduplicate`` flag reports how much work that redundancy costs (the
paper notes advanced signature schemes avoid it); the match *result* is
set-valued and therefore always duplicate-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..er.blocking import BlockingFunction, CallableBlocking, MultiPassBlocking
from ..er.entity import Entity
from ..er.matching import Matcher, MatchResult, ThresholdMatcher
from ..engine.backend import ExecutionBackend
from ..engine.pipeline import ERPipeline
from ..engine.result import PipelineResult


@dataclass(frozen=True, slots=True)
class MultiPassResult:
    """Outcome of a multi-pass ER run."""

    matches: MatchResult
    pass_results: tuple[PipelineResult, ...]
    total_comparisons: int
    redundant_comparisons: int

    @property
    def num_passes(self) -> int:
        return len(self.pass_results)


class MultiPassERWorkflow:
    """Run one load-balanced ER workflow per blocking pass and merge.

    Each pass is an independent two-job workflow over the same input
    (mirroring how a Hadoop deployment would chain one job pair per
    pass); results are unioned.  Redundant comparisons — pairs
    co-blocked by more than one pass — are counted by comparing the
    union of per-pass candidate sets against their sum.
    """

    def __init__(
        self,
        strategy: str,
        blocking: MultiPassBlocking,
        matcher_factory=None,
        *,
        num_map_tasks: int = 2,
        num_reduce_tasks: int = 3,
        backend: ExecutionBackend | str = "serial",
    ):
        self.strategy = strategy
        self.blocking = blocking
        self._matcher_factory = (
            matcher_factory if matcher_factory is not None else ThresholdMatcher
        )
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.backend = backend

    def run(self, entities: Sequence[Entity]) -> MultiPassResult:
        matches = MatchResult()
        pass_results: list[PipelineResult] = []
        total_comparisons = 0
        candidate_union: set[tuple[object, object]] = set()
        for index, blocking_pass in enumerate(self.blocking.passes):
            pipeline = ERPipeline(
                self.strategy,
                _tagged(blocking_pass, index),
                self._matcher_factory(),
                num_map_tasks=self.num_map_tasks,
                num_reduce_tasks=self.num_reduce_tasks,
                backend=self.backend,
            )
            result = pipeline.run(list(entities))
            pass_results.append(result)
            matches.merge(result.matches)
            total_comparisons += result.total_comparisons()
            candidate_union |= _candidate_pairs(entities, blocking_pass)
        redundant = total_comparisons - len(candidate_union)
        return MultiPassResult(
            matches=matches,
            pass_results=tuple(pass_results),
            total_comparisons=total_comparisons,
            redundant_comparisons=redundant,
        )


def _tagged(blocking: BlockingFunction, pass_index: int) -> BlockingFunction:
    """Tag a pass's keys so passes never share blocks."""

    def key_for(entity: Entity):
        key = blocking.key_for(entity)
        if key is None:
            return None
        return (pass_index, key)

    return CallableBlocking(key_for, name=f"pass-{pass_index}")


def _candidate_pairs(
    entities: Sequence[Entity], blocking: BlockingFunction
) -> set[tuple[object, object]]:
    pairs: set[tuple[object, object]] = set()
    for block in blocking.partition_entities(entities).values():
        ids = sorted(e.qualified_id for e in block)
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                pairs.add((a, b))
    return pairs
