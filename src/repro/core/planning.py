"""Analytic strategy planners.

For every strategy, compute — from the BDM alone, without running the
matching job or materialising a single pair — exactly the quantities
the evaluation figures need:

* per-reduce-task comparison counts (load balance, Figures 9-11, 13, 14),
* per-reduce-task input KV counts (shuffle volume),
* per-map-task output KV counts (Figure 12),

plus the Job 1 (BDM) task workloads for end-to-end time simulation.

The planners are exact mirrors of the executing jobs; the test suite
asserts planner == executor on every counter for random inputs.  This
is what makes DS2-scale (1.4 M entities, ~10⁹ pairs) figure
reproduction feasible in seconds.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence

from ..mapreduce.job import stable_hash
from .bdm import BlockDistributionMatrix
from .enumeration import (
    PairRangeSpec,
    block_pair_count,
    dual_entities_in_cell_interval,
    entities_in_cell_interval,
    interval_total,
)
from .match_tasks import plan_block_split
from .two_source import SOURCE_R, SOURCE_S, DualSourceBDM, generate_dual_match_tasks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .delta import DeltaBDM


@dataclass(frozen=True, slots=True)
class StrategyPlan:
    """Predicted workload of Job 2 under one strategy.

    All lists are per-task; ``map_output_kv[i]`` is what map task ``i``
    emits, ``reduce_comparisons[t]`` what reduce task ``t`` compares.
    """

    strategy: str
    num_map_tasks: int
    num_reduce_tasks: int
    total_pairs: int
    map_input_records: tuple[int, ...]
    map_output_kv: tuple[int, ...]
    reduce_input_kv: tuple[int, ...]
    reduce_comparisons: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.map_input_records) != self.num_map_tasks:
            raise ValueError("map_input_records length != num_map_tasks")
        if len(self.map_output_kv) != self.num_map_tasks:
            raise ValueError("map_output_kv length != num_map_tasks")
        if len(self.reduce_input_kv) != self.num_reduce_tasks:
            raise ValueError("reduce_input_kv length != num_reduce_tasks")
        if len(self.reduce_comparisons) != self.num_reduce_tasks:
            raise ValueError("reduce_comparisons length != num_reduce_tasks")

    @property
    def total_map_output_kv(self) -> int:
        """The y-axis of Figure 12."""
        return sum(self.map_output_kv)

    @property
    def total_comparisons(self) -> int:
        return sum(self.reduce_comparisons)

    @property
    def max_reduce_comparisons(self) -> int:
        return max(self.reduce_comparisons) if self.reduce_comparisons else 0

    @property
    def replication_factor(self) -> float:
        """Map output KV per input entity (1.0 = no replication)."""
        entities = sum(self.map_input_records)
        if entities == 0:
            return 0.0
        return self.total_map_output_kv / entities


class _AnyBdm(Protocol):
    def partition_sizes(self) -> list[int]: ...


def _map_inputs(bdm: _AnyBdm, map_input_records: Sequence[int] | None) -> tuple[int, ...]:
    """Job 2's map input is Job 1's annotated output: the keyed entities
    per partition.  Callers may override (e.g. raw inputs with keyless
    entities for the stand-alone Basic job)."""
    if map_input_records is not None:
        return tuple(map_input_records)
    return tuple(bdm.partition_sizes())


# ---------------------------------------------------------------------------
# Basic
# ---------------------------------------------------------------------------


def plan_basic(
    bdm: BlockDistributionMatrix,
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Basic: hash the blocking key, ship whole blocks.

    Mirrors :class:`~repro.core.basic.BasicMatchJob`: map output equals
    the keyed input (no replication); each block's entities and pairs
    land on ``stable_hash(block key) % r``.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    reduce_kv = [0] * num_reduce_tasks
    reduce_comps = [0] * num_reduce_tasks
    for k in range(bdm.num_blocks):
        target = stable_hash(bdm.key_of(k)) % num_reduce_tasks
        reduce_kv[target] += bdm.size(k)
        reduce_comps[target] += bdm.block_pairs(k)
    map_inputs = _map_inputs(bdm, map_input_records)
    return StrategyPlan(
        strategy="basic",
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=bdm.pairs(),
        map_input_records=map_inputs,
        map_output_kv=tuple(bdm.partition_sizes()),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(reduce_comps),
    )


# ---------------------------------------------------------------------------
# BlockSplit
# ---------------------------------------------------------------------------


def plan_blocksplit(
    bdm: BlockDistributionMatrix,
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """BlockSplit: match-task generation + greedy assignment.

    Uses the very same :func:`~repro.core.match_tasks.plan_block_split`
    the executing job uses, then derives shuffle volumes:

    * unsplit block with pairs: every entity shipped once;
    * split block: every entity shipped once per occupied partition of
      its block (sub-block self-task + cross tasks).
    """
    assignment = plan_block_split(bdm, num_reduce_tasks)
    m = bdm.num_partitions
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * m
    for task in assignment.tasks:
        target = assignment.reduce_of[task.key]
        k = task.block
        if task.is_whole_block and not assignment.is_split(k):
            if task.comparisons == 0:
                continue  # singleton block suppressed by map
            reduce_kv[target] += bdm.size(k)
        elif task.is_cross_product:
            reduce_kv[target] += bdm.size(k, task.i) + bdm.size(k, task.j)
        else:
            reduce_kv[target] += bdm.size(k, task.i)
    for k in range(bdm.num_blocks):
        if assignment.is_split(k):
            occupied = len(bdm.occupied_partitions(k))
            for p in range(m):
                map_out[p] += bdm.size(k, p) * occupied
        elif bdm.block_pairs(k) > 0:
            for p in range(m):
                map_out[p] += bdm.size(k, p)
    return StrategyPlan(
        strategy="blocksplit",
        num_map_tasks=m,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=bdm.pairs(),
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=assignment.reduce_comparisons,
    )


# ---------------------------------------------------------------------------
# PairRange
# ---------------------------------------------------------------------------


def _block_range_overlaps(
    offsets: Sequence[int], spec: PairRangeSpec
) -> list[tuple[int, int, int, int]]:
    """All (block, range, local_lo, local_hi) overlaps.

    ``offsets`` is the blocks' cumulative pair-count prefix (length
    b+1).  Local cell bounds are inclusive and relative to the block.
    Runs in O(b + r) — merge-scan of two sorted interval lists.
    """
    overlaps: list[tuple[int, int, int, int]] = []
    total = offsets[-1]
    if total == 0:
        return overlaps
    ppr = spec.pairs_per_range
    for block in range(len(offsets) - 1):
        lo, hi = offsets[block], offsets[block + 1] - 1
        if hi < lo:
            continue
        first_range = lo // ppr
        last_range = hi // ppr
        for range_index in range(first_range, last_range + 1):
            range_lo = range_index * ppr
            range_hi = min(range_lo + ppr, total) - 1
            cell_lo = max(lo, range_lo) - lo
            cell_hi = min(hi, range_hi) - lo
            overlaps.append((block, range_index, cell_lo, cell_hi))
    return overlaps


def _partition_slice_counts(
    cumulative: Sequence[int], intervals: Sequence[tuple[int, int]]
) -> dict[int, int]:
    """Distribute entity-index intervals over partition slices.

    ``cumulative`` is the per-partition entity-count prefix for one
    block (length m+1): partition ``p`` owns indexes
    ``[cumulative[p], cumulative[p+1])``.  Returns partition → count of
    covered indexes.
    """
    counts: dict[int, int] = {}
    for lo, hi in intervals:
        p = bisect_right(cumulative, lo) - 1
        while p < len(cumulative) - 1 and cumulative[p] <= hi:
            slice_lo = max(lo, cumulative[p])
            slice_hi = min(hi, cumulative[p + 1] - 1)
            if slice_hi >= slice_lo:
                counts[p] = counts.get(p, 0) + slice_hi - slice_lo + 1
            p += 1
    return counts


def plan_pairrange(
    bdm: BlockDistributionMatrix,
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """PairRange: equal contiguous pair ranges.

    Comparison counts follow directly from the range arithmetic; KV
    counts use the interval algebra of
    :func:`~repro.core.enumeration.entities_in_cell_interval` — an
    entity is shipped to range k iff it participates in at least one of
    the range's pairs.
    """
    total = bdm.pairs()
    spec = PairRangeSpec(total, num_reduce_tasks)
    sizes = bdm.block_sizes()
    offsets = [0]
    for n in sizes:
        offsets.append(offsets[-1] + block_pair_count(n))

    reduce_comps = spec.sizes()
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * bdm.num_partitions

    # Per-block per-partition cumulative entity counts (for map output).
    for block, range_index, cell_lo, cell_hi in _block_range_overlaps(offsets, spec):
        n = sizes[block]
        intervals = entities_in_cell_interval(n, cell_lo, cell_hi)
        reduce_kv[range_index] += interval_total(intervals)
        cumulative = [0]
        for p in range(bdm.num_partitions):
            cumulative.append(cumulative[-1] + bdm.size(block, p))
        for p, count in _partition_slice_counts(cumulative, intervals).items():
            map_out[p] += count
    return StrategyPlan(
        strategy="pairrange",
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=total,
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(reduce_comps),
    )


# ---------------------------------------------------------------------------
# Two-source planners
# ---------------------------------------------------------------------------


def plan_dual_blocksplit(
    bdm: DualSourceBDM,
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Two-source BlockSplit plan (Appendix I-A)."""
    from .match_tasks import assign_greedy

    tasks, split_blocks, _threshold = generate_dual_match_tasks(bdm, num_reduce_tasks)
    assignment, loads = assign_greedy(tasks, num_reduce_tasks)
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * bdm.num_partitions
    for task in tasks:
        target = assignment[task.key]
        k = task.block
        if task.key[1:] == (0, 0) and k not in split_blocks:
            reduce_kv[target] += bdm.size_r(k) + bdm.size_s(k)
        else:
            reduce_kv[target] += bdm.size(k, task.i) + bdm.size(k, task.j)
    for k in range(bdm.num_blocks):
        if bdm.block_pairs(k) == 0:
            continue
        if k in split_blocks:
            occupied_r = len(bdm.occupied_partitions(k, SOURCE_R))
            occupied_s = len(bdm.occupied_partitions(k, SOURCE_S))
            for p in bdm.r_partitions:
                map_out[p] += bdm.size(k, p) * occupied_s
            for p in bdm.s_partitions:
                map_out[p] += bdm.size(k, p) * occupied_r
        else:
            for p in range(bdm.num_partitions):
                map_out[p] += bdm.size(k, p)
    return StrategyPlan(
        strategy="blocksplit-2src",
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=bdm.pairs(),
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(loads),
    )


def plan_dual_pairrange(
    bdm: DualSourceBDM,
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Two-source PairRange plan (Appendix I-B)."""
    dual_sizes = bdm.dual_block_sizes()
    total = bdm.pairs()
    spec = PairRangeSpec(total, num_reduce_tasks)
    offsets = [0]
    for n_r, n_s in dual_sizes:
        offsets.append(offsets[-1] + n_r * n_s)

    reduce_comps = spec.sizes()
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * bdm.num_partitions

    for block, range_index, cell_lo, cell_hi in _block_range_overlaps(offsets, spec):
        n_r, n_s = dual_sizes[block]
        r_intervals, s_intervals = dual_entities_in_cell_interval(
            n_r, n_s, cell_lo, cell_hi
        )
        reduce_kv[range_index] += interval_total(r_intervals) + interval_total(
            s_intervals
        )
        cumulative_r = [0]
        for p in bdm.r_partitions:
            cumulative_r.append(cumulative_r[-1] + bdm.size(block, p))
        cumulative_s = [0]
        for p in bdm.s_partitions:
            cumulative_s.append(cumulative_s[-1] + bdm.size(block, p))
        for local_p, count in _partition_slice_counts(cumulative_r, r_intervals).items():
            map_out[bdm.r_partitions[local_p]] += count
        for local_p, count in _partition_slice_counts(cumulative_s, s_intervals).items():
            map_out[bdm.s_partitions[local_p]] += count
    return StrategyPlan(
        strategy="pairrange-2src",
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=total,
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(reduce_comps),
    )


# ---------------------------------------------------------------------------
# Incremental (delta) planners
# ---------------------------------------------------------------------------


def plan_delta_basic(
    bdm: "DeltaBDM",
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Delta Basic plan: mirrors :class:`~repro.core.delta.DeltaBasicJob`.

    Blocks with no remaining pairs are suppressed by the map, so they
    contribute neither shuffle volume nor comparisons; everything else
    routes like the plain Basic job, but the comparison count per block
    is ``T(n) − T(o)``.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    m = bdm.num_partitions
    reduce_kv = [0] * num_reduce_tasks
    reduce_comps = [0] * num_reduce_tasks
    map_out = [0] * m
    for k in range(bdm.num_blocks):
        pairs = bdm.block_pairs(k)
        if pairs == 0:
            continue
        target = stable_hash(bdm.key_of(k)) % num_reduce_tasks
        reduce_kv[target] += bdm.size(k)
        reduce_comps[target] += pairs
        for p in range(m):
            map_out[p] += bdm.size(k, p)
    return StrategyPlan(
        strategy="basic-delta",
        num_map_tasks=m,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=bdm.pairs(),
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(reduce_comps),
    )


def plan_delta_blocksplit(
    bdm: "DeltaBDM",
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Delta BlockSplit plan: the same
    :func:`~repro.core.delta.generate_delta_match_tasks` + greedy
    assignment the executing job uses, with shuffle volumes derived
    from which tasks each partition's entities feed:

    * unsplit block with remaining pairs: every entity shipped once;
    * split block: an *old* entity feeds one cross task per occupied
      new partition; a *new* entity feeds its self task plus one cross
      task per other occupied partition — once per occupied partition
      in total.
    """
    from .delta import generate_delta_match_tasks
    from .match_tasks import assign_greedy

    tasks, split_blocks, _threshold = generate_delta_match_tasks(
        bdm, num_reduce_tasks
    )
    assignment, loads = assign_greedy(tasks, num_reduce_tasks)
    m = bdm.num_partitions
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * m
    for task in tasks:
        target = assignment[task.key]
        k = task.block
        if task.is_whole_block and k not in split_blocks:
            reduce_kv[target] += bdm.size(k)
        elif task.is_cross_product:
            reduce_kv[target] += bdm.size(k, task.i) + bdm.size(k, task.j)
        else:
            reduce_kv[target] += bdm.size(k, task.i)
    for k in range(bdm.num_blocks):
        if bdm.block_pairs(k) == 0:
            continue
        if k in split_blocks:
            occupied = bdm.occupied_partitions(k)
            occupied_new = sum(1 for p in occupied if bdm.is_new_partition(p))
            for p in range(m):
                fan_out = len(occupied) if bdm.is_new_partition(p) else occupied_new
                map_out[p] += bdm.size(k, p) * fan_out
        else:
            for p in range(m):
                map_out[p] += bdm.size(k, p)
    return StrategyPlan(
        strategy="blocksplit-delta",
        num_map_tasks=m,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=bdm.pairs(),
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(loads),
    )


def plan_delta_pairrange(
    bdm: "DeltaBDM",
    num_reduce_tasks: int,
    *,
    map_input_records: Sequence[int] | None = None,
) -> StrategyPlan:
    """Delta PairRange plan: equal contiguous ranges over the
    ``T(n) − T(o)`` remaining pairs; KV counts via the delta interval
    algebra (:func:`~repro.core.delta.delta_entities_in_cell_interval`)
    — an entity is shipped to a range iff it participates in at least
    one of the range's remaining pairs."""
    from .delta import delta_entities_in_cell_interval, delta_pair_count

    delta_sizes = bdm.delta_block_sizes()
    total = bdm.pairs()
    spec = PairRangeSpec(total, num_reduce_tasks)
    offsets = [0]
    for old, n in delta_sizes:
        offsets.append(offsets[-1] + delta_pair_count(old, n))

    reduce_comps = spec.sizes()
    reduce_kv = [0] * num_reduce_tasks
    map_out = [0] * bdm.num_partitions

    for block, range_index, cell_lo, cell_hi in _block_range_overlaps(offsets, spec):
        old, n = delta_sizes[block]
        intervals = delta_entities_in_cell_interval(old, n, cell_lo, cell_hi)
        reduce_kv[range_index] += interval_total(intervals)
        cumulative = [0]
        for p in range(bdm.num_partitions):
            cumulative.append(cumulative[-1] + bdm.size(block, p))
        for p, count in _partition_slice_counts(cumulative, intervals).items():
            map_out[p] += count
    return StrategyPlan(
        strategy="pairrange-delta",
        num_map_tasks=bdm.num_partitions,
        num_reduce_tasks=num_reduce_tasks,
        total_pairs=total,
        map_input_records=_map_inputs(bdm, map_input_records),
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        reduce_comparisons=tuple(reduce_comps),
    )


# ---------------------------------------------------------------------------
# Job 1 (BDM computation) workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BdmJobPlan:
    """Predicted workload of Job 1 for time simulation."""

    map_input_records: tuple[int, ...]
    map_output_kv: tuple[int, ...]
    reduce_input_kv: tuple[int, ...]
    num_reduce_tasks: int

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_input_records)


def plan_bdm_job(
    bdm: BlockDistributionMatrix | DualSourceBDM,
    num_reduce_tasks: int,
    *,
    use_combiner: bool = True,
    raw_partition_sizes: Sequence[int] | None = None,
) -> BdmJobPlan:
    """Workload of the BDM job itself.

    With the combiner, map task ``p`` emits one KV per *distinct block*
    present in its partition; without it, one KV per entity.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    m = bdm.num_partitions
    partition_sizes = bdm.partition_sizes()
    inputs = tuple(
        raw_partition_sizes if raw_partition_sizes is not None else partition_sizes
    )
    if len(inputs) != m:
        raise ValueError(f"expected {m} raw partition sizes, got {len(inputs)}")
    map_out = [0] * m
    reduce_kv = [0] * num_reduce_tasks
    for k in range(bdm.num_blocks):
        target = stable_hash(bdm.key_of(k)) % num_reduce_tasks
        for p in range(m):
            size = bdm.size(k, p)
            if size == 0:
                continue
            emitted = 1 if use_combiner else size
            map_out[p] += emitted
            reduce_kv[target] += emitted
    return BdmJobPlan(
        map_input_records=inputs,
        map_output_kv=tuple(map_out),
        reduce_input_kv=tuple(reduce_kv),
        num_reduce_tasks=num_reduce_tasks,
    )
