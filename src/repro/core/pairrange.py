"""The PairRange strategy (Section V, Algorithm 2).

Entities are globally enumerated per block (the BDM supplies the
cross-partition offsets); all pairs are virtually enumerated column-wise
and divided into ``r`` near-equal contiguous ranges.  Map sends each
entity to every range it participates in; reduce re-derives each pair's
index and evaluates exactly those pairs falling into its own range.
"""

from __future__ import annotations

from typing import Sequence

from ..er.blocking import BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import StandardCounter
from ..mapreduce.job import MapReduceJob, TaskContext
from .bdm import BlockDistributionMatrix
from .enumeration import PairEnumeration, PairRangeSpec
from .keys import PairRangeKey


class PairRangeJob(MapReduceJob):
    """MR Job 2 for PairRange.

    Input: Job-1-annotated records ``(blocking key, entity)`` in Job 1's
    partitioning.

    Routing (Algorithm 2's comments):

    * partition — on ``range_index`` only;
    * sort — full key (entities arrive in entity-index order);
    * group — on ``(range_index, block)``.

    Erratum note: Algorithm 2's reduce aborts the whole reduce call
    (``return``) once a pair index exceeds the task's range.  Pair
    indexes are monotone only *within* one buffer scan, not across
    them, so a later entity may still contribute in-range pairs; we
    ``break`` the inner scan instead (see DESIGN.md).
    """

    name = "job2-pairrange"

    def __init__(
        self,
        bdm: BlockDistributionMatrix,
        matcher: Matcher,
        num_reduce_tasks: int,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.enumeration = PairEnumeration(bdm.block_sizes())
        self.spec = PairRangeSpec(self.enumeration.total_pairs, num_reduce_tasks)

    # -- map phase ---------------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        # entityIndex[i] starts at the number of entities of block i in
        # all partitions preceding this one (Algorithm 2 lines 4-8),
        # computed lazily per block actually seen.
        context.next_entity_index = {}  # type: ignore[attr-defined]

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        k = self.bdm.block_index(key)
        state: dict[int, int] = context.next_entity_index  # type: ignore[attr-defined]
        x = state.get(k)
        if x is None:
            x = self.bdm.entity_index_offset(k, context.partition_index)
        state[k] = x + 1
        if self.bdm.size(k) < 2:
            return  # no pairs — Algorithm 2's edge case (see DESIGN.md)
        for range_index in self.enumeration.relevant_ranges(k, x, self.spec):
            emit(PairRangeKey(range_index, k, x), (value, x))

    def partition(self, key: PairRangeKey, num_reduce_tasks: int) -> int:
        return key.range_index

    def group_key(self, key: PairRangeKey) -> tuple[int, int]:
        return (key.range_index, key.block)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: PairRangeKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        task_range = key.range_index
        block = key.block
        enumeration = self.enumeration
        spec = self.spec
        buffer: list[tuple[Entity, int]] = []
        for e2, x2 in values:
            for e1, x1 in buffer:
                pair_index = enumeration.pair_index(block, x1, x2)
                pair_range = spec.range_of(pair_index)
                if pair_range == task_range:
                    context.counters.increment(StandardCounter.PAIR_COMPARISONS)
                    pair = self.matcher.match(e1, e2)
                    if pair is not None:
                        context.counters.increment(StandardCounter.PAIRS_MATCHED)
                        emit(None, pair)
                elif pair_range > task_range:
                    # Within one scan pair indexes grow with x1; all
                    # remaining buffered entities are past the range.
                    break
            buffer.append((e2, x2))
