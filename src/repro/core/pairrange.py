"""The PairRange strategy (Section V, Algorithm 2).

Entities are globally enumerated per block (the BDM supplies the
cross-partition offsets); all pairs are virtually enumerated column-wise
and divided into ``r`` near-equal contiguous ranges.  Map sends each
entity to every range it participates in; reduce re-derives each pair's
index and evaluates exactly those pairs falling into its own range.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Sequence

from ..er.batch_kernel import SpanPairs
from ..er.blocking import BlockKey
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext
from ..mapreduce.types import KeyCodec, PackedProjection, packed_keys_enabled
from .bdm import BlockDistributionMatrix
from .enumeration import PairEnumeration, PairRangeSpec, sorted_run_bounds
from .keys import PairRangeKey
from .match_tasks import run_batched_group


class PairRangeJob(MapReduceJob):
    """MR Job 2 for PairRange.

    Input: Job-1-annotated records ``(blocking key, entity)`` in Job 1's
    partitioning.

    Routing (Algorithm 2's comments):

    * partition — on ``range_index`` only;
    * sort — full key (entities arrive in entity-index order);
    * group — on ``(range_index, block)``.

    Erratum note: Algorithm 2's reduce aborts the whole reduce call
    (``return``) once a pair index exceeds the task's range.  Pair
    indexes are monotone only *within* one buffer scan, not across
    them, so a later entity may still contribute in-range pairs; we
    restrict each scan to exactly the in-range run of buffered indexes
    (:meth:`~repro.core.enumeration.PairEnumeration.row_span`), the
    interval form of the original per-pair ``break`` (see DESIGN.md).
    """

    name = "job2-pairrange"

    def __init__(
        self,
        bdm: BlockDistributionMatrix,
        matcher: Matcher,
        num_reduce_tasks: int,
        *,
        batch_kernel: bool = False,
    ):
        self.bdm = bdm
        self.matcher = matcher
        self.num_reduce_tasks = num_reduce_tasks
        self.batch_kernel = batch_kernel
        self.enumeration = PairEnumeration(bdm.block_sizes())
        self.spec = PairRangeSpec(self.enumeration.total_pairs, num_reduce_tasks)
        if packed_keys_enabled():
            sizes = self.enumeration.block_sizes
            codec = KeyCodec(
                max(1, num_reduce_tasks),
                max(1, bdm.num_blocks),
                max(1, max(sizes, default=1)),
            )
            # Grouped on (range_index, block) — the first two sort fields.
            self.packed_projection = PackedProjection.prefix(codec, 2)

    # -- map phase ---------------------------------------------------------

    def configure_map(self, context: TaskContext) -> None:
        # entityIndex[i] starts at the number of entities of block i in
        # all partitions preceding this one (Algorithm 2 lines 4-8),
        # computed lazily per block actually seen.
        context.next_entity_index = {}  # type: ignore[attr-defined]

    def map(self, key: BlockKey, value: Entity, emit, context: TaskContext) -> None:
        k = self.bdm.block_index(key)
        state: dict[int, int] = context.next_entity_index  # type: ignore[attr-defined]
        x = state.get(k)
        if x is None:
            x = self.bdm.entity_index_offset(k, context.partition_index)
        state[k] = x + 1
        if self.bdm.size(k) < 2:
            return  # no pairs — Algorithm 2's edge case (see DESIGN.md)
        for range_index in self.enumeration.relevant_ranges(k, x, self.spec):
            emit(PairRangeKey(range_index, k, x), (value, x))

    def partition(self, key: PairRangeKey, num_reduce_tasks: int) -> int:
        return key.range_index

    def group_key(self, key: PairRangeKey) -> Any:
        if self.packed_projection is not None:
            return super().group_key(key)
        return (key.range_index, key.block)

    # -- reduce phase ----------------------------------------------------------

    def reduce(
        self,
        key: PairRangeKey,
        values: Sequence[tuple[Entity, int]],
        emit,
        context: TaskContext,
    ) -> None:
        # Entities arrive in ascending entity-index order (full-key
        # sort), so the buffered indexes form a sorted int array.  For
        # each incoming entity the qualifying partners are one
        # contiguous run of that array (`row_span`): two binary
        # searches replace the old per-pair index/range computation,
        # and the slice is walked as plain ints — the same pairs, in
        # the same order, with zero per-pair arithmetic.
        block = key.block
        enumeration = self.enumeration
        lo, hi = self.spec.bounds(key.range_index)
        if self.batch_kernel:
            # Same two binary searches per entity, but the in-range runs
            # are recorded as (entity, start, stop) index spans instead
            # of walked pair by pair; one `match_batch` call scores the
            # whole group.
            row_span = enumeration.row_span
            prepare = self.matcher.prepare
            buffer_x: list[int] = []
            prepared: list = []
            spans: list[tuple[int, int, int]] = []
            for t, (e2, x2) in enumerate(values):
                prepared.append(prepare(e2))
                x_lo, x_hi = row_span(block, x2, lo, hi)
                if x_lo <= x_hi:
                    start, stop = sorted_run_bounds(buffer_x, x_lo, x_hi)
                    if stop > start:
                        spans.append((t, start, stop))
                buffer_x.append(x2)
            run_batched_group(self.matcher, prepared, SpanPairs(spans), emit, context)
            return
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        row_span = enumeration.row_span
        comparisons = 0
        matched = 0
        buffer_x: list[int] = []
        buffer_p: list = []
        for e2, x2 in values:
            p2 = prepare(e2)
            x_lo, x_hi = row_span(block, x2, lo, hi)
            if x_lo <= x_hi:
                start = bisect_left(buffer_x, x_lo)
                stop = bisect_right(buffer_x, x_hi, start)
                for i in range(start, stop):
                    pair = match_prepared(buffer_p[i], p2)
                    if pair is not None:
                        matched += 1
                        emit(None, pair)
                comparisons += stop - start
            buffer_x.append(x2)
            buffer_p.append(p2)
        flush_pair_counters(context, comparisons, matched)
