"""MapReduce-based Sorted Neighborhood (SN) blocking.

The paper's related work (its reference [11] — the authors' own
"Multi-pass Sorted Neighborhood Blocking with MapReduce") uses a
different candidate definition: entities are *sorted* by a sorting key
and every pair within a sliding window of size ``w`` is compared
(i.e. pairs at sort distance ≤ w−1).  SN is "by design less vulnerable
to skewed data" because the work per entity is bounded by ``w``
regardless of key-value frequencies; the trade-off is that candidates
are defined by rank adjacency rather than key equality.

MR realisation (the JobSN scheme):

1. a cheap pre-pass computes the global sort order's r-quantile
   boundaries (and the partition offsets);
2. the SN job range-partitions entities by sorting key, each reduce
   task slides the window over its sorted run, and additionally emits
   its first/last ``w−1`` entities as tagged *boundary* records;
3. a tiny driver pass compares boundary records of adjacent partitions
   (pairs at global sort distance < w that straddle a partition cut).

Implemented here for completeness of the paper's design space and used
by ``benchmarks/bench_sorted_neighborhood.py`` to contrast SN's
bounded-by-construction balance with BlockSplit/PairRange.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..er.entity import Entity
from ..er.matching import Matcher, MatchResult
from ..mapreduce.counters import StandardCounter, flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext
from ..mapreduce.runtime import JobResult, LocalRuntime
from ..mapreduce.types import Partition, make_partitions

SortKeyFn = Callable[[Entity], Any]


@dataclass(frozen=True, slots=True)
class SnPlan:
    """Range-partitioning metadata computed by the pre-pass.

    ``boundaries[i]`` is the first sort key of reduce partition ``i+1``;
    ``offsets[i]`` is the global rank of partition ``i``'s first entity.
    """

    boundaries: tuple[tuple[Any, str], ...]
    offsets: tuple[int, ...]
    total: int

    @property
    def num_partitions(self) -> int:
        return len(self.offsets)


@dataclass(frozen=True, slots=True)
class SnResult:
    """Outcome of one SN run."""

    matches: MatchResult
    window: int
    comparisons: int
    boundary_comparisons: int
    reduce_comparisons: tuple[int, ...]
    job: JobResult


def compute_sn_plan(
    entities: Sequence[Entity], sort_key: SortKeyFn, num_reduce_tasks: int
) -> SnPlan:
    """Pre-pass: exact r-quantile cut points of the global sort order.

    A production deployment estimates these from a sample (as [17] does
    for theta-joins); in-process we can afford the exact order.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    ordered = sorted(
        ((sort_key(e), e.qualified_id) for e in entities)
    )
    total = len(ordered)
    base, extra = divmod(total, num_reduce_tasks)
    offsets = []
    boundaries = []
    position = 0
    for i in range(num_reduce_tasks):
        offsets.append(position)
        position += base + (1 if i < extra else 0)
        if i < num_reduce_tasks - 1 and position < total:
            boundaries.append(ordered[position])
    return SnPlan(tuple(boundaries), tuple(offsets), total)


class SortedNeighborhoodJob(MapReduceJob):
    """The SN matching job.

    map
        emits ``((sort key, entity id), entity)``; the composite key
        makes ties deterministic.
    partition
        range partitioning against the pre-pass boundaries.
    reduce
        slides the window over its sorted run, emitting
        ``("match", pair)`` records; the first/last ``w−1`` entities are
        re-emitted as ``("boundary", (global rank, reduce index,
        entity))`` records for the driver's stitching pass.
    """

    name = "sorted-neighborhood"

    def __init__(
        self,
        plan: SnPlan,
        sort_key: SortKeyFn,
        matcher: Matcher,
        window: int,
    ):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.plan = plan
        # Note: named _fn to avoid shadowing MapReduceJob.sort_key, the
        # engine's sort-projection hook.
        self.sort_key_fn = sort_key
        self.matcher = matcher
        self.window = window

    def map(self, key: Any, value: Entity, emit, context: TaskContext) -> None:
        emit((self.sort_key_fn(value), value.qualified_id), value)

    def partition(self, key: tuple, num_reduce_tasks: int) -> int:
        # A key equal to boundary i is the first key of partition i+1,
        # hence bisect_right.
        return bisect_right(self.plan.boundaries, key)

    def reduce(self, key: tuple, values: Sequence[Entity], emit, context) -> None:
        # Grouping on the full composite key gives one call per entity;
        # buffer the window in the context across calls.  The window
        # holds prepared entities so attribute extraction runs once per
        # entity, not once per window pair.
        state = getattr(context, "sn_state", None)
        if state is None:
            state = {"window": [], "run": []}
            context.sn_state = state  # type: ignore[attr-defined]
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        window = state["window"]
        comparisons = 0
        matched = 0
        for entity in values:
            prepared = prepare(entity)
            for other in window:
                pair = match_prepared(other, prepared)
                if pair is not None:
                    matched += 1
                    emit(None, ("match", pair))
            comparisons += len(window)
            window.append(prepared)
            if len(window) > self.window - 1:
                window.pop(0)
            state["run"].append(entity)
        flush_pair_counters(context, comparisons, matched)

    def configure_reduce(self, context: TaskContext) -> None:
        context.sn_state = None  # type: ignore[attr-defined]


def sorted_neighborhood(
    entities: Sequence[Entity],
    sort_key: SortKeyFn,
    *,
    window: int,
    matcher: Matcher,
    num_map_tasks: int = 2,
    num_reduce_tasks: int = 3,
) -> SnResult:
    """Run MR-based Sorted Neighborhood end to end.

    Returns all matches among pairs at sort distance ≤ window−1,
    including pairs straddling reduce-partition cuts.
    """
    plan = compute_sn_plan(entities, sort_key, num_reduce_tasks)
    runtime = LocalRuntime()
    partitions = make_partitions(list(entities), num_map_tasks)
    job = SortedNeighborhoodJob(plan, sort_key, matcher, window)
    result = runtime.run(job, partitions, num_reduce_tasks)

    matches = MatchResult()
    for record in result.output:
        tag, payload = record.value
        if tag == "match":
            matches.add(payload)
    reduce_comparisons = tuple(
        task.counters.get(StandardCounter.PAIR_COMPARISONS)
        for task in result.reduce_tasks
    )

    # Driver stitching pass: compare pairs that straddle partition cuts.
    ordered = sorted(entities, key=lambda e: (sort_key(e), e.qualified_id))
    cut_ranks = list(plan.offsets[1:])
    partition_of_rank = []
    next_cut = 0
    for rank in range(len(ordered)):
        while next_cut < len(cut_ranks) and rank >= cut_ranks[next_cut]:
            next_cut += 1
        partition_of_rank.append(next_cut)
    boundary_comparisons = 0
    compared: set[tuple[int, int]] = set()
    for cut in cut_ranks:
        lo = max(0, cut - (window - 1))
        hi = min(len(ordered), cut + (window - 1))
        for i in range(lo, cut):
            for j in range(cut, min(hi, i + window)):
                if partition_of_rank[i] == partition_of_rank[j]:
                    continue  # same run: already compared in reduce
                if (i, j) in compared:
                    continue  # windows of two nearby cuts overlap
                compared.add((i, j))
                boundary_comparisons += 1
                pair = matcher.match(ordered[i], ordered[j])
                if pair is not None:
                    matches.add(pair)

    return SnResult(
        matches=matches,
        window=window,
        comparisons=sum(reduce_comparisons) + boundary_comparisons,
        boundary_comparisons=boundary_comparisons,
        reduce_comparisons=reduce_comparisons,
        job=result,
    )


def brute_force_sn_pairs(
    entities: Sequence[Entity], sort_key: SortKeyFn, window: int
) -> set[tuple[str, str]]:
    """Reference: all pairs at sort distance ≤ window−1."""
    ordered = sorted(entities, key=lambda e: (sort_key(e), e.qualified_id))
    pairs: set[tuple[str, str]] = set()
    for i, e1 in enumerate(ordered):
        for j in range(i + 1, min(i + window, len(ordered))):
            pairs.add(tuple(sorted((e1.qualified_id, ordered[j].qualified_id))))
    return pairs
