"""Composite map-output keys used by the strategies.

The whole trick of the paper (Section III-A) is that map emits a
*composite* key combining the target reduce task, the block, and the
entity, while ``part``/``comp``/``group`` each look at different
projections of it.  We model the keys as named tuples: they sort
lexicographically by field order, which is exactly the ``comp``
behaviour each strategy wants, and the projections are plain attribute
accesses.
"""

from __future__ import annotations

from typing import NamedTuple


class BdmKey(NamedTuple):
    """Job 1 key: ``blocking key . partition index`` (Algorithm 3)."""

    block_key: str
    partition_index: int


class BlockSplitKey(NamedTuple):
    """BlockSplit key: ``reduce index . block index . split`` (Section IV).

    ``i`` and ``j`` encode the split component: ``(0, 0)`` for an
    unsplit block ("``k.*``"), ``(i, i)`` for sub-block ``k.i`` and
    ``(i, j)`` with ``i > j`` for the cross product ``k.j×i`` (the
    paper's Algorithm 1 stores ``(k, max, min)``).

    * partitioned on ``reduce_index``;
    * sorted and grouped on ``(block, i, j)``.
    """

    reduce_index: int
    block: int
    i: int
    j: int

    @property
    def match_task(self) -> tuple[int, int, int]:
        return (self.block, self.i, self.j)


class DualBlockSplitKey(NamedTuple):
    """Two-source BlockSplit key adds the source tag (Appendix I-A).

    Sorting on the full key puts all R entities of a match task before
    all S entities (``"R" < "S"``), which lets the reduce function
    buffer R and stream S.
    """

    reduce_index: int
    block: int
    i: int
    j: int
    source: str

    @property
    def match_task(self) -> tuple[int, int, int]:
        return (self.block, self.i, self.j)


class PairRangeKey(NamedTuple):
    """PairRange key: ``range index . block index . entity index`` (Section V).

    * partitioned on ``range_index``;
    * sorted on the full key (entities of a block arrive in entity-index
      order);
    * grouped on ``(range_index, block)``.
    """

    range_index: int
    block: int
    entity_index: int


class DualPairRangeKey(NamedTuple):
    """Two-source PairRange key: ``range . block . source . entity index``.

    Appendix I-B; the source component again sorts R before S.
    """

    range_index: int
    block: int
    source: str
    entity_index: int
