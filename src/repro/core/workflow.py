"""The end-to-end ER workflow (Figure 2) and its simulation glue.

``ERWorkflow`` wires everything together: input partitioning, Job 1
(BDM computation + annotated side output), Job 2 (the chosen strategy's
matching job) and result collection.  The Basic strategy runs as a
single job, exactly as in the paper.

The module also converts executed job results or analytic plans into
cluster-simulator task lists, which is how the execution-time figures
are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cluster.costmodel import CostModel
from ..cluster.simulation import (
    ClusterSimulator,
    ClusterSpec,
    map_task_specs,
    reduce_task_specs,
)
from ..cluster.timeline import WorkflowTimeline
from ..er.blocking import BlockingFunction
from ..er.entity import Entity
from ..er.matching import Matcher, MatchResult, ThresholdMatcher
from ..mapreduce.counters import StandardCounter
from ..mapreduce.runtime import JobResult, LocalRuntime
from ..mapreduce.types import Partition, make_partitions
from .bdm import BlockDistributionMatrix, compute_bdm
from .planning import BdmJobPlan, StrategyPlan, plan_bdm_job
from .strategy import LoadBalancingStrategy, get_strategy
from .two_source import DualSourceBDM, compute_dual_bdm


@dataclass(frozen=True, slots=True)
class ERWorkflowResult:
    """Everything one workflow run produced."""

    strategy: str
    matches: MatchResult
    bdm: BlockDistributionMatrix | DualSourceBDM | None
    job1: JobResult | None
    job2: JobResult

    def reduce_comparisons(self) -> list[int]:
        """Pairs actually compared per reduce task of Job 2."""
        return self.job2.reduce_counter(StandardCounter.PAIR_COMPARISONS)

    def total_comparisons(self) -> int:
        return sum(self.reduce_comparisons())

    def map_output_kv(self) -> int:
        """Total key-value pairs emitted by Job 2's map phase (Figure 12)."""
        return self.job2.map_output_records()


class ERWorkflow:
    """Run blocking-based ER with a configurable load-balancing strategy.

    Parameters
    ----------
    strategy:
        Strategy instance or registry name (``"basic"``,
        ``"blocksplit"``, ``"pairrange"``).
    blocking:
        Blocking key function.
    matcher:
        Pair matcher; defaults to the paper's edit-distance/0.8
        threshold on ``title``.  Note the matcher is stateful
        (comparison counters) — reuse across runs only if you reset it.
    num_map_tasks / num_reduce_tasks:
        The paper's ``m`` and ``r``.
    """

    def __init__(
        self,
        strategy: LoadBalancingStrategy | str,
        blocking: BlockingFunction,
        matcher: Matcher | None = None,
        *,
        num_map_tasks: int = 2,
        num_reduce_tasks: int = 3,
        use_bdm_combiner: bool = True,
    ):
        if isinstance(strategy, str):
            strategy = get_strategy(strategy)
        self.strategy = strategy
        self.blocking = blocking
        self.matcher = matcher if matcher is not None else ThresholdMatcher()
        self.num_map_tasks = num_map_tasks
        self.num_reduce_tasks = num_reduce_tasks
        self.use_bdm_combiner = use_bdm_combiner

    # -- one source -----------------------------------------------------------

    def run(
        self, entities: Sequence[Entity] | Sequence[Partition]
    ) -> ERWorkflowResult:
        """Match one source against itself."""
        partitions = self._as_partitions(entities)
        runtime = LocalRuntime()
        if not self.strategy.requires_bdm:
            # Basic: single job over raw input; map derives the key.
            from .basic import BasicMatchJob

            job = BasicMatchJob(self.matcher, blocking=self.blocking)
            job2 = runtime.run(job, partitions, self.num_reduce_tasks)
            return ERWorkflowResult(
                strategy=self.strategy.name,
                matches=_collect_matches(job2),
                bdm=None,
                job1=None,
                job2=job2,
            )
        bdm, job1, annotated = compute_bdm(
            runtime,
            partitions,
            self.blocking,
            num_reduce_tasks=self.num_reduce_tasks,
            use_combiner=self.use_bdm_combiner,
        )
        job = self.strategy.build_job(bdm, self.matcher, self.num_reduce_tasks)
        job2 = runtime.run(job, annotated, self.num_reduce_tasks)
        return ERWorkflowResult(
            strategy=self.strategy.name,
            matches=_collect_matches(job2),
            bdm=bdm,
            job1=job1,
            job2=job2,
        )

    # -- two sources ------------------------------------------------------------

    def run_two_source(
        self,
        r_entities: Sequence[Entity],
        s_entities: Sequence[Entity],
        *,
        num_r_partitions: int = 1,
        num_s_partitions: int = 1,
    ) -> ERWorkflowResult:
        """Match R against S (Appendix I).

        Entities are re-tagged with their source; partitions are
        source-homogeneous, R partitions first.
        """
        if self.strategy.requires_bdm is False:
            raise ValueError(
                "two-source matching requires a BDM-based strategy "
                "(blocksplit or pairrange)"
            )
        tagged_r = [e if e.source == "R" else e.with_source("R") for e in r_entities]
        tagged_s = [e if e.source == "S" else e.with_source("S") for e in s_entities]
        r_parts = make_partitions(tagged_r, num_r_partitions)
        s_parts = make_partitions(tagged_s, num_s_partitions)
        partitions: list[Partition] = []
        for part in r_parts + s_parts:
            partitions.append(
                Partition(list(part), index=len(partitions))
            )
        runtime = LocalRuntime()
        bdm, job1, annotated = compute_dual_bdm(
            runtime,
            partitions,
            self.blocking,
            num_reduce_tasks=self.num_reduce_tasks,
            use_combiner=self.use_bdm_combiner,
        )
        job = self.strategy.build_dual_job(bdm, self.matcher, self.num_reduce_tasks)
        job2 = runtime.run(job, annotated, self.num_reduce_tasks)
        return ERWorkflowResult(
            strategy=self.strategy.name,
            matches=_collect_matches(job2),
            bdm=bdm,
            job1=job1,
            job2=job2,
        )

    # -- helpers --------------------------------------------------------------------

    def _as_partitions(
        self, entities: Sequence[Entity] | Sequence[Partition]
    ) -> list[Partition]:
        if entities and isinstance(entities[0], Partition):
            return list(entities)  # type: ignore[arg-type]
        return make_partitions(list(entities), self.num_map_tasks)


def _collect_matches(job2: JobResult) -> MatchResult:
    return MatchResult(record.value for record in job2.output)


# ---------------------------------------------------------------------------
# Analytic BDM construction (planner path — no MR execution)
# ---------------------------------------------------------------------------


def analytic_bdm(
    partitions: Sequence[Sequence[Entity]] | Sequence[Partition],
    blocking: BlockingFunction,
) -> BlockDistributionMatrix:
    """Compute the BDM directly (what Job 1 would output), for planning."""
    counts: dict[tuple, int] = {}
    for index, partition in enumerate(partitions):
        records = (
            (record.value for record in partition)
            if isinstance(partition, Partition)
            else iter(partition)
        )
        for entity in records:
            key = blocking.key_for(entity)
            if key is None:
                continue
            counts[(key, index)] = counts.get((key, index), 0) + 1
    return BlockDistributionMatrix.from_counts(counts, num_partitions=len(partitions))


def analytic_bdm_from_block_sizes(
    block_partition_sizes: Sequence[Sequence[int]],
) -> BlockDistributionMatrix:
    """Build a BDM straight from a ``b × m`` size matrix.

    Benchmarks use this to study block-size distributions without
    generating entities at all; block keys are synthesized as
    ``"b<k>"``.
    """
    keys = [f"b{k}" for k in range(len(block_partition_sizes))]
    return BlockDistributionMatrix(keys, block_partition_sizes)


# ---------------------------------------------------------------------------
# Simulation glue
# ---------------------------------------------------------------------------


def simulate_executed_workflow(
    result: ERWorkflowResult,
    cluster: ClusterSpec,
    cost_model: CostModel | None = None,
    *,
    avg_comparison_length: float | None = None,
) -> WorkflowTimeline:
    """Simulate cluster execution of an already-executed workflow,
    using the real per-task counters."""
    cost_model = cost_model if cost_model is not None else CostModel()
    simulator = ClusterSimulator(cluster, cost_model)
    jobs = []
    for job_result in (result.job1, result.job2):
        if job_result is None:
            continue
        maps = map_task_specs(
            cost_model,
            [t.input_records for t in job_result.map_tasks],
            [t.output_records for t in job_result.map_tasks],
            prefix=f"{job_result.job_name}-map",
        )
        reduces = reduce_task_specs(
            cost_model,
            [t.input_records for t in job_result.reduce_tasks],
            [
                t.counters.get(StandardCounter.PAIR_COMPARISONS)
                for t in job_result.reduce_tasks
            ],
            avg_comparison_length=avg_comparison_length,
            prefix=f"{job_result.job_name}-reduce",
        )
        jobs.append((job_result.job_name, maps, reduces))
    return simulator.simulate_workflow(jobs)


def simulate_planned_workflow(
    plan: StrategyPlan,
    cluster: ClusterSpec,
    cost_model: CostModel | None = None,
    *,
    bdm_plan: BdmJobPlan | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    noise_seed: int = 11,
) -> WorkflowTimeline:
    """Simulate cluster execution from analytic plans (the scalable path).

    ``bdm_plan`` adds Job 1 ahead of the matching job; pass ``None``
    for the single-job Basic strategy.
    """
    cost_model = cost_model if cost_model is not None else CostModel()
    simulator = ClusterSimulator(cluster, cost_model)
    jobs = []
    if bdm_plan is not None:
        maps = map_task_specs(
            cost_model,
            list(bdm_plan.map_input_records),
            list(bdm_plan.map_output_kv),
            prefix="job1-map",
        )
        reduces = reduce_task_specs(
            cost_model,
            list(bdm_plan.reduce_input_kv),
            [0] * bdm_plan.num_reduce_tasks,
            prefix="job1-reduce",
        )
        jobs.append(("job1-bdm", maps, reduces))
    maps = map_task_specs(
        cost_model,
        list(plan.map_input_records),
        list(plan.map_output_kv),
        prefix=f"{plan.strategy}-map",
    )
    reduces = reduce_task_specs(
        cost_model,
        list(plan.reduce_input_kv),
        list(plan.reduce_comparisons),
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
        noise_seed=noise_seed,
        prefix=f"{plan.strategy}-reduce",
    )
    jobs.append((plan.strategy, maps, reduces))
    return simulator.simulate_workflow(jobs)


def simulate_strategy(
    strategy_name: str,
    bdm: BlockDistributionMatrix,
    cluster: ClusterSpec,
    *,
    num_reduce_tasks: int,
    cost_model: CostModel | None = None,
    avg_comparison_length: float | None = None,
    comparison_noise_sigma: float = 0.0,
    noise_seed: int = 11,
    raw_partition_sizes: Sequence[int] | None = None,
    use_bdm_combiner: bool = True,
) -> tuple[WorkflowTimeline, StrategyPlan]:
    """One-call planner + simulator for the benchmark harness."""
    strategy = get_strategy(strategy_name)
    plan = strategy.plan(bdm, num_reduce_tasks)
    bdm_plan = None
    if strategy.requires_bdm:
        bdm_plan = plan_bdm_job(
            bdm,
            num_reduce_tasks,
            use_combiner=use_bdm_combiner,
            raw_partition_sizes=raw_partition_sizes,
        )
    timeline = simulate_planned_workflow(
        plan,
        cluster,
        cost_model,
        bdm_plan=bdm_plan,
        avg_comparison_length=avg_comparison_length,
        comparison_noise_sigma=comparison_noise_sigma,
        noise_seed=noise_seed,
    )
    return timeline, plan
