"""Deprecated entry point — use :class:`repro.engine.ERPipeline`.

This module used to hold the end-to-end workflow, the analytic BDM
builders and the simulation glue.  That machinery now lives in the
``repro.engine`` package (pluggable execution backends) and
``repro.core.bdm`` (analytic BDM construction); everything importable
from here before is re-exported so existing code keeps working.

``ERWorkflow`` remains as a thin shim over ``ERPipeline`` with the old
``run``/``run_two_source`` split and the old defaults (serial backend,
one partition per source in the two-source case).  Constructing it
emits a single :class:`DeprecationWarning` pointing at the migration
notes in ``docs/api.md``; no other code path in this repository —
backends, benchmarks, examples — imports through this shim anymore.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..engine.pipeline import ERPipeline
from ..engine.result import PipelineResult
from ..engine.simulate import (
    simulate_executed_workflow,
    simulate_planned_workflow,
    simulate_strategy,
)
from ..er.entity import Entity
from .bdm import analytic_bdm, analytic_bdm_from_block_sizes

__all__ = [
    "ERWorkflow",
    "ERWorkflowResult",
    "analytic_bdm",
    "analytic_bdm_from_block_sizes",
    "simulate_executed_workflow",
    "simulate_planned_workflow",
    "simulate_strategy",
]

#: Former result type; pipeline results are a strict superset.
ERWorkflowResult = PipelineResult


class ERWorkflow(ERPipeline):
    """Deprecated alias for :class:`~repro.engine.ERPipeline`.

    Kept so pre-pipeline imports keep working; prefer ``ERPipeline``,
    which unifies one- and two-source matching in a single ``run(r, s)``
    and supports ``with_backend("parallel"| "planned")``.
    """

    def __init__(self, *args, **kwargs):
        warnings.warn(
            "ERWorkflow is deprecated; use repro.engine.ERPipeline "
            "(same constructor, run(r, s=None), pluggable backends, and "
            "the submission API: submit()/submit_async() for streamed "
            "matches, progress, cancellation and persistable results) — "
            "see docs/api.md for the migration notes",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)

    def run_two_source(
        self,
        r_entities: Sequence[Entity],
        s_entities: Sequence[Entity],
        *,
        num_r_partitions: int = 1,
        num_s_partitions: int = 1,
    ) -> PipelineResult:
        """Match R against S (Appendix I) — old-style entry point."""
        return self.run(
            r_entities,
            s_entities,
            num_r_partitions=num_r_partitions,
            num_s_partitions=num_s_partitions,
        )
