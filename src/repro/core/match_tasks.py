"""BlockSplit match-task generation and greedy reduce-task assignment.

A *match task* (Section IV) is the unit BlockSplit distributes:

* ``k.*`` — an entire unsplit block ``k`` (encoded ``(k, 0, 0)``);
* ``k.i`` — the self-join of sub-block ``i`` (encoded ``(k, i, i)``);
* ``k.i×j`` — the cross product of sub-blocks ``i > j``
  (encoded ``(k, i, j)``, the paper's ``(k, max, min)``).

Blocks are split iff their pair count exceeds the average reduce
workload ``P/r``.  Match tasks are then sorted by descending pair count
and greedily assigned to the currently least-loaded reduce task — the
classic LPT heuristic.

This module is shared by the executing MR job and the analytic planner,
so both *by construction* agree on the assignment.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Protocol, Sequence

from .enumeration import block_pair_count

#: Split-component encoding for an unsplit block ("k.*").
WHOLE_BLOCK = (0, 0)


class BdmLike(Protocol):
    """The slice of the BDM interface match-task generation needs."""

    @property
    def num_blocks(self) -> int: ...

    @property
    def num_partitions(self) -> int: ...

    def size(self, block: int, partition: int | None = None) -> int: ...

    def pairs(self) -> int: ...


@dataclass(frozen=True, slots=True)
class MatchTask:
    """One schedulable chunk of comparison work."""

    block: int
    i: int
    j: int
    comparisons: int

    @property
    def key(self) -> tuple[int, int, int]:
        return (self.block, self.i, self.j)

    @property
    def is_whole_block(self) -> bool:
        return (self.i, self.j) == WHOLE_BLOCK

    @property
    def is_cross_product(self) -> bool:
        return self.i != self.j


@dataclass(frozen=True, slots=True)
class MatchTaskAssignment:
    """The complete BlockSplit schedule for one (BDM, m, r) instance."""

    tasks: tuple[MatchTask, ...]
    reduce_of: dict[tuple[int, int, int], int]
    reduce_comparisons: tuple[int, ...]
    split_blocks: frozenset[int]
    threshold: float

    def task_reduce_index(self, block: int, i: int, j: int) -> int | None:
        """Reduce task of match task ``(block, i, j)``; None if absent."""
        return self.reduce_of.get((block, i, j))

    def is_split(self, block: int) -> bool:
        return block in self.split_blocks

    def tasks_of_block(self, block: int) -> list[MatchTask]:
        return [t for t in self.tasks if t.block == block]


def generate_match_tasks(bdm: BdmLike, num_reduce_tasks: int) -> tuple[list[MatchTask], frozenset[int], float]:
    """Create match tasks per Algorithm 1's ``map configure``.

    Returns ``(tasks, split block set, split threshold P/r)``.

    Unsplit blocks yield one ``k.*`` task — including zero-comparison
    singleton blocks, which the map phase later suppresses (Algorithm 1
    line 33 guards ``comps > 0``); keeping them here preserves the exact
    bookkeeping of the pseudo-code.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    threshold = bdm.pairs() / num_reduce_tasks
    tasks: list[MatchTask] = []
    split_blocks: set[int] = set()
    m = bdm.num_partitions
    for k in range(bdm.num_blocks):
        comps = block_pair_count(bdm.size(k))
        if comps <= threshold:
            tasks.append(MatchTask(k, *WHOLE_BLOCK, comparisons=comps))
            continue
        split_blocks.add(k)
        for i in range(m):
            size_i = bdm.size(k, i)
            for j in range(i + 1):
                size_j = bdm.size(k, j)
                if size_i * size_j <= 0:
                    continue
                if i == j:
                    tasks.append(MatchTask(k, i, i, block_pair_count(size_i)))
                else:
                    tasks.append(MatchTask(k, i, j, size_i * size_j))
    return tasks, frozenset(split_blocks), threshold


def assign_greedy(
    tasks: Sequence[MatchTask], num_reduce_tasks: int
) -> tuple[dict[tuple[int, int, int], int], list[int]]:
    """LPT assignment: biggest task first, to the least-loaded reduce task.

    Ties on task size break by task key, ties on load by reduce index —
    both deterministic.  Returns the task → reduce-index map and the
    per-reduce-task comparison totals.
    """
    if num_reduce_tasks <= 0:
        raise ValueError(f"num_reduce_tasks must be positive, got {num_reduce_tasks}")
    ordered = sorted(tasks, key=lambda t: (-t.comparisons, t.key))
    # Min-heap of (load, reduce index): pop = least-loaded, lowest index.
    heap = [(0, idx) for idx in range(num_reduce_tasks)]
    loads = [0] * num_reduce_tasks
    assignment: dict[tuple[int, int, int], int] = {}
    for task in ordered:
        load, target = heapq.heappop(heap)
        assignment[task.key] = target
        loads[target] = load + task.comparisons
        heapq.heappush(heap, (loads[target], target))
    return assignment, loads


def plan_block_split(bdm: BdmLike, num_reduce_tasks: int) -> MatchTaskAssignment:
    """Full BlockSplit schedule: generation + greedy assignment."""
    tasks, split_blocks, threshold = generate_match_tasks(bdm, num_reduce_tasks)
    assignment, loads = assign_greedy(tasks, num_reduce_tasks)
    return MatchTaskAssignment(
        tasks=tuple(tasks),
        reduce_of=assignment,
        reduce_comparisons=tuple(loads),
        split_blocks=split_blocks,
        threshold=threshold,
    )


# ---------------------------------------------------------------------------
# Batched match-task execution
# ---------------------------------------------------------------------------
#
# With ``batch_kernel`` enabled the reduce functions stop walking their
# candidate pairs one ``match_prepared`` call at a time: they describe
# the group's pairs as one spec (triangle / cross / spans — see
# :mod:`repro.er.batch_kernel`) and hand the whole match task to the
# matcher in a single ``match_batch`` call.  These helpers hold the
# pieces every batched reduce loop shares.


def run_batched_group(matcher, prepared: list, spec, emit, context) -> None:
    """Execute one reduce group's pair spec through ``match_batch``.

    Emits the returned matches in spec pair order — the order the
    scalar streaming loops emit them — and flushes the pair counters
    once per batch with the spec's exact pair count, so per-task
    outputs and counters are byte-identical to the scalar path.
    """
    from ..mapreduce.counters import flush_pair_counters

    matches = matcher.match_batch(prepared, spec)
    for pair in matches:
        emit(None, pair)
    flush_pair_counters(context, spec.count, len(matches))


def leading_run_split(markers: Sequence) -> int | None:
    """Split point of a sequence expected to be two contiguous runs.

    Returns ``split`` such that ``markers[:split]`` all equal
    ``markers[0]`` and ``markers[split:]`` never repeats it — the shape
    a cross-product group has when the stable shuffle delivers one
    sub-block contiguously before the other.  Returns ``None`` when the
    leading marker reappears later: the runs are interleaved, no
    cross-product batch can be formed, and the caller must fall back to
    its scalar streaming loop (which defines the semantics for such
    input).  An empty sequence yields 0, a single run its full length.
    """
    if not markers:
        return 0
    first = markers[0]
    n = len(markers)
    split = 1
    while split < n and markers[split] == first:
        split += 1
    for marker in markers[split:]:
        if marker == first:
            return None
    return split
