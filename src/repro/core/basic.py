"""The Basic strategy (Section III): blocking without load balancing.

Map emits ``(blocking key, entity)``; hash partitioning on the blocking
key sends every block to exactly one reduce task, which compares all of
its pairs.  One MR job, no BDM, no skew handling — the baseline every
figure of the evaluation compares against.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..er.batch_kernel import TrianglePairs
from ..er.blocking import BlockingFunction
from ..er.entity import Entity
from ..er.matching import Matcher
from ..mapreduce.counters import flush_pair_counters
from ..mapreduce.job import MapReduceJob, TaskContext, stable_hash
from .match_tasks import run_batched_group


class BasicMatchJob(MapReduceJob):
    """The single MR job of the Basic strategy.

    Can consume either raw entities (``key=None, value=entity`` —
    the stand-alone single-job deployment, where map computes the
    blocking key) or Job-1-annotated records (``key=blocking key``),
    which the comparative benchmarks use so that every strategy sees
    identical input.
    """

    name = "basic-match"

    def __init__(
        self,
        matcher: Matcher,
        blocking: BlockingFunction | None = None,
        *,
        batch_kernel: bool = False,
    ):
        self.matcher = matcher
        self.blocking = blocking
        self.batch_kernel = batch_kernel

    def map(self, key: Any, value: Entity, emit, context: TaskContext) -> None:
        if key is None:
            if self.blocking is None:
                raise ValueError(
                    "BasicMatchJob needs a blocking function for raw input"
                )
            key = self.blocking.key_for(value)
            if key is None:
                return
        emit(key, value)

    def partition(self, key: Any, num_reduce_tasks: int) -> int:
        return stable_hash(key) % num_reduce_tasks

    def sort_key(self, key: Any) -> Any:
        return repr(key)

    def reduce(
        self, key: Any, values: Sequence[Entity], emit, context: TaskContext
    ) -> None:
        if self.batch_kernel:
            # The whole block is one triangular batch: prepare every
            # entity once, then score all pairs in a single
            # `match_batch` call.
            prepare = self.matcher.prepare
            prepared = [prepare(e) for e in values]
            run_batched_group(
                self.matcher, prepared, TrianglePairs(len(prepared)), emit, context
            )
            return
        # All-pairs comparison within the block, in the streaming-buffer
        # style of the paper's pseudo-code.  Entities are prepared once
        # per group; only `match_prepared` runs per pair.
        matcher = self.matcher
        prepare = matcher.prepare
        match_prepared = matcher.match_prepared
        comparisons = 0
        matched = 0
        buffer: list = []
        for e2 in values:
            p2 = prepare(e2)
            for p1 in buffer:
                pair = match_prepared(p1, p2)
                if pair is not None:
                    matched += 1
                    emit(None, pair)
            comparisons += len(buffer)
            buffer.append(p2)
        flush_pair_counters(context, comparisons, matched)
