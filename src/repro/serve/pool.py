"""The shared worker pool: many jobs, one set of worker processes.

:class:`~repro.engine.distributed.DistributedRuntime` owns its workers
for the lifetime of one job pool and schedules exactly one job at a
time.  A server cannot afford either: startup cost must be paid once,
and several clients' pipelines must make progress *simultaneously*.
:class:`SharedWorkerPool` is the answer — the same worker processes,
transport and failure taxonomy as the distributed backend, behind a
scheduler that multiplexes task units from any number of concurrent
jobs over one pool:

* **Fair interleaving** — dispatch rotates round-robin over the jobs
  that have runnable task units, so a large job cannot starve a small
  one; with a single active job the whole pool is its.
* **Per-job isolation** — a task that raises, or exhausts its retry
  budget after worker losses, fails *its* job only; every other job
  keeps running.  Cancelling a job drops its queued task units and
  discards results of its in-flight ones.
* **Pool healing** — a lost worker is killed, its task requeued
  (bounded per task by ``max_task_retries``, exactly the distributed
  backend's rule), and a replacement spawned within the pool-level
  ``max_worker_respawns`` budget.  Only when the pool empties out with
  no budget left do the active jobs fail.

All scheduler state is owned by one thread; job channels and worker
receiver threads communicate with it exclusively through the inbox
queue, so there are no locks to get wrong.

Determinism per job is preserved exactly as in the distributed
backend: each job's task units are pulled in submission order, at most
``num_workers`` in flight per job, and merged in task-index order by
:class:`PooledRuntime` — so a job's matches, counters and event stream
are byte-identical to the serial backend no matter how many neighbours
it shares the pool with.
"""

from __future__ import annotations

import itertools
import queue
import subprocess
import threading
import time
from collections import deque
from typing import Any, Callable, Iterable

from ..engine.distributed import (
    DistributedExecutionError,
    WorkerLauncher,
    _Task,
    _WorkerHandle,
)
from ..engine.executing import ExecutingBackendBase
from ..mapreduce.runtime import (
    LocalRuntime,
    TaskCall,
    execute_map_task,
    execute_reduce_task,
)
from ..mapreduce.transport import TransportError, encode_message

#: Task-unit functions → wire names (same registry as repro.worker).
_UNIT_NAMES: dict[Callable[..., Any], str] = {
    execute_map_task: "map",
    execute_reduce_task: "reduce",
}


class WorkerPoolError(DistributedExecutionError):
    """The shared pool itself is unusable (startup failed, every worker
    lost with no respawn budget left, or the pool was closed)."""


class _PoolJob:
    """Scheduler-side state of one registered job."""

    __slots__ = ("job_id", "name", "pending", "outbox", "closed")

    def __init__(self, job_id: int, name: str):
        self.job_id = job_id
        self.name = name
        #: Runnable task units, in submission order (requeues go back
        #: to the front so retry order matches the first attempt).
        self.pending: deque[_Task] = deque()
        #: Completions/failures for the job channel to drain.
        self.outbox: "queue.Queue[tuple]" = queue.Queue()
        self.closed = False


class PoolJobChannel:
    """One job's handle on the shared pool.

    Created by :meth:`SharedWorkerPool.open_job`; used from the job's
    driver thread.  ``submit`` enqueues one task unit, ordered
    completions come back through ``next_completion``, and ``close``
    withdraws the job — dropping queued tasks and telling the pool to
    discard results of tasks still running on workers.
    """

    def __init__(self, pool: "SharedWorkerPool", job: _PoolJob):
        self._pool = pool
        self._job = job

    @property
    def job_id(self) -> int:
        return self._job.job_id

    def submit(self, unit: str, index: int, args: tuple) -> None:
        """Enqueue one task unit (``unit`` is ``"map"``/``"reduce"``)."""
        # Task ids come from the pool-wide counter (atomic under the
        # GIL) so ids are unique across concurrent jobs and a stale
        # reply can never be paired with another job's task.  The frame
        # is encoded once, here in the submitting thread — pickling
        # errors surface to the job synchronously, and a requeue
        # re-ships the identical bytes.
        task_id = next(self._pool._task_ids)
        try:
            frame = encode_message(("task", task_id, unit, args))
        except Exception as exc:
            raise DistributedExecutionError(
                "the shared worker pool ships task units to worker "
                f"processes, but this {unit} task cannot be pickled "
                f"(job, matcher and blocking function must all support "
                f"pickle): {exc!r}"
            ) from exc
        self._pool._post(("submit", self._job, _Task(task_id, index, unit, frame)))

    def next_completion(self, timeout: float | None = None) -> tuple[int, Any]:
        """Block for the next finished task: ``(task_index, result)``.

        Raises the remote exception for a task that raised, and
        :class:`DistributedExecutionError` /:class:`WorkerPoolError`
        when the job or pool failed.
        """
        kind, *payload = self._job.outbox.get(timeout=timeout)
        if kind == "result":
            index, result = payload
            return index, result
        error = payload[0]
        raise error

    def close(self) -> None:
        """Withdraw the job from the pool (idempotent)."""
        self._pool._post(("close", self._job))


class SharedWorkerPool:
    """A long-lived pool of worker processes shared by many jobs.

    Parameters mirror :class:`~repro.engine.distributed.
    DistributedRuntime` — same worker protocol, same failure rules —
    plus a pool-level ``max_worker_respawns`` budget, which defaults
    to ``2 * num_workers`` (a server pool should heal; pass 0 to
    disable).
    """

    def __init__(
        self,
        *,
        num_workers: int = 2,
        task_timeout: float | None = None,
        max_task_retries: int = 2,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float | None = 15.0,
        startup_timeout: float = 60.0,
        max_worker_respawns: int | None = None,
    ):
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.num_workers = num_workers
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_timeout = startup_timeout
        self.max_worker_respawns = (
            2 * num_workers if max_worker_respawns is None
            else max_worker_respawns
        )
        self._respawns_left = self.max_worker_respawns
        self._launcher: WorkerLauncher | None = None
        self._workers: dict[int, _WorkerHandle] = {}
        self._jobs: dict[int, _PoolJob] = {}
        self._rotation: deque[_PoolJob] = deque()
        self._inbox: "queue.Queue[tuple]" = queue.Queue()
        self._job_ids = itertools.count()
        self._task_ids = itertools.count()
        self._worker_indices = itertools.count(num_workers)
        self._scheduler: threading.Thread | None = None
        self._broken: BaseException | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SharedWorkerPool":
        """Spawn and authenticate the workers, start the scheduler."""
        if self._scheduler is not None:
            return self
        launcher = WorkerLauncher(heartbeat_interval=self.heartbeat_interval)
        self._launcher = launcher
        processes: dict[int, subprocess.Popen] = {}
        try:
            for index in range(self.num_workers):
                processes[index] = launcher.spawn(index)
            deadline = time.monotonic() + self.startup_timeout
            for _ in range(self.num_workers):
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    index, conn = launcher.accept(timeout=remaining)
                except TransportError as exc:
                    exits = {i: p.poll() for i, p in processes.items()}
                    raise WorkerPoolError(
                        f"worker startup failed: {exc} "
                        f"(worker exit codes so far: {exits})"
                    ) from exc
                self._register_worker(index, processes[index], conn)
        except BaseException:
            for proc in processes.values():
                if proc.poll() is None:
                    proc.kill()
            for worker in self._workers.values():
                worker.shutdown(kill=True)
            self._workers.clear()
            launcher.close()
            self._launcher = None
            raise
        self._scheduler = threading.Thread(
            target=self._run_scheduler, name="repro-serve-pool", daemon=True
        )
        self._scheduler.start()
        return self

    def close(self) -> None:
        """Stop the scheduler and shut every worker down (idempotent).

        Jobs still registered fail with :class:`WorkerPoolError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._scheduler is not None:
            self._post(("stop",))
            self._scheduler.join(timeout=30)
            self._scheduler = None
        for worker in list(self._workers.values()):
            worker.shutdown(kill=False)
        self._workers.clear()
        if self._launcher is not None:
            self._launcher.close()
            self._launcher = None

    def __enter__(self) -> "SharedWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def alive_workers(self) -> int:
        """Current pool size (scheduler-owned; read for observability)."""
        return len(self._workers)

    # -- job interface -------------------------------------------------------

    def open_job(self, name: str = "job") -> PoolJobChannel:
        """Register one job; its channel is ready for submissions."""
        if self._scheduler is None or self._closed:
            raise WorkerPoolError("the shared worker pool is not running")
        job = _PoolJob(next(self._job_ids), name)
        self._post(("open", job))
        return PoolJobChannel(self, job)

    def _post(self, message: tuple) -> None:
        self._inbox.put(message)

    def _register_worker(
        self, index: int, process: subprocess.Popen, conn
    ) -> None:
        worker = _WorkerHandle(index, process, conn)
        self._workers[index] = worker
        thread = threading.Thread(
            target=self._receive_loop,
            args=(worker,),
            name=f"repro-serve-recv-{index}",
            daemon=True,
        )
        worker.thread = thread
        thread.start()

    def _receive_loop(self, worker: _WorkerHandle) -> None:
        while True:
            try:
                message = worker.conn.recv()
            # Deliberately broad: *any* receive failure — transport,
            # truncated pickle, decode — means this worker is dead to
            # the scheduler, which owns retry/respawn policy.
            except Exception:  # repro-lint: disable=silent-except -- becomes a 'died' message
                self._post(("worker", worker.index, ("died",)))
                return
            self._post(("worker", worker.index, message))

    # -- the scheduler thread ------------------------------------------------

    def _run_scheduler(self) -> None:
        while True:
            try:
                message = self._inbox.get(timeout=self._tick())
            except queue.Empty:
                self._reap_expired()
                self._dispatch_ready()
                continue
            kind = message[0]
            if kind == "stop":
                self._fail_all_jobs(WorkerPoolError(
                    "the shared worker pool was shut down"
                ))
                return
            if kind == "open":
                job = message[1]
                self._jobs[job.job_id] = job
            elif kind == "submit":
                self._on_submit(message[1], message[2])
            elif kind == "close":
                self._on_close(message[1])
            elif kind == "worker":
                self._on_worker_message(message[1], message[2])
            self._reap_expired()
            self._dispatch_ready()

    def _on_submit(self, job: _PoolJob, task: _Task) -> None:
        if job.closed or job.job_id not in self._jobs:
            return
        if self._broken is not None:
            job.outbox.put(("failed", self._broken))
            return
        if not job.pending:
            self._rotation.append(job)
        job.pending.append(task)

    def _on_close(self, job: _PoolJob) -> None:
        job.closed = True
        job.pending.clear()
        self._jobs.pop(job.job_id, None)
        # In-flight tasks of this job finish on their workers; their
        # results are discarded on arrival (the job is gone) and the
        # workers become free for other jobs.

    def _on_worker_message(self, worker_index: int, message: tuple) -> None:
        worker = self._workers.get(worker_index)
        if worker is None:
            return  # stale: that worker was already written off
        worker.last_seen = time.monotonic()
        kind = message[0]
        if kind == "died":
            self._fail_worker(worker, "worker process died")
            return
        if kind not in ("result", "error"):
            return  # heartbeat (or unknown chatter): liveness recorded
        assignment = worker.task
        if assignment is None or assignment[1].task_id != message[1]:
            return  # stale reply for a task requeued elsewhere
        worker.task = None
        job, task = assignment
        if job.closed or job.job_id not in self._jobs:
            return  # the job was cancelled/closed: discard the result
        if kind == "error":
            # Deterministic failure: not retried, fails this job only.
            job.outbox.put(("task-error", message[2]))
        else:
            job.outbox.put(("result", task.index, message[2]))

    # -- dispatch ------------------------------------------------------------

    def _dispatch_ready(self) -> None:
        for worker in [w for w in self._workers.values() if w.task is None]:
            assignment = self._next_pending()
            if assignment is None:
                return
            self._dispatch(worker, *assignment)

    def _next_pending(self) -> "tuple[_PoolJob, _Task] | None":
        """Round-robin over jobs with runnable tasks: pop one task from
        the job at the head of the rotation, then rotate it to the
        back — fair interleaving across however many jobs are active."""
        while self._rotation:
            job = self._rotation.popleft()
            if job.closed or job.job_id not in self._jobs or not job.pending:
                continue
            task = job.pending.popleft()
            if job.pending:
                self._rotation.append(job)
            return job, task
        return None

    def _dispatch(self, worker: _WorkerHandle, job: _PoolJob, task: _Task) -> None:
        worker.task = (job, task)
        task.sent_at = time.monotonic()
        try:
            worker.conn.send_bytes(task.frame)
        except TransportError:
            self._fail_worker(worker, "connection failed at dispatch")

    # -- failure handling ----------------------------------------------------

    def _tick(self) -> float | None:
        deadlines: list[float] = []
        for worker in self._workers.values():
            if self.heartbeat_timeout is not None:
                deadlines.append(worker.last_seen + self.heartbeat_timeout)
            if self.task_timeout is not None and worker.task is not None:
                deadlines.append(worker.task[1].sent_at + self.task_timeout)
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - time.monotonic())

    def _reap_expired(self) -> None:
        now = time.monotonic()
        expired: list[tuple[_WorkerHandle, str]] = []
        for worker in self._workers.values():
            if (
                self.task_timeout is not None
                and worker.task is not None
                and now - worker.task[1].sent_at > self.task_timeout
            ):
                expired.append((
                    worker,
                    f"{worker.task[1].describe()} exceeded "
                    f"task_timeout={self.task_timeout}s",
                ))
            elif (
                self.heartbeat_timeout is not None
                and now - worker.last_seen > self.heartbeat_timeout
            ):
                expired.append((
                    worker,
                    f"no heartbeat for {self.heartbeat_timeout}s",
                ))
        for worker, reason in expired:
            self._fail_worker(worker, reason)

    def _fail_worker(self, worker: _WorkerHandle, reason: str) -> None:
        """Write a worker off: kill, respawn within budget, requeue its
        task (bounded) — failing only the task's own job on exhaustion,
        and all jobs only when the pool itself is gone."""
        self._workers.pop(worker.index, None)
        assignment = worker.task
        worker.task = None
        worker.shutdown(kill=True)
        self._respawn_worker()
        if assignment is not None:
            job, task = assignment
            if not job.closed and job.job_id in self._jobs:
                task.attempts += 1
                if task.attempts > self.max_task_retries:
                    job.outbox.put(("failed", DistributedExecutionError(
                        f"{task.describe()} failed {task.attempts} time(s) "
                        f"and exhausted its retry budget "
                        f"(max_task_retries={self.max_task_retries}); "
                        f"last failure: worker {worker.index}: {reason}"
                    )))
                    self._on_close(job)
                else:
                    job.pending.appendleft(task)
                    if job not in self._rotation:
                        self._rotation.append(job)
        if not self._workers:
            self._broken = WorkerPoolError(
                f"every pool worker was lost (last: worker "
                f"{worker.index}: {reason}) and the respawn budget "
                f"(max_worker_respawns={self.max_worker_respawns}) "
                f"is exhausted"
            )
            self._fail_all_jobs(self._broken)

    def _respawn_worker(self) -> None:
        if self._respawns_left <= 0 or self._launcher is None:
            return
        self._respawns_left -= 1
        index = next(self._worker_indices)
        process: subprocess.Popen | None = None
        try:
            process = self._launcher.spawn(index)
            accepted_index, conn = self._launcher.accept(
                timeout=self.startup_timeout
            )
            self._register_worker(accepted_index, process, conn)
        except (OSError, TransportError, DistributedExecutionError):
            # Failed respawn: reap the half-started process; the pool
            # keeps running with one fewer worker.
            if process is not None and process.poll() is None:
                process.kill()

    def _fail_all_jobs(self, error: BaseException) -> None:
        for job in list(self._jobs.values()):
            job.outbox.put(("failed", error))
            self._on_close(job)

    def __repr__(self) -> str:
        return (
            f"SharedWorkerPool(num_workers={self.num_workers}, "
            f"alive={self.alive_workers}, jobs={len(self._jobs)})"
        )


class PooledRuntime(LocalRuntime):
    """A job executor whose task units run on a :class:`SharedWorkerPool`.

    One runtime = one job on the pool.  Scheduling semantics match
    :class:`~repro.engine.distributed.DistributedRuntime` exactly from
    the job's point of view: task units are pulled lazily in submission
    order (``task-started`` events and cancellation checks fire at the
    pull, at most ``num_workers`` payloads of this job in flight) and
    results are merged — and drained through the sink — in task-index
    order.  What order the *pool* runs them in, interleaved with other
    jobs, is invisible to the result.
    """

    def __init__(self, pool: SharedWorkerPool, *, name: str = "job"):
        super().__init__()
        self._pool = pool
        self._name = name

    def _run_calls(
        self, calls: Iterable[TaskCall], sink: "Callable | None"
    ) -> list:
        channel = self._pool.open_job(self._name)
        try:
            return self._run_on_channel(channel, calls, sink)
        finally:
            # Normal completion: everything was drained, close is a
            # cheap unregister.  On error/cancel: queued tasks are
            # dropped and in-flight results discarded by the pool.
            channel.close()

    def _run_on_channel(
        self,
        channel: PoolJobChannel,
        calls: Iterable[TaskCall],
        sink: "Callable | None",
    ) -> list:
        drain = sink if sink is not None else (lambda result: result)
        window = self._pool.num_workers
        calls_iter = iter(calls)
        exhausted = False
        pulled = 0
        completed = 0
        next_index = 0
        buffered: dict[int, Any] = {}
        ordered: list = []
        while True:
            while not exhausted and pulled - completed < window:
                try:
                    fn, args = next(calls_iter)
                except StopIteration:
                    exhausted = True
                    break
                channel.submit(_UNIT_NAMES[fn], pulled, args)
                pulled += 1
            if exhausted and completed == pulled:
                return ordered
            index, result = channel.next_completion()
            buffered[index] = result
            completed += 1
            while next_index in buffered:
                ordered.append(drain(buffered.pop(next_index)))
                next_index += 1


class PooledBackend(ExecutingBackendBase):
    """Executes pipeline requests on a shared pool it does **not** own.

    This is the server's execution backend: every submitted job gets a
    fresh :class:`PooledRuntime` (fresh per-job DFS, exactly like every
    other backend), all multiplexed over the one long-lived pool.  Not
    in the backend registry — it only makes sense wired to a running
    :class:`SharedWorkerPool`.
    """

    name = "serve-pool"

    def __init__(self, pool: SharedWorkerPool, *, job_name: str = "job"):
        self._pool = pool
        self.job_name = job_name

    def make_runtime(self) -> PooledRuntime:
        return PooledRuntime(self._pool, name=self.job_name)

    def __repr__(self) -> str:
        return f"PooledBackend(pool={self._pool!r})"
