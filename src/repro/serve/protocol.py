"""The client/server wire protocol of the ER service.

Messages travel over the same authenticated length-prefixed transport
(:mod:`repro.mapreduce.transport`) the worker protocol uses, and the
security invariant is identical: a client opens its connection by
sending the shared service token as a **raw fixed-length byte
preamble**, which the server compares (constant-time) *before* the
first pickled message is read.  An unauthenticated peer never gets a
byte into ``pickle.loads``.

The token is shared out of band — via :data:`ENV_SERVE_TOKEN` in the
environment on both ends (never argv), or printed once by the daemon
when it generated one itself.

Conversation (all messages are tuples; first element is the verb):

Client → server::

    <raw token preamble>                 authentication, no framing
    ("hello", pid)                       introduce this session
    ("submit", ticket, request)          run one PipelineRequest
    ("submit-delta", ticket, name,       ingest the request's partitions
                     request)            into the server-resident corpus
                                         state ``name`` (an incremental
                                         delta run; the server merges
                                         its persisted state in and
                                         advances it atomically on
                                         success — needs --state-root)
    ("cancel", job_id)                   cooperatively cancel one job
    ("bye",)                             end the session cleanly

Server → client::

    ("welcome", info)                    session accepted; server info
    ("accepted", ticket, job_id)         submission registered
    ("rejected", ticket, reason)         submission refused (str)
    ("event", job_id, event)             one ExecutionEvent, in order
    ("done", job_id, result)             final PipelineResult
    ("failed", job_id, exc)              the job raised; exc shippable
    ("cancelled", job_id)                cancel honoured
    ("shutting-down",)                   daemon is draining; no new
                                         submissions will be accepted

``ticket`` is a client-chosen integer pairing each ``submit`` with its
``accepted``/``rejected`` reply (several submissions may be in flight
on one connection); ``job_id`` is the server-wide id all later
messages about that job carry.

Events are shipped through :func:`wire_event`, which drops bulky
payloads that only the server-side merge needs — except the matching
stage's reduce outputs, which *are* the streamed matches and the whole
point of a remote ``iter_matches()``.
"""

from __future__ import annotations

import os

from ..engine.executing import STAGE_MATCHING
from ..mapreduce.events import EventKind, ExecutionEvent

#: Environment variable carrying the shared service token on both the
#: daemon and client side (the environment, unlike argv, is not
#: readable by other local users).
ENV_SERVE_TOKEN = "REPRO_SERVE_TOKEN"

#: Raw-preamble token length in bytes; both sides must agree so the
#: server knows how many bytes to read before comparing.
TOKEN_BYTES = 32


def service_token(explicit: "str | None" = None) -> "str | None":
    """The shared token: ``explicit`` argument, else the environment."""
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_SERVE_TOKEN)


def encode_token(token: str) -> bytes:
    """The fixed-length raw preamble for ``token``.

    Tokens are ASCII (the daemon generates hex); the preamble is padded
    or rejected to exactly :data:`TOKEN_BYTES` so the server can read a
    known count before authenticating.
    """
    raw = token.encode("ascii", errors="replace")
    if len(raw) > TOKEN_BYTES:
        raise ValueError(
            f"service token longer than {TOKEN_BYTES} bytes"
        )
    return raw.ljust(TOKEN_BYTES, b"\0")


def wire_event(event: ExecutionEvent) -> ExecutionEvent:
    """``event`` trimmed for the wire.

    Reduce outputs of the **matching** stage are the streamed matches
    and stay; every other ``output`` payload (map-side partitions, BDM
    fragments) is server-side plumbing a remote observer never reads,
    and is dropped so events stay small.
    """
    data = event.data
    if not data or "output" not in data:
        return event
    if (
        event.kind == EventKind.TASK_FINISHED
        and event.stage == STAGE_MATCHING
        and event.phase == "reduce"
    ):
        return event
    slim = {k: v for k, v in data.items() if k != "output"}
    return ExecutionEvent(
        kind=event.kind,
        stage=event.stage,
        job=event.job,
        phase=event.phase,
        task_index=event.task_index,
        data=slim,
    )
